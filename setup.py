"""Legacy setup shim.

The execution environment has no ``wheel`` package, so PEP 660 editable
installs (``pip install -e .``) cannot build; ``python setup.py develop``
installs an egg-link instead.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
