"""Fig 10: completion-time reduction for all seven downgrade policies."""

from repro.experiments.downgrade_only import render_fig10
from repro.workload.bins import BIN_NAMES


def test_fig10_downgrade(benchmark, downgrade_fb):
    table = benchmark.pedantic(
        lambda: render_fig10(downgrade_fb), rounds=1, iterations=1
    )
    print()
    print(table)
    reductions = downgrade_fb.completion_reduction
    # Every downgrade policy improves on plain HDFS overall.
    for label, values in reductions.items():
        assert sum(values[b] for b in BIN_NAMES) > 0, label
    # XGB ranks at the top on mean reduction.
    mean = {
        label: sum(v[b] for b in BIN_NAMES) / len(BIN_NAMES)
        for label, v in reductions.items()
    }
    ranked = sorted(mean, key=mean.get, reverse=True)
    assert "XGB" in ranked[:2], f"XGB should rank top-2, order: {ranked}"
