"""Fig 17: accuracy while alternating the FB and CMU workloads."""

import numpy as np

from repro.experiments.learning_modes import render_fig17, run_fig17


def test_fig17_adaptation(benchmark):
    result = benchmark.pedantic(run_fig17, rounds=1, iterations=1)
    print()
    print(render_fig17(result))
    for label, series in result.accuracy.items():
        values = [v for v in series if not np.isnan(v)]
        assert values, label
        # The model always recovers: the last hours are no worse than
        # the worst post-switch dip.
        assert values[-1] >= min(values) - 1e-9
        # And overall accuracy stays useful throughout.
        assert float(np.mean(values)) > 60.0, (label, values)
