"""Sec 7.7: ML overheads — training/prediction cost, memory footprint."""

from repro.experiments.overheads import render_overheads, run_overheads


def test_sec77_overheads(benchmark):
    result = benchmark.pedantic(run_overheads, rounds=1, iterations=1)
    print()
    print(render_overheads(result))
    # The paper's claims, loosened for a pure-Python implementation:
    # per-sample training stays in the millisecond range, predictions in
    # the microsecond range, the model within a few MB.
    assert result.train_ms_per_sample < 50.0
    assert result.predict_us_per_sample < 5000.0
    assert result.model_size_kb < 8192
    assert result.metadata_bytes_per_file < 1024  # paper: ~956 bytes
