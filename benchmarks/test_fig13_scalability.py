"""Fig 13: scale-out from 11 to 88 workers with the XGB policies."""

from repro.experiments.scalability import render_fig13, run_fig13
from repro.workload.bins import BIN_NAMES


def test_fig13_scalability(benchmark):
    result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    print()
    print(render_fig13(result))
    smallest = min(result.worker_counts)
    largest = max(result.worker_counts)
    # Gains persist at scale: XGB keeps improving over HDFS everywhere.
    for workers in result.worker_counts:
        total = sum(result.efficiency_improvement[workers][b] for b in BIN_NAMES)
        assert total > 0, f"no efficiency gain at {workers} workers"
    # The headline insight: mid-size bins' efficiency gains do not
    # collapse as the cluster grows.
    mid_small = result.efficiency_improvement[smallest]["C"]
    mid_large = result.efficiency_improvement[largest]["C"]
    assert mid_large > 0.25 * max(mid_small, 1e-9)
