"""Fig 6: % reduction in completion time vs HDFS (FB and CMU).

The paper's orderings, asserted at the resolution the simulator
supports: gains grow with job size, the managed policies beat static
OctopusFS placement, XGB is strictly best on FB and within noise of the
best pair on CMU (sub-point margins between XGB and LRU-OSA are not
meaningful — see EXPERIMENTS.md).
"""

from repro.experiments.endtoend import render_fig06
from repro.workload.bins import BIN_NAMES


def _mean_gains(result):
    return {
        label: sum(values[b] for b in BIN_NAMES) / len(BIN_NAMES)
        for label, values in result.completion_reduction.items()
    }


def test_fig06_completion(benchmark, endtoend_fb, endtoend_cmu):
    def regenerate():
        return render_fig06(endtoend_fb), render_fig06(endtoend_cmu)

    fb_table, cmu_table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(fb_table)
    print()
    print(cmu_table)
    for result in (endtoend_fb, endtoend_cmu):
        # Gains grow with job size.
        xgb = result.completion_reduction["XGB"]
        assert xgb["F"] > xgb["A"], "larger jobs should gain more"
        mean_gain = _mean_gains(result)
        best = max(mean_gain.values())
        # Adaptive management beats static placement overall...
        assert best > mean_gain["OctopusFS"], mean_gain
        # ...and XGB sits at the top within measurement noise.
        assert mean_gain["XGB"] >= best - 0.5, mean_gain
    # On FB, XGB is strictly the best policy (the paper's headline).
    fb_gain = _mean_gains(endtoend_fb)
    assert max(fb_gain, key=fb_gain.get) == "XGB", fb_gain
