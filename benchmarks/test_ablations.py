"""Extension: design-choice ablations called out in DESIGN.md."""

from repro.experiments.ablations import (
    render_ablation,
    run_budget_sweep,
    run_candidate_sweep,
    run_scheduler_awareness,
    run_threshold_sweep,
)


def test_ablation_downgrade_thresholds(benchmark):
    result = benchmark.pedantic(run_threshold_sweep, rounds=1, iterations=1)
    print()
    print(render_ablation(result, "Ablation: downgrade start/stop thresholds"))
    assert len(result.rows) == 3
    for _, (hr, bhr, hours) in result.rows.items():
        assert 0.0 <= hr <= 1.0 and 0.0 <= bhr <= 1.0
        assert hours > 0


def test_ablation_xgb_candidate_width(benchmark):
    result = benchmark.pedantic(run_candidate_sweep, rounds=1, iterations=1)
    print()
    print(render_ablation(result, "Ablation: XGB candidate-scan width k"))
    assert len(result.rows) == 4


def test_ablation_xgb_upgrade_budget(benchmark):
    result = benchmark.pedantic(run_budget_sweep, rounds=1, iterations=1)
    print()
    print(render_ablation(result, "Ablation: XGB upgrade budget"))
    assert len(result.rows) == 3


def test_ablation_scheduler_tier_awareness(benchmark):
    result = benchmark.pedantic(run_scheduler_awareness, rounds=1, iterations=1)
    print()
    print(render_ablation(result, "Ablation: scheduler tier awareness"))
    aware = result.rows["tier-aware"]
    stock = result.rows["tier-unaware (stock)"]
    # A tier-aware scheduler reads at least as much from memory.
    assert aware[0] >= stock[0] - 0.02
