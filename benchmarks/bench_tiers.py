"""Record the tier-hierarchy benchmark baseline (BENCH_tiers.json).

Runs the FB workload under the ``default3`` and ``nvme4`` hierarchies
with the LRU/OSA policy pair and records wall-clock runtime, hit
ratios, and per-tier movement, so future PRs can track the performance
trajectory of the simulator and the effect of hierarchy depth.

Usage::

    python benchmarks/bench_tiers.py [--out BENCH_tiers.json] [--scale 1.0]
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.common.units import GB
from repro.engine.runner import SystemConfig, run_workload
from repro.workload.profiles import PROFILES, scaled_profile
from repro.workload.synthesis import synthesize_trace

TIER_PRESETS = ("default3", "nvme4")


def bench_one(trace, tiers: str, seed: int) -> dict:
    config = SystemConfig(
        label=f"FB/{tiers}/lru-osa",
        placement="octopus",
        downgrade="lru",
        upgrade="osa",
        tiers=tiers,
        seed=seed,
    )
    start = time.perf_counter()
    result = run_workload(trace, config)
    runtime = time.perf_counter() - start
    return {
        "tiers": tiers,
        "runtime_seconds": round(runtime, 3),
        "jobs_finished": result.jobs_finished,
        "hit_ratio": round(result.metrics.hit_ratio(), 4),
        "byte_hit_ratio": round(result.metrics.byte_hit_ratio(), 4),
        "location_hit_ratio": round(result.metrics.location_hit_ratio(), 4),
        "task_hours": round(result.metrics.total_task_seconds() / 3600.0, 3),
        "bytes_upgraded_gb": {
            name: round(v / GB, 3)
            for name, v in result.bytes_upgraded_by_tier.items()
        },
        "bytes_downgraded_gb": {
            name: round(v / GB, 3)
            for name, v in result.bytes_downgraded_by_tier.items()
        },
        "transfers_committed": result.transfers_committed,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out", default=str(Path(__file__).resolve().parent.parent / "BENCH_tiers.json")
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args(argv)

    trace = synthesize_trace(
        scaled_profile(PROFILES["FB"], args.scale), seed=args.seed
    )
    report = {
        "workload": "FB",
        "scale": args.scale,
        "seed": args.seed,
        "policies": "lru/osa",
        "python": platform.python_version(),
        "runs": [bench_one(trace, tiers, args.seed) for tiers in TIER_PRESETS],
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
