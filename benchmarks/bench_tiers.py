"""Record tier-hierarchy / I/O-model benchmarks (BENCH_*.json).

Runs the FB workload across tier-hierarchy presets and I/O pricing
models with the LRU/OSA policy pair and records wall-clock runtime, hit
ratios, per-tier movement, and contention / transfer-delay statistics,
so future PRs can track the performance trajectory of the simulator,
the effect of hierarchy depth, and the cost of fair-share re-pricing.
Each row also carries the process RSS right after the run (``rss_mb``,
informational — never gated).

Usage::

    python benchmarks/bench_tiers.py [--out BENCH_tiers.json] [--scale 1.0]
    python benchmarks/bench_tiers.py --presets default3 nvme4 remote5 \\
        --io-models snapshot fairshare --out BENCH_iomodel.json
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.common.proc import current_rss_mb
from repro.common.units import GB
from repro.engine.iomodel import IO_MODEL_NAMES
from repro.engine.runner import SystemConfig, run_workload
from repro.workload.profiles import PROFILES, scaled_profile
from repro.workload.synthesis import synthesize_trace

DEFAULT_PRESETS = ("default3", "nvme4")


def bench_one(trace, tiers: str, seed: int, io_model: str = "snapshot") -> dict:
    config = SystemConfig(
        label=f"FB/{tiers}/{io_model}/lru-osa",
        placement="octopus",
        downgrade="lru",
        upgrade="osa",
        tiers=tiers,
        io_model=io_model,
        seed=seed,
    )
    start = time.perf_counter()
    result = run_workload(trace, config)
    runtime = time.perf_counter() - start
    io_stats = {
        key: (round(value, 3) if isinstance(value, float) else value)
        for key, value in result.io_stats.items()
    }
    return {
        "tiers": tiers,
        "io_model": io_model,
        "runtime_seconds": round(runtime, 3),
        "rss_mb": current_rss_mb(),
        "jobs_finished": result.jobs_finished,
        "hit_ratio": round(result.metrics.hit_ratio(), 4),
        "byte_hit_ratio": round(result.metrics.byte_hit_ratio(), 4),
        "location_hit_ratio": round(result.metrics.location_hit_ratio(), 4),
        "task_hours": round(result.metrics.total_task_seconds() / 3600.0, 3),
        "bytes_upgraded_gb": {
            name: round(v / GB, 3)
            for name, v in result.bytes_upgraded_by_tier.items()
        },
        "bytes_downgraded_gb": {
            name: round(v / GB, 3)
            for name, v in result.bytes_downgraded_by_tier.items()
        },
        "transfers_committed": result.transfers_committed,
        "io": io_stats,
        "transfer_ideal_seconds": round(result.transfer_ideal_seconds, 3),
        "transfer_realized_seconds": round(result.transfer_realized_seconds, 3),
        "transfer_delay_seconds": round(
            max(
                0.0,
                result.transfer_realized_seconds - result.transfer_ideal_seconds,
            ),
            3,
        ),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_tiers.json"),
    )
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--presets",
        nargs="+",
        default=list(DEFAULT_PRESETS),
        help="tier hierarchy presets to benchmark",
    )
    parser.add_argument(
        "--io-models",
        nargs="+",
        choices=IO_MODEL_NAMES,
        default=["snapshot"],
        help="I/O pricing models to benchmark each preset under",
    )
    args = parser.parse_args(argv)

    trace = synthesize_trace(
        scaled_profile(PROFILES["FB"], args.scale), seed=args.seed
    )
    report = {
        "workload": "FB",
        "scale": args.scale,
        "seed": args.seed,
        "policies": "lru/osa",
        "python": platform.python_version(),
        "runs": [
            bench_one(trace, tiers, args.seed, io_model)
            for tiers in args.presets
            for io_model in args.io_models
        ],
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report, indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
