"""Sweep-orchestrator benchmark (BENCH_sweep.json).

Runs a builtin sweep spec twice — serially (``--jobs 1``) and through
the multiprocess orchestrator (``--jobs N``, default 4) — and records:

* **equivalence** (``fingerprints_match``, exact-gated): both runs must
  produce bit-identical per-cell simulated metrics; only the
  host-dependent wall/throughput/RSS fields may differ
  (:data:`repro.sweep.spec.HOST_KEYS`).
* **speedup** (informational): parallel wall time over serial wall
  time.  ``within_target`` compares against ``--target`` (default 3x)
  but is only asserted when the host actually has ``--jobs`` cores —
  a 1-core CI runner cannot demonstrate a parallel speedup, and
  pretending otherwise would gate on the weather.  ``cpu_count`` is
  recorded alongside so the artifact is honest about what it measured.
* the serial run's full merged cell table (exact-gated like any sweep
  report).

Usage::

    python benchmarks/bench_sweep.py [--out BENCH_sweep.json]
    python benchmarks/bench_sweep.py --smoke          # CI-sized spec
    python benchmarks/bench_sweep.py --jobs 8 --target 4
"""

from __future__ import annotations

import argparse
import json
import os
import platform
from pathlib import Path

from repro.sweep import builtin_specs, report_fingerprints, run_sweep

#: Parallel speedup the orchestrator must reach at ``--jobs 4`` on a
#: host with at least that many cores (sweep cells are independent
#: whole-system simulations, so near-linear scaling is expected).
SPEEDUP_TARGET = 3.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_sweep.json"),
    )
    parser.add_argument(
        "--spec",
        default="scenario-matrix",
        choices=sorted(builtin_specs()),
        help="builtin sweep spec to measure",
    )
    parser.add_argument(
        "--smoke", action="store_true", help="shorthand for --spec smoke"
    )
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--target", type=float, default=SPEEDUP_TARGET)
    args = parser.parse_args(argv)

    spec = builtin_specs()["smoke" if args.smoke else args.spec]
    cpu_count = os.cpu_count() or 1
    print(f"sweep benchmark: {spec.name}, jobs={args.jobs}, cpus={cpu_count}")

    serial = run_sweep(spec, jobs=1)
    print(f"  serial:   {serial['sweep_wall_seconds']}s")
    parallel = run_sweep(spec, jobs=args.jobs)
    print(f"  parallel: {parallel['sweep_wall_seconds']}s")

    matches = report_fingerprints(serial) == report_fingerprints(parallel)
    serial_s = serial["sweep_wall_seconds"]
    parallel_s = parallel["sweep_wall_seconds"]
    speedup = round(serial_s / parallel_s, 2) if parallel_s > 0 else None
    # The target is only meaningful when the host can actually run
    # --jobs cells at once; otherwise record the measurement but no
    # verdict.
    within = speedup >= args.target if cpu_count >= args.jobs else None

    report = {
        "benchmark": "sweep_speedup",
        "name": spec.name,
        "spec_id": spec.spec_id,
        "python": platform.python_version(),
        "cpu_count": cpu_count,
        "jobs": args.jobs,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
        "speedup_target": args.target,
        "within_target": within,
        "fingerprints_match": matches,
        "summary": serial["summary"],
        "cells": serial["cells"],
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(
        json.dumps(
            {k: report[k] for k in (
                "speedup", "within_target", "fingerprints_match", "cpu_count"
            )},
            indent=2,
        )
    )
    print(f"wrote {args.out}")
    return 0 if matches else 1


if __name__ == "__main__":
    raise SystemExit(main())
