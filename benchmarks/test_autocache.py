"""AutoCache (Sec 3.3): the framework managing the HDFS centralized cache.

Not a paper figure of its own — the paper's Replication Manager/Monitor
generalize the authors' earlier AutoCache framework ([25]); this bench
shows the generalized framework reproducing that mode: automated cache
admission/eviction beats both no cache and the static centralized cache
once memory fills.
"""

from repro.experiments.autocache import render_autocache, run_autocache
from repro.experiments.common import FULL_SCALE


def test_autocache(benchmark):
    result = benchmark.pedantic(
        lambda: run_autocache("FB", FULL_SCALE), rounds=1, iterations=1
    )
    print()
    print(render_autocache(result))
    static = result.runs["HDFS+Cache"]
    auto_lru = result.runs["AutoCache(LRU-OSA)"]
    auto_xgb = result.runs["AutoCache(XGB)"]
    # Cache evictions really are deletions: nothing is moved down.
    assert auto_lru.bytes_downgraded_memory == 0
    assert auto_xgb.bytes_downgraded_memory == 0
    # Automated caching keeps serving from memory after the static cache
    # has flatlined: higher byte hit ratio than the static cache.
    assert (
        auto_xgb.metrics.byte_hit_ratio() > static.metrics.byte_hit_ratio()
    ), (
        f"AutoCache(XGB) BHR {auto_xgb.metrics.byte_hit_ratio():.3f} vs "
        f"static cache {static.metrics.byte_hit_ratio():.3f}"
    )
    # And it costs less aggregate task time than no cache at all.
    baseline = result.runs["HDFS"]
    assert (
        auto_xgb.metrics.total_task_seconds()
        < baseline.metrics.total_task_seconds()
    )
