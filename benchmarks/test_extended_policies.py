"""Extension: related-work eviction policies in the framework.

Demonstrates the paper's generality claim (pluggable policies, Sec 8)
beyond its own 11 — ARC, Marker+oracle, SLRU-K, GDS, LeCaR, plus the
RANDOM/SIZE nulls — all through the same four decision points.  Full
scale: the memory tier must saturate for eviction quality to matter.
"""

from repro.experiments.common import FULL_SCALE
from repro.experiments.extended_policies import (
    render_extended_policies,
    run_extended_policies,
)


def test_extended_policies(benchmark):
    result = benchmark.pedantic(
        lambda: run_extended_policies("FB", FULL_SCALE), rounds=1, iterations=1
    )
    print()
    print(render_extended_policies(result))
    bhr = {
        label: run.metrics.byte_hit_ratio()
        for label, run in result.runs.items()
        if label != "HDFS"
    }
    # RANDOM carries no signal at all: it never leads the field.
    best = max(bhr, key=bhr.get)
    assert best != "RANDOM", bhr
    # Every policy ran to completion under the shared framework.
    for label, run in result.runs.items():
        assert run.jobs_finished > 0, label
    # The informed policies beat RANDOM on byte hit ratio.
    informed = ("LRU", "XGB", "ARC", "SLRU-K", "LeCaR", "MARKER+ML")
    beaten = sum(bhr[p] > bhr["RANDOM"] for p in informed)
    assert beaten >= 4, {p: round(bhr[p], 3) for p in informed}
