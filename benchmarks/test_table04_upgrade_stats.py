"""Table 4: upgrade data volumes, byte accuracy, byte coverage.

The paper's BAc values sit below 1 because its cluster re-read upgraded
files rarely; the simulator's workload re-reads them many times, so
bytes-read-from-memory can exceed bytes-upgraded (BAc > 1).  The shape
preserved here is the *ordering*: OSA is the least selective admitter,
and the learned policy turns upgraded bytes into memory reads at least
as well as the weight-threshold heuristics.
"""

from repro.experiments.upgrade_only import render_table04


def test_table04_upgrade_stats(benchmark, upgrade_fb):
    table = benchmark.pedantic(
        lambda: render_table04(upgrade_fb), rounds=1, iterations=1
    )
    print()
    print(table)
    stats = upgrade_fb.stats
    # OSA is the least selective policy: it upgrades the most data
    # (ties allowed: memory capacity caps every aggressive admitter).
    most = max(s.gb_upgraded_to_memory for s in stats.values())
    assert stats["OSA"].gb_upgraded_to_memory >= most - 0.5
    # Ratios are sane: BAc non-negative (may exceed 1 under re-reads),
    # BCo a proper fraction.
    for label, stat in stats.items():
        assert stat.byte_accuracy >= 0.0, label
        assert 0.0 <= upgrade_fb.byte_coverage[label] <= 1.0, label
    # LRFU's weight threshold is the most selective admitter: it
    # upgrades the least data...
    least = min(stats, key=lambda p: stats[p].gb_upgraded_to_memory)
    assert least == "LRFU", least
    # ...but pays for it in coverage, which the learned admitter keeps.
    assert upgrade_fb.byte_coverage["XGB"] > upgrade_fb.byte_coverage["LRFU"]
    # Everyone improves on serving nothing from memory.
    assert all(upgrade_fb.byte_coverage[p] > 0 for p in stats)
