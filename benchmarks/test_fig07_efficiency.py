"""Fig 7: % improvement in cluster efficiency vs HDFS (FB and CMU)."""

from repro.experiments.endtoend import render_fig07
from repro.workload.bins import BIN_NAMES


def test_fig07_efficiency(benchmark, endtoend_fb, endtoend_cmu):
    def regenerate():
        return render_fig07(endtoend_fb), render_fig07(endtoend_cmu)

    fb_table, cmu_table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(fb_table)
    print()
    print(cmu_table)
    for result in (endtoend_fb, endtoend_cmu):
        xgb = result.efficiency_improvement["XGB"]
        # Larger bins carry more I/O, hence bigger efficiency gains.
        assert xgb["E"] > xgb["A"]
        # Every policy pair improves efficiency over plain HDFS overall.
        for label, values in result.efficiency_improvement.items():
            total = sum(values[b] for b in BIN_NAMES)
            assert total > 0, f"{label} should not regress overall"
