"""Sec 4.3: the hyperparameter grid search behind d=20, r=10."""

import numpy as np

from repro.experiments.tuning import render_tuning, run_tuning

#: A reduced grid keeps the bench under a minute while spanning the
#: shallow-vs-deep and few-vs-many-rounds axes the paper searched.
DEPTHS = (4, 12, 20)
ROUNDS = (5, 10)


def test_sec43_tuning(benchmark):
    result = benchmark.pedantic(
        lambda: run_tuning(depths=DEPTHS, rounds=ROUNDS), rounds=1, iterations=1
    )
    print()
    print(render_tuning(result))
    mean_auc = result.mean_auc()
    # Depth is the dominant knob (the paper found the same): very shallow
    # trees underfit relative to the best cell.
    best = max(mean_auc.values())
    shallow = [v for (d, _r), v in mean_auc.items() if d == min(DEPTHS)]
    assert min(shallow) < best
    # The selected cell is near-optimal by construction.
    sel_auc = mean_auc[result.selected]
    assert sel_auc >= best - 0.005
    # Every cell trained successfully and produced a sane AUC.
    assert all(0.5 < cell.auc <= 1.0 for cell in result.cells)
    # Deeper trees cost more to train (cost model is monotone in depth).
    cost = result.mean_cost()
    cheap = np.mean([v for (d, _), v in cost.items() if d == min(DEPTHS)])
    dear = np.mean([v for (d, _), v in cost.items() if d == max(DEPTHS)])
    assert cheap <= dear
