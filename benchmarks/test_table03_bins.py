"""Table 3: job size distributions for FB and CMU."""

from repro.experiments.table03_bins import render_table03, run_table03


def test_table03_bins(benchmark):
    result = benchmark.pedantic(run_table03, rounds=1, iterations=1)
    print()
    print(render_table03(result))
    fb = result.rows["FB"]
    # Heavy-tailed shape: bin A dominates job counts but not I/O.
    assert fb[0].pct_jobs > 60
    assert fb[0].pct_io < fb[0].pct_jobs
    large_io = sum(row.pct_io for row in fb[3:])
    assert large_io > 40, "large jobs (D-F) should dominate I/O"
