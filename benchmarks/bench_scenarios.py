"""Streaming-scenario benchmark (BENCH_scenarios.json).

Replays every registered scenario through the streaming drive path
under both I/O pricing models and records, per run:

* the deterministic simulation results (jobs, hit ratios, transfers,
  deletions, events processed) — gated *exactly* by
  ``check_regression.py`` against the committed baseline;
* generator/engine throughput (``events_per_second``) and the process
  RSS measured right after each run (``rss_mb``, from
  ``/proc/self/status`` via :func:`repro.common.proc.current_rss_mb`)
  — informational, since streamed replay is the memory-boundedness
  story: per-run RSS must not scale with stream length.  (``ru_maxrss``
  would be useless here — it is a process-lifetime high-water mark, so
  one big early run would mask everything after it.);
* the back-pressure counters (``pump_lead_{mean,max}_seconds``,
  ``pump_late_events``, ``queue_delay_seconds``) — deterministic
  simulation-time values, exact-gated.

Each run is one :mod:`repro.sweep` cell: the rows come from the shared
sweep worker (:func:`repro.sweep.worker.run_cell`), so ``--jobs N``
fans the matrix across worker processes through the sweep orchestrator
with bit-identical simulated metrics (only the host-dependent wall /
throughput / RSS fields differ between serial and parallel execution).

Usage::

    python benchmarks/bench_scenarios.py [--out BENCH_scenarios.json]
    python benchmarks/bench_scenarios.py --smoke      # CI-sized subset
    python benchmarks/bench_scenarios.py --scenarios pipeline mlscan
    python benchmarks/bench_scenarios.py --jobs 4     # parallel cells
"""

from __future__ import annotations

import argparse
import json
import platform
from pathlib import Path

from repro.sweep import make_cell, run_cell
from repro.workload.scenarios import scenario_names

#: Replay scale per mode: classic (fb/cmu) scales job count, generated
#: scenarios scale duration.
FULL_SCALES = {"classic": 1.0, "generated": 1.0}
SMOKE_SCALES = {"classic": 0.1, "generated": 0.15}

IO_MODELS = ("snapshot", "fairshare")

#: The established row schema of this report (projection of the sweep
#: worker's superset row; the committed baselines are keyed to it).
ROW_KEYS = (
    "scenario",
    "io_model",
    "scale",
    "seed",
    "workers",
    "jobs_submitted",
    "jobs_finished",
    "deletions_applied",
    "hit_ratio",
    "byte_hit_ratio",
    "task_hours",
    "transfers_committed",
    "events_processed",
    "runtime_seconds",
    "events_per_second",
    "rss_mb",
    "pump_lead_mean_seconds",
    "pump_lead_max_seconds",
    "pump_late_events",
    "queue_delay_seconds",
)


def scenario_cell(name: str, scale: float, io_model: str, seed: int, workers: int):
    """The sweep cell reproducing one row of this benchmark's matrix."""
    return make_cell(
        kind="scenario",
        workload=name,
        scale=scale,
        seed=seed,
        downgrade="lru",
        upgrade="osa",
        workers=workers,
        io_model=io_model,
    )


def project_row(worker_row: dict) -> dict:
    """Select this report's established fields from the superset row."""
    return {key: worker_row[key] for key in ROW_KEYS}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_scenarios.json")
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized scales (see SMOKE_SCALES)"
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        help="subset of scenarios (default: every registered one)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=11)
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for the matrix (default 1 = in-process serial)",
    )
    args = parser.parse_args(argv)

    scales = SMOKE_SCALES if args.smoke else FULL_SCALES
    names = args.scenarios or scenario_names()
    cells = [
        scenario_cell(
            name,
            scales["classic" if name in ("fb", "cmu") else "generated"],
            io_model,
            args.seed,
            args.workers,
        )
        for name in names
        for io_model in IO_MODELS
    ]
    if args.jobs == 1:
        rows = [project_row(run_cell(cell.config)) for cell in cells]
    else:
        from repro.sweep import SweepStore, run_cells
        import tempfile

        with tempfile.TemporaryDirectory(prefix="bench-scenarios-") as tmp:
            payloads = run_cells(
                cells, SweepStore(tmp, "bench"), jobs=args.jobs, retries=1
            )
        bad = [p for p in payloads if p["status"] != "ok"]
        if bad:
            raise SystemExit(
                f"{len(bad)} cell(s) failed: "
                + "; ".join(f"{p['cell_id']}: {p['error']}" for p in bad)
            )
        rows = [project_row(p["row"]) for p in payloads]
    for row in rows:
        print(
            f"{row['scenario']:12s} {row['io_model']:9s} scale={row['scale']:g} "
            f"jobs={row['jobs_finished']}/{row['jobs_submitted']} "
            f"hit={row['hit_ratio']:.3f} "
            f"{row['events_per_second']:>9,.0f} ev/s "
            f"rss={row['rss_mb']:.0f}MB"
        )

    report = {
        "benchmark": "scenarios",
        "seed": args.seed,
        "python": platform.python_version(),
        "runs": rows,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} ({len(rows)} runs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
