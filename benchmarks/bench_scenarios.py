"""Streaming-scenario benchmark (BENCH_scenarios.json).

Replays every registered scenario through the streaming drive path
under both I/O pricing models and records, per run:

* the deterministic simulation results (jobs, hit ratios, transfers,
  deletions, events processed) — gated *exactly* by
  ``check_regression.py`` against the committed baseline;
* generator/engine throughput (``events_per_second``) and the process
  RSS measured right after each run (``rss_mb``, from
  ``/proc/self/status``) — informational, since streamed replay is the
  memory-boundedness story: per-run RSS must not scale with stream
  length.  (``ru_maxrss`` would be useless here — it is a
  process-lifetime high-water mark, so one big early run would mask
  everything after it.);
* the back-pressure counters (``pump_lead_{mean,max}_seconds``,
  ``pump_late_events``, ``queue_delay_seconds``) — deterministic
  simulation-time values, but compared informationally first (see
  ``docs/benchmarks.md``).

Usage::

    python benchmarks/bench_scenarios.py [--out BENCH_scenarios.json]
    python benchmarks/bench_scenarios.py --smoke      # CI-sized subset
    python benchmarks/bench_scenarios.py --scenarios pipeline mlscan
"""

from __future__ import annotations

import argparse
import json
import platform
import resource
import time
from pathlib import Path

from repro.engine.runner import SystemConfig, WorkloadRunner
from repro.workload.scenarios import build_scenario, scenario_names

#: Replay scale per mode: classic (fb/cmu) scales job count, generated
#: scenarios scale duration.
FULL_SCALES = {"classic": 1.0, "generated": 1.0}
SMOKE_SCALES = {"classic": 0.1, "generated": 0.15}

IO_MODELS = ("snapshot", "fairshare")


def current_rss_mb() -> float:
    """Current process RSS in MB (per-run signal, unlike ru_maxrss)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    # Non-Linux fallback: lifetime peak is the best available.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def bench_one(name: str, scale: float, io_model: str, seed: int, workers: int):
    stream = build_scenario(name, seed=seed, scale=scale)
    config = SystemConfig(
        label=f"{name}/{io_model}",
        placement="octopus",
        downgrade="lru",
        upgrade="osa",
        workers=workers,
        io_model=io_model,
    )
    runner = WorkloadRunner(stream, config)
    start = time.perf_counter()
    result = runner.run()
    wall = time.perf_counter() - start
    events = runner.sim.events_processed
    return {
        "scenario": name,
        "io_model": io_model,
        "scale": scale,
        "seed": seed,
        "workers": workers,
        "jobs_submitted": result.jobs_submitted,
        "jobs_finished": result.jobs_finished,
        "deletions_applied": result.deletions_applied,
        "hit_ratio": round(result.metrics.hit_ratio(), 6),
        "byte_hit_ratio": round(result.metrics.byte_hit_ratio(), 6),
        "task_hours": round(result.metrics.total_task_seconds() / 3600.0, 4),
        "transfers_committed": result.transfers_committed,
        "events_processed": events,
        "runtime_seconds": round(wall, 3),
        "events_per_second": round(events / wall, 1) if wall > 0 else 0.0,
        "rss_mb": round(current_rss_mb(), 1),
        "pump_lead_mean_seconds": round(result.pump_lead_mean_seconds, 3),
        "pump_lead_max_seconds": round(result.pump_lead_max_seconds, 3),
        "pump_late_events": result.pump_late_events,
        "queue_delay_seconds": round(sum(result.queue_delay_by_tier.values()), 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="BENCH_scenarios.json")
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized scales (see SMOKE_SCALES)"
    )
    parser.add_argument(
        "--scenarios",
        nargs="+",
        default=None,
        help="subset of scenarios (default: every registered one)",
    )
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--workers", type=int, default=11)
    args = parser.parse_args(argv)

    scales = SMOKE_SCALES if args.smoke else FULL_SCALES
    names = args.scenarios or scenario_names()
    runs = []
    for name in names:
        scale = scales["classic" if name in ("fb", "cmu") else "generated"]
        for io_model in IO_MODELS:
            row = bench_one(name, scale, io_model, args.seed, args.workers)
            runs.append(row)
            print(
                f"{name:12s} {io_model:9s} scale={scale:g} "
                f"jobs={row['jobs_finished']}/{row['jobs_submitted']} "
                f"hit={row['hit_ratio']:.3f} "
                f"{row['events_per_second']:>9,.0f} ev/s "
                f"rss={row['rss_mb']:.0f}MB"
            )

    report = {
        "benchmark": "scenarios",
        "seed": args.seed,
        "python": platform.python_version(),
        "runs": runs,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"wrote {args.out} ({len(runs)} runs)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
