"""CI benchmark-regression gate.

Compares freshly produced ``BENCH_*_ci.json`` reports against the
committed baselines in ``benchmarks/baselines/`` and fails (exit 1) on
drift:

* **Simulated-result metrics** (hit ratios, jobs finished, bytes moved,
  events processed, flow/transfer counts, ...) are deterministic given
  the seed, so they must match the baseline *exactly* — any difference
  means the simulation semantics changed and the baseline must be
  consciously re-recorded.
* **Wall-clock metrics** (``runtime_seconds``, ``events_per_second``)
  vary with the host, so they get a tolerance band: the measured value
  may be at most ``--wall-tolerance`` times the baseline (default 3.0;
  CI runners are slower and noisier than the machines that record
  baselines, so only order-of-magnitude regressions trip the gate).

A markdown diff table is appended to ``$GITHUB_STEP_SUMMARY`` when that
variable is set (i.e. inside GitHub Actions), and always printed to
stdout.

Usage::

    python benchmarks/check_regression.py BENCH_engine_ci.json [more...]
    python benchmarks/check_regression.py --wall-tolerance 4 BENCH_*.json
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from pathlib import Path

BASELINE_DIR = Path(__file__).resolve().parent / "baselines"

#: Host-dependent metrics: banded comparison instead of exact.
WALL_CLOCK_KEYS = frozenset(
    {
        "runtime_seconds",
        "snapshot_seconds",
        "fairshare_seconds",
        "wall_seconds_total",
        "sweep_wall_seconds",
        "serial_seconds",
        "parallel_seconds",
    }
)
#: Shown in the diff table but never gating: throughput, ratios,
#: process RSS, and sweep-host descriptors (worker counts, retry
#: attempts, core counts, measured speedups) are too host-sensitive for
#: a pass/fail band on shared CI runners.
INFORMATIONAL_KEYS = frozenset(
    {
        "events_per_second",
        "reference_events_per_second",
        "fast_events_per_second",
        "speedup",
        "fairshare_over_snapshot",
        "within_budget",
        "rss_mb",
        "pump_late_events",
        "attempts",
        "retried",
        "jobs",
        "cpu_count",
        "events_per_second_aggregate",
        "within_target",
        "speedup_target",
    }
)

#: The back-pressure counters (``pump_lead_*``, ``queue_delay_*``,
#: ``max_heap_size``) started life as informational for one PR; they are
#: deterministic simulation-time values and are now exact-gated like
#: every other simulated metric.  The substring mechanism stays for the
#: next metric that needs a grace PR.
INFORMATIONAL_SUBSTRINGS: tuple = ()

#: Metrics excluded from comparison entirely (environment descriptors).
SKIPPED_KEYS = frozenset({"python", "label"})

#: Wall-clock baselines below this many seconds are dominated by fixed
#: process overhead and scheduler noise; they carry no regression signal.
WALL_CLOCK_FLOOR_SECONDS = 0.5


def _informational(key: str, leaf: str) -> bool:
    return leaf in INFORMATIONAL_KEYS or any(
        fragment in key for fragment in INFORMATIONAL_SUBSTRINGS
    )


def run_key(run: dict) -> str:
    """Identity of one benchmark row inside a report."""
    parts = [
        str(run.get(field))
        for field in (
            "workload",
            "scenario",
            "engine",
            "tiers",
            "io_model",
            "workers",
            "scale",
            "seed",
        )
        if field in run
    ]
    return "/".join(parts) if parts else "run"


def flatten(prefix: str, value) -> dict:
    """Flatten nested dicts to dotted keys; lists of runs use run_key."""
    flat = {}
    if isinstance(value, dict):
        for key, sub in value.items():
            flat.update(flatten(f"{prefix}.{key}" if prefix else key, sub))
    elif isinstance(value, list) and all(isinstance(v, dict) for v in value):
        for i, sub in enumerate(value):
            label = run_key(sub) if "io_model" in sub or "workload" in sub else str(i)
            flat.update(flatten(f"{prefix}[{label}]", sub))
    else:
        flat[prefix] = value
    return flat


def row_groups(flat: dict) -> set:
    """Every bracketed row prefix appearing in a flattened report.

    ``runs[FB/.../fast].hit_ratio`` contributes ``runs[FB/.../fast]``;
    nested rows contribute every enclosing prefix.  These are the units
    the row-presence check compares, so a benchmark row that disappears
    wholesale fails the gate even when all of its individual leaves
    would have been classified informational.
    """
    groups = set()
    for key in flat:
        for match in re.finditer(r"\]", key):
            groups.add(key[: match.end()])
    return groups


class Diff:
    def __init__(self, key, baseline, current, kind, ok):
        self.key = key
        self.baseline = baseline
        self.current = current
        self.kind = kind
        self.ok = ok


def compare_report(baseline: dict, current: dict, wall_tolerance: float):
    """Yield Diff rows for every comparable metric in the two reports."""
    base_flat = flatten("", baseline)
    cur_flat = flatten("", current)
    base_rows, cur_rows = row_groups(base_flat), row_groups(cur_flat)
    for row in sorted(base_rows - cur_rows):
        yield Diff(row, "present", None, "row-presence", False)
    for row in sorted(cur_rows - base_rows):
        yield Diff(row, None, "present", "row-presence", False)
    for key in sorted(set(base_flat) | set(cur_flat)):
        leaf = key.rsplit(".", 1)[-1]
        if leaf in SKIPPED_KEYS:
            continue
        in_base, in_cur = key in base_flat, key in cur_flat
        if not (in_base and in_cur):
            if _informational(key, leaf):
                # A new informational metric missing from an old baseline
                # (or vice versa) is reported, not failed.
                yield Diff(key, base_flat.get(key), cur_flat.get(key), "info", True)
            else:
                yield Diff(
                    key, base_flat.get(key), cur_flat.get(key), "presence", False
                )
            continue
        base_value, cur_value = base_flat[key], cur_flat[key]
        if _informational(key, leaf):
            yield Diff(key, base_value, cur_value, "info", True)
        elif leaf in WALL_CLOCK_KEYS:
            ok = True
            if isinstance(base_value, (int, float)) and isinstance(
                cur_value, (int, float)
            ):
                # Baselines below the floor carry no timing signal, but a
                # blowup past tolerance x floor still fails.
                allowed = wall_tolerance * max(base_value, WALL_CLOCK_FLOOR_SECONDS)
                ok = cur_value <= allowed
            yield Diff(key, base_value, cur_value, "wall-clock", ok)
        else:
            yield Diff(key, base_value, cur_value, "exact", base_value == cur_value)


def markdown_table(name: str, diffs) -> str:
    """Failures plus the (informational) wall-clock rows; matching
    exact metrics are elided to keep the summary readable."""
    lines = [
        f"### Benchmark regression check: `{name}`",
        "",
        "| metric | baseline | current | check | status |",
        "|---|---|---|---|---|",
    ]
    shown = 0
    for d in diffs:
        if d.ok and d.kind == "exact":
            continue
        status = "ok" if d.ok else "**FAIL**"
        lines.append(
            f"| `{d.key}` | {d.baseline} | {d.current} | {d.kind} | {status} |"
        )
        shown += 1
    if shown == 0:
        lines.append("| _all exact metrics match_ | | | | ok |")
    lines.append("")
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("reports", nargs="+", help="freshly produced BENCH_*.json")
    parser.add_argument(
        "--baseline-dir",
        default=str(BASELINE_DIR),
        help="directory holding committed baseline reports (matched by filename)",
    )
    parser.add_argument(
        "--wall-tolerance",
        type=float,
        default=3.0,
        help="max allowed wall-clock slowdown factor vs baseline",
    )
    args = parser.parse_args(argv)

    baseline_dir = Path(args.baseline_dir)
    summary_chunks = []
    failures = 0
    for report_path in args.reports:
        report_path = Path(report_path)
        baseline_path = baseline_dir / report_path.name
        if not baseline_path.exists():
            print(f"error: no committed baseline {baseline_path}", file=sys.stderr)
            failures += 1
            continue
        baseline = json.loads(baseline_path.read_text())
        current = json.loads(report_path.read_text())
        diffs = list(compare_report(baseline, current, args.wall_tolerance))
        bad = [d for d in diffs if not d.ok]
        failures += len(bad)
        table = markdown_table(report_path.name, diffs)
        summary_chunks.append(table)
        verdict = "drift detected" if bad else "clean"
        print(f"{report_path.name}: {len(bad)} regression(s) — {verdict}")
        for d in bad:
            print(
                f"  FAIL {d.key} ({d.kind}): "
                f"baseline={d.baseline} current={d.current}"
            )

    summary = "\n".join(summary_chunks)
    step_summary = os.environ.get("GITHUB_STEP_SUMMARY")
    if step_summary:
        with open(step_summary, "a") as fh:
            fh.write(summary + "\n")
    else:
        print(summary)
    if failures:
        print(f"regression gate: FAILED ({failures} issue(s))", file=sys.stderr)
        return 1
    print("regression gate: passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
