"""Fig 5: CDFs of job data size, file size, access frequency."""

from repro.experiments.fig05_cdfs import render_fig05, run_fig05


def test_fig05_cdfs(benchmark):
    result = benchmark.pedantic(run_fig05, rounds=1, iterations=1)
    print()
    print(render_fig05(result))
    for workload in ("FB", "CMU"):
        values, probs = result.frequencies[workload]
        assert values[0] >= 1
        assert probs[-1] == 1.0
        # Skewed popularity: a heavy head exists.
        assert values[-1] > 8
