"""Fig 8: storage tier access distribution per bin."""

from repro.cluster.hardware import StorageTier
from repro.experiments.endtoend import render_fig08


def test_fig08_tier_access(benchmark, endtoend_fb, endtoend_cmu):
    def regenerate():
        return render_fig08(endtoend_fb), render_fig08(endtoend_cmu)

    fb_table, cmu_table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(fb_table)
    print()
    print(cmu_table)
    for result in (endtoend_fb, endtoend_cmu):
        # HDFS serves everything from HDD; XGB shifts reads to memory.
        hdfs = result.runs["HDFS"].metrics.tier_access_distribution()
        xgb = result.runs["XGB"].metrics.tier_access_distribution()
        for bin_name in ("B", "D"):
            assert hdfs[bin_name][StorageTier.HDD] == 1.0
            assert xgb[bin_name][StorageTier.MEMORY] > 0.3
