"""Simulation-engine throughput benchmark (BENCH_engine.json).

Measures the discrete-event core under load: wall-clock runtime and
events/second across cluster sizes and workload scales (job counts),
under both I/O pricing models, plus heap/solver internals (tombstone
compactions, flow recomputes, component sizes, vectorized solves).  The
headline gate is the fair-share re-pricing overhead at full FB scale:
``fairshare_over_snapshot`` must stay at or below the budget recorded in
the report (``FAIRSHARE_BUDGET``), plus the fast-engine verdicts: fast
and reference rows must agree on every simulated metric, and the
10x-scale speedup is recorded per I/O model.

Usage::

    python benchmarks/bench_engine.py [--out BENCH_engine.json]
    python benchmarks/bench_engine.py --smoke          # CI-sized subset
    python benchmarks/bench_engine.py --scales 1 10    # add a 10x FB run
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path

from repro.engine.runner import SystemConfig, WorkloadRunner
from repro.workload.profiles import PROFILES, scaled_profile
from repro.workload.synthesis import synthesize_trace

#: (cluster workers, workload scale, io models, engines) rows of the
#: full matrix.  The fast engine runs where its speedup claim is gated:
#: the full-scale row (equivalence) and the 10x row (throughput).
FULL_MATRIX = (
    {
        "workers": 11,
        "scale": 1.0,
        "io_models": ("snapshot", "fairshare"),
        "engines": ("reference", "fast"),
    },
    {"workers": 33, "scale": 1.0, "io_models": ("snapshot", "fairshare")},
    {"workers": 11, "scale": 3.0, "io_models": ("snapshot", "fairshare")},
    {
        "workers": 33,
        "scale": 10.0,
        "io_models": ("snapshot", "fairshare"),
        "engines": ("reference", "fast"),
    },
)
SMOKE_MATRIX = (
    {
        "workers": 11,
        "scale": 0.15,
        "io_models": ("snapshot", "fairshare"),
        "engines": ("reference", "fast"),
    },
    {
        "workers": 22,
        "scale": 0.3,
        "io_models": ("snapshot", "fairshare"),
        "engines": ("reference", "fast"),
    },
)


def bench_one(
    workload: str,
    scale: float,
    workers: int,
    io_model: str,
    seed: int,
    engine: str = "reference",
) -> dict:
    trace = synthesize_trace(
        scaled_profile(PROFILES[workload], scale), seed=seed
    )
    config = SystemConfig(
        label=f"{workload}x{scale:g}/w{workers}/{io_model}/{engine}",
        placement="octopus",
        downgrade="lru",
        upgrade="osa",
        workers=workers,
        io_model=io_model,
        seed=seed,
        engine_mode=engine,
    )
    runner = WorkloadRunner(trace, config)
    start = time.perf_counter()
    result = runner.run()
    runtime = time.perf_counter() - start
    sim = runner.sim
    row = {
        "workload": workload,
        "engine": engine,
        "scale": scale,
        "workers": workers,
        "io_model": io_model,
        "seed": seed,
        "runtime_seconds": round(runtime, 3),
        "events_processed": sim.events_processed,
        "events_per_second": round(sim.events_processed / runtime, 1),
        "events_cancelled": sim.events_cancelled,
        "heap_compactions": sim.heap_compactions,
        "max_heap_size": sim.max_heap_size,
        "live_pending_at_end": sim.pending,
        "ticks_skipped": (
            runner.manager.ticks_skipped if runner.manager is not None else 0
        ),
        # Simulated-result metrics: deterministic, compared exactly by
        # the CI regression gate.
        "jobs_finished": result.jobs_finished,
        "hit_ratio": round(result.metrics.hit_ratio(), 6),
        "byte_hit_ratio": round(result.metrics.byte_hit_ratio(), 6),
        "task_hours": round(result.metrics.total_task_seconds() / 3600.0, 4),
        "transfers_committed": result.transfers_committed,
    }
    io_stats = result.io_stats
    if io_model == "fairshare":
        row["flow_recomputes"] = io_stats["recomputes"]
        row["max_component"] = io_stats["max_component"]
        row["vector_solves"] = io_stats["vector_solves"]
        row["peak_concurrency"] = io_stats["peak_concurrency"]
    return row


def run_matrix(matrix, workload: str, seed: int, repeats: int) -> list:
    rows = []
    for spec in matrix:
        for engine in spec.get("engines", ("reference",)):
            for io_model in spec["io_models"]:
                best = None
                for _ in range(repeats):
                    row = bench_one(
                        workload,
                        spec["scale"],
                        spec["workers"],
                        io_model,
                        seed,
                        engine=engine,
                    )
                    if (
                        best is None
                        or row["runtime_seconds"] < best["runtime_seconds"]
                    ):
                        best = row
                rows.append(best)
                print(
                    f"  {best['workload']}x{best['scale']:g} "
                    f"w={best['workers']} {best['io_model']} "
                    f"[{best['engine']}]: {best['runtime_seconds']}s, "
                    f"{best['events_per_second']} ev/s"
                )
    return rows


#: Fair-share wall-clock budget relative to snapshot at full FB scale.
#: Originally 1.25x (PR 3, measured on the pre-fast-path engine at
#: 1.384s/1.662s).  The PR 6 hot-loop work sped snapshot up ~3x and
#: fairshare ~2.3x (the remaining fair-share cost is the max-min solver
#: itself, untouched by placement/heap optimizations), so the *ratio*
#: re-baselined upward even though both absolute runtimes dropped; the
#: budget is reset to 2.0x to keep a regression tripwire on the solver.
FAIRSHARE_BUDGET = 2.0


def headline_ratio(rows) -> dict:
    """Fair-share wall-clock over snapshot at the reference point.

    The ``FAIRSHARE_BUDGET`` verdict is defined at full FB scale (11
    workers, scale 1.0); smaller smoke runs still report the ratio, but
    fixed per-process overheads dominate there, so no verdict is
    attached.
    """
    candidates = [
        r for r in rows if r["workers"] == 11 and r["engine"] == "reference"
    ]
    if not candidates:
        return {}
    scales = {r["scale"] for r in candidates}
    # The budget is defined at the paper's full FB scale; fall back to
    # the largest scale present for reduced (smoke) matrices.
    reference_scale = 1.0 if 1.0 in scales else max(scales)
    by_model = {
        r["io_model"]: r for r in candidates if r["scale"] == reference_scale
    }
    if "snapshot" not in by_model or "fairshare" not in by_model:
        return {}
    ratio = (
        by_model["fairshare"]["runtime_seconds"]
        / by_model["snapshot"]["runtime_seconds"]
    )
    headline = {
        "scale": reference_scale,
        "snapshot_seconds": by_model["snapshot"]["runtime_seconds"],
        "fairshare_seconds": by_model["fairshare"]["runtime_seconds"],
        "fairshare_over_snapshot": round(ratio, 3),
    }
    if reference_scale >= 1.0:
        headline["budget"] = FAIRSHARE_BUDGET
        headline["within_budget"] = ratio <= FAIRSHARE_BUDGET
    return headline


#: Simulated metrics that must be byte-identical between the engines.
#: Queue-depth diagnostics (max_heap_size, heap_compactions) are
#: excluded: pump batching legitimately deepens the heap in fast mode.
EQUIVALENCE_KEYS = (
    "events_processed",
    "events_cancelled",
    "jobs_finished",
    "hit_ratio",
    "byte_hit_ratio",
    "task_hours",
    "transfers_committed",
    "flow_recomputes",
    "max_component",
    "peak_concurrency",
)


def fast_mode_summary(rows) -> dict:
    """Fast-engine verdicts: result equivalence and throughput speedup.

    For every (scale, workers, io_model) cell that ran under both
    engines, the simulated metrics must match exactly (the fast engine
    is an optimization, not an approximation); the speedup is the
    events/second ratio at the largest such scale.  The summary lands in
    the report, so the CI regression gate fails on any equivalence break
    (``fast_matches_reference`` is exact-compared like any other
    simulated metric).
    """
    by_cell: dict = {}
    for r in rows:
        by_cell.setdefault(
            (r["scale"], r["workers"], r["io_model"]), {}
        )[r["engine"]] = r
    paired = {
        cell: engines
        for cell, engines in by_cell.items()
        if "reference" in engines and "fast" in engines
    }
    if not paired:
        return {}
    mismatches = []
    for cell, engines in sorted(paired.items()):
        for key in EQUIVALENCE_KEYS:
            ref, fast = engines["reference"], engines["fast"]
            if key in ref and ref.get(key) != fast.get(key):
                mismatches.append(f"{cell}:{key}")
    top_scale = max(cell[0] for cell in paired)
    speedups = {}
    for cell, engines in sorted(paired.items()):
        if cell[0] != top_scale:
            continue
        ref_evps = engines["reference"]["events_per_second"]
        fast_evps = engines["fast"]["events_per_second"]
        speedups[cell[2]] = {
            "reference_events_per_second": ref_evps,
            "fast_events_per_second": fast_evps,
            "speedup": round(fast_evps / ref_evps, 2) if ref_evps else None,
        }
    return {
        "fast_matches_reference": not mismatches,
        "mismatched_metrics": mismatches,
        "speedup_scale": top_scale,
        "speedup": speedups,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
    )
    parser.add_argument("--workload", choices=sorted(PROFILES), default="FB")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="benchmark repetitions per cell (fastest wins)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized subset: small scales, no 10x run",
    )
    parser.add_argument(
        "--scales",
        nargs="+",
        type=float,
        default=None,
        help="override workload scales (11 workers each; replaces the matrix)",
    )
    args = parser.parse_args(argv)

    if args.scales is not None:
        matrix = tuple(
            {"workers": 11, "scale": s, "io_models": ("snapshot", "fairshare")}
            for s in args.scales
        )
    else:
        matrix = SMOKE_MATRIX if args.smoke else FULL_MATRIX
    print(f"engine benchmark: {args.workload}, seed {args.seed}")
    rows = run_matrix(matrix, args.workload, args.seed, args.repeats)
    report = {
        "benchmark": "engine",
        "workload": args.workload,
        "seed": args.seed,
        "python": platform.python_version(),
        "headline": headline_ratio(rows),
        "fast_mode": fast_mode_summary(rows),
        "runs": rows,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["headline"], indent=2))
    print(json.dumps(report["fast_mode"], indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
