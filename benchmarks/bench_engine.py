"""Simulation-engine throughput benchmark (BENCH_engine.json).

Measures the discrete-event core under load: wall-clock runtime and
events/second across cluster sizes and workload scales (job counts),
under both I/O pricing models, plus heap/solver internals (tombstone
compactions, flow recomputes, component sizes, vectorized solves).  The
headline gate is the fair-share re-pricing overhead at full FB scale:
``fairshare_over_snapshot`` must stay at or below the budget recorded in
the report (``FAIRSHARE_BUDGET``), plus the fast-engine verdicts: fast
and reference rows must agree on every simulated metric, and the
10x-scale speedup is recorded per I/O model.

Every row is one :mod:`repro.sweep` cell executed by the shared sweep
worker, so ``--jobs N`` runs each repeat-pass of the matrix across
worker processes (simulated metrics are bit-identical to serial; the
wall-clock fields are per-cell and stay comparable because each cell
still runs on one core).  Rows also carry ``rss_mb`` — the worker
process RSS right after the run — informationally.

Usage::

    python benchmarks/bench_engine.py [--out BENCH_engine.json]
    python benchmarks/bench_engine.py --smoke          # CI-sized subset
    python benchmarks/bench_engine.py --scales 1 10    # add a 10x FB run
    python benchmarks/bench_engine.py --jobs 4         # parallel cells
"""

from __future__ import annotations

import argparse
import json
import platform
import tempfile
from pathlib import Path

from repro.sweep import SweepStore, make_cell, run_cell, run_cells
from repro.workload.profiles import PROFILES

#: (cluster workers, workload scale, io models, engines) rows of the
#: full matrix.  The fast engine runs where its speedup claim is gated:
#: the full-scale row (equivalence) and the 10x row (throughput).
FULL_MATRIX = (
    {
        "workers": 11,
        "scale": 1.0,
        "io_models": ("snapshot", "fairshare"),
        "engines": ("reference", "fast"),
    },
    {"workers": 33, "scale": 1.0, "io_models": ("snapshot", "fairshare")},
    {"workers": 11, "scale": 3.0, "io_models": ("snapshot", "fairshare")},
    {
        "workers": 33,
        "scale": 10.0,
        "io_models": ("snapshot", "fairshare"),
        "engines": ("reference", "fast"),
    },
)
SMOKE_MATRIX = (
    {
        "workers": 11,
        "scale": 0.15,
        "io_models": ("snapshot", "fairshare"),
        "engines": ("reference", "fast"),
    },
    {
        "workers": 22,
        "scale": 0.3,
        "io_models": ("snapshot", "fairshare"),
        "engines": ("reference", "fast"),
    },
)


#: The established row schema of this report (projection of the sweep
#: worker's superset row; the committed baselines are keyed to it).
#: ``rss_mb`` rides along informationally; the fairshare solver
#: counters are appended when present.
ROW_KEYS = (
    "workload",
    "engine",
    "scale",
    "workers",
    "io_model",
    "seed",
    "runtime_seconds",
    "events_processed",
    "events_per_second",
    "events_cancelled",
    "heap_compactions",
    "max_heap_size",
    "live_pending_at_end",
    "ticks_skipped",
    "jobs_finished",
    "hit_ratio",
    "byte_hit_ratio",
    "task_hours",
    "transfers_committed",
    "rss_mb",
)
FAIRSHARE_KEYS = (
    "flow_recomputes",
    "max_component",
    "vector_solves",
    "peak_concurrency",
)


def engine_cell(
    workload: str,
    scale: float,
    workers: int,
    io_model: str,
    seed: int,
    engine: str = "reference",
):
    """The sweep cell reproducing one row of this benchmark's matrix."""
    return make_cell(
        kind="profile",
        workload=workload,
        scale=scale,
        seed=seed,
        system_seed=seed,
        downgrade="lru",
        upgrade="osa",
        workers=workers,
        io_model=io_model,
        engine=engine,
    )


def project_row(worker_row: dict) -> dict:
    """Select this report's established fields from the superset row."""
    row = {key: worker_row[key] for key in ROW_KEYS}
    for key in FAIRSHARE_KEYS:
        if key in worker_row:
            row[key] = worker_row[key]
    return row


def matrix_cells(matrix, workload: str, seed: int) -> list:
    """Expand the benchmark matrix into its sweep cells, in row order."""
    return [
        engine_cell(
            workload, spec["scale"], spec["workers"], io_model, seed, engine
        )
        for spec in matrix
        for engine in spec.get("engines", ("reference",))
        for io_model in spec["io_models"]
    ]


def run_matrix(matrix, workload: str, seed: int, repeats: int, jobs: int = 1):
    """Run every cell ``repeats`` times (fastest wall wins per cell).

    With ``jobs > 1`` each repeat-pass fans across worker processes;
    simulated metrics are identical pass to pass (and to serial), so
    best-of-N only selects among wall-clock measurements.
    """
    cells = matrix_cells(matrix, workload, seed)
    best = [None] * len(cells)
    for _ in range(repeats):
        if jobs == 1:
            pass_rows = [project_row(run_cell(cell.config)) for cell in cells]
        else:
            with tempfile.TemporaryDirectory(prefix="bench-engine-") as tmp:
                payloads = run_cells(
                    cells, SweepStore(tmp, "bench"), jobs=jobs, retries=1
                )
            bad = [p for p in payloads if p["status"] != "ok"]
            if bad:
                raise SystemExit(
                    f"{len(bad)} cell(s) failed: "
                    + "; ".join(f"{p['cell_id']}: {p['error']}" for p in bad)
                )
            pass_rows = [project_row(p["row"]) for p in payloads]
        for i, row in enumerate(pass_rows):
            if best[i] is None or row["runtime_seconds"] < best[i]["runtime_seconds"]:
                best[i] = row
    for row in best:
        print(
            f"  {row['workload']}x{row['scale']:g} "
            f"w={row['workers']} {row['io_model']} "
            f"[{row['engine']}]: {row['runtime_seconds']}s, "
            f"{row['events_per_second']} ev/s"
        )
    return best


#: Fair-share wall-clock budget relative to snapshot at full FB scale.
#: Originally 1.25x (PR 3, measured on the pre-fast-path engine at
#: 1.384s/1.662s).  The PR 6 hot-loop work sped snapshot up ~3x and
#: fairshare ~2.3x (the remaining fair-share cost is the max-min solver
#: itself, untouched by placement/heap optimizations), so the *ratio*
#: re-baselined upward even though both absolute runtimes dropped; the
#: budget is reset to 2.0x to keep a regression tripwire on the solver.
FAIRSHARE_BUDGET = 2.0


def headline_ratio(rows) -> dict:
    """Fair-share wall-clock over snapshot at the reference point.

    The ``FAIRSHARE_BUDGET`` verdict is defined at full FB scale (11
    workers, scale 1.0); smaller smoke runs still report the ratio, but
    fixed per-process overheads dominate there, so no verdict is
    attached.
    """
    candidates = [
        r for r in rows if r["workers"] == 11 and r["engine"] == "reference"
    ]
    if not candidates:
        return {}
    scales = {r["scale"] for r in candidates}
    # The budget is defined at the paper's full FB scale; fall back to
    # the largest scale present for reduced (smoke) matrices.
    reference_scale = 1.0 if 1.0 in scales else max(scales)
    by_model = {
        r["io_model"]: r for r in candidates if r["scale"] == reference_scale
    }
    if "snapshot" not in by_model or "fairshare" not in by_model:
        return {}
    ratio = (
        by_model["fairshare"]["runtime_seconds"]
        / by_model["snapshot"]["runtime_seconds"]
    )
    headline = {
        "scale": reference_scale,
        "snapshot_seconds": by_model["snapshot"]["runtime_seconds"],
        "fairshare_seconds": by_model["fairshare"]["runtime_seconds"],
        "fairshare_over_snapshot": round(ratio, 3),
    }
    if reference_scale >= 1.0:
        headline["budget"] = FAIRSHARE_BUDGET
        headline["within_budget"] = ratio <= FAIRSHARE_BUDGET
    return headline


#: Simulated metrics that must be byte-identical between the engines.
#: Queue-depth diagnostics (max_heap_size, heap_compactions) are
#: excluded: pump batching legitimately deepens the heap in fast mode.
EQUIVALENCE_KEYS = (
    "events_processed",
    "events_cancelled",
    "jobs_finished",
    "hit_ratio",
    "byte_hit_ratio",
    "task_hours",
    "transfers_committed",
    "flow_recomputes",
    "max_component",
    "peak_concurrency",
)


def fast_mode_summary(rows) -> dict:
    """Fast-engine verdicts: result equivalence and throughput speedup.

    For every (scale, workers, io_model) cell that ran under both
    engines, the simulated metrics must match exactly (the fast engine
    is an optimization, not an approximation); the speedup is the
    events/second ratio at the largest such scale.  The summary lands in
    the report, so the CI regression gate fails on any equivalence break
    (``fast_matches_reference`` is exact-compared like any other
    simulated metric).
    """
    by_cell: dict = {}
    for r in rows:
        by_cell.setdefault(
            (r["scale"], r["workers"], r["io_model"]), {}
        )[r["engine"]] = r
    paired = {
        cell: engines
        for cell, engines in by_cell.items()
        if "reference" in engines and "fast" in engines
    }
    if not paired:
        return {}
    mismatches = []
    for cell, engines in sorted(paired.items()):
        for key in EQUIVALENCE_KEYS:
            ref, fast = engines["reference"], engines["fast"]
            if key in ref and ref.get(key) != fast.get(key):
                mismatches.append(f"{cell}:{key}")
    top_scale = max(cell[0] for cell in paired)
    speedups = {}
    for cell, engines in sorted(paired.items()):
        if cell[0] != top_scale:
            continue
        ref_evps = engines["reference"]["events_per_second"]
        fast_evps = engines["fast"]["events_per_second"]
        speedups[cell[2]] = {
            "reference_events_per_second": ref_evps,
            "fast_events_per_second": fast_evps,
            "speedup": round(fast_evps / ref_evps, 2) if ref_evps else None,
        }
    return {
        "fast_matches_reference": not mismatches,
        "mismatched_metrics": mismatches,
        "speedup_scale": top_scale,
        "speedup": speedups,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--out",
        default=str(Path(__file__).resolve().parent.parent / "BENCH_engine.json"),
    )
    parser.add_argument("--workload", choices=sorted(PROFILES), default="FB")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument(
        "--repeats",
        type=int,
        default=2,
        help="benchmark repetitions per cell (fastest wins)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="CI-sized subset: small scales, no 10x run",
    )
    parser.add_argument(
        "--scales",
        nargs="+",
        type=float,
        default=None,
        help="override workload scales (11 workers each; replaces the matrix)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes per repeat-pass (default 1 = in-process serial)",
    )
    args = parser.parse_args(argv)

    if args.scales is not None:
        matrix = tuple(
            {"workers": 11, "scale": s, "io_models": ("snapshot", "fairshare")}
            for s in args.scales
        )
    else:
        matrix = SMOKE_MATRIX if args.smoke else FULL_MATRIX
    print(f"engine benchmark: {args.workload}, seed {args.seed}")
    rows = run_matrix(
        matrix, args.workload, args.seed, args.repeats, jobs=args.jobs
    )
    report = {
        "benchmark": "engine",
        "workload": args.workload,
        "seed": args.seed,
        "python": platform.python_version(),
        "headline": headline_ratio(rows),
        "fast_mode": fast_mode_summary(rows),
        "runs": rows,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(json.dumps(report["headline"], indent=2))
    print(json.dumps(report["fast_mode"], indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
