"""Fig 14: ROC curves / AUC for the XGB models on FB and CMU."""

from repro.experiments.model_eval import render_fig14, run_fig14


def test_fig14_roc(benchmark):
    result = benchmark.pedantic(run_fig14, rounds=1, iterations=1)
    print()
    print(render_fig14(result))
    for model in result.models:
        # The paper reports AUC > 0.97 on its production traces; the
        # synthetic workloads carry more label noise, so we assert the
        # qualitative claim: strongly better than chance, high accuracy.
        assert model.auc > 0.78, f"{model.label}: AUC {model.auc:.3f}"
        assert model.accuracy > 0.70, f"{model.label}: acc {model.accuracy:.3f}"
        # ROC curves are proper: start at (0,0), end at (1,1).
        assert model.fpr[0] == 0.0 and model.tpr[0] == 0.0
        assert abs(model.fpr[-1] - 1.0) < 1e-9
