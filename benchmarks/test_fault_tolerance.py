"""Fault-tolerance ablation: worker outages under managed tiering.

Not a paper figure — the paper claims replication-based fault tolerance
as a design objective (Secs 3, 5.3); this bench verifies the claim holds
while the tiering policies are actively moving replicas around.
"""

from repro.experiments.common import ExperimentScale
from repro.experiments.fault_tolerance import (
    render_fault_tolerance,
    run_fault_tolerance,
)

#: Outage runs triple the experiment count; half scale keeps the wall
#: clock in line with the other benches without changing the story.
SCALE = ExperimentScale(workload_scale=0.5)


def test_fault_tolerance(benchmark):
    result = benchmark.pedantic(
        lambda: run_fault_tolerance("FB", SCALE), rounds=1, iterations=1
    )
    print()
    print(render_fault_tolerance(result))
    baseline = result.runs["no failures"]
    worst = result.runs["3 outages"]
    # Failures really happened and really destroyed replicas.
    assert worst.failures == 3 and worst.replicas_lost > 0
    # The monitor repaired the damage: nothing left under-replicated.
    assert worst.replicas_repaired > 0
    assert worst.under_replicated_at_end == 0
    # With replication 3 and single-node outages, no block lost all
    # replicas.
    assert worst.blocks_lost == 0
    # The workload survived: every job that finished without faults also
    # finished with them.
    assert worst.run.jobs_finished == baseline.run.jobs_finished
    # Slowdown is bounded: task time within 25% of the fault-free run.
    assert (
        worst.run.metrics.total_task_seconds()
        < 1.25 * baseline.run.metrics.total_task_seconds()
    )
