"""Fig 16: incremental vs hourly-retrain vs one-shot learning."""

import numpy as np

from repro.experiments.learning_modes import render_fig16, run_fig16


def _late_mean(series):
    tail = [v for v in series[3:] if not np.isnan(v)]
    return float(np.mean(tail)) if tail else float("nan")


def test_fig16_incremental(benchmark):
    result = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    print()
    print(render_fig16(result))
    for kind in ("downgrade", "upgrade"):
        incremental = _late_mean(result.accuracy[("incremental", kind)])
        oneshot = _late_mean(result.accuracy[("oneshot", kind)])
        retrain = _late_mean(result.accuracy[("retrain", kind)])
        # The paper's ordering in the later hours: the one-shot learner
        # decays as the workload drifts; incremental stays on top.
        assert incremental > oneshot, (kind, incremental, oneshot)
        assert incremental >= retrain - 8.0, (kind, incremental, retrain)
