"""Shared fixtures for the benchmark harness.

Several figures are different views of the same experimental run (e.g.
Figs 6-9 all come from the Sec 7.2 end-to-end comparison).  Those runs
are executed once per session and cached here; each figure's benchmark
then regenerates its own table from the shared result.  The cost of the
underlying experiment is printed when it is first computed.
"""

import time

import pytest

from repro.experiments.common import FULL_SCALE
from repro.experiments.downgrade_only import run_downgrade_only
from repro.experiments.endtoend import run_endtoend
from repro.experiments.upgrade_only import run_upgrade_only

_CACHE = {}


def _cached(key, factory):
    if key not in _CACHE:
        start = time.perf_counter()
        _CACHE[key] = factory()
        elapsed = time.perf_counter() - start
        print(f"\n[shared experiment {key!r} computed in {elapsed:.1f}s]")
    return _CACHE[key]


@pytest.fixture(scope="session")
def endtoend_fb():
    return _cached("endtoend-FB", lambda: run_endtoend("FB", FULL_SCALE))


@pytest.fixture(scope="session")
def endtoend_cmu():
    return _cached("endtoend-CMU", lambda: run_endtoend("CMU", FULL_SCALE))


@pytest.fixture(scope="session")
def downgrade_fb():
    return _cached("downgrade-FB", lambda: run_downgrade_only("FB", FULL_SCALE))


@pytest.fixture(scope="session")
def upgrade_fb():
    return _cached("upgrade-FB", lambda: run_upgrade_only("FB", FULL_SCALE))
