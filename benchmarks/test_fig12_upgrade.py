"""Fig 12: completion-time reduction for upgrade policies in isolation."""

from repro.experiments.upgrade_only import render_fig12
from repro.workload.bins import BIN_NAMES


def test_fig12_upgrade(benchmark, upgrade_fb):
    table = benchmark.pedantic(
        lambda: render_fig12(upgrade_fb), rounds=1, iterations=1
    )
    print()
    print(table)
    reductions = upgrade_fb.completion_reduction
    mean = {
        label: sum(v[b] for b in BIN_NAMES) / len(BIN_NAMES)
        for label, v in reductions.items()
    }
    # Gains are modest in isolation (paper: under ~9%) and OSA-style
    # upgrading helps at least somewhat.
    assert mean["OSA"] > 0
    for label, value in mean.items():
        assert value < 25.0, f"{label} gains implausibly large: {value}"
