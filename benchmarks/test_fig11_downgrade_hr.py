"""Fig 11: HR and BHR for the downgrade policies (FB, memory accesses)."""

from repro.experiments.downgrade_only import render_fig11


def test_fig11_downgrade_hr(benchmark, downgrade_fb):
    table = benchmark.pedantic(
        lambda: render_fig11(downgrade_fb), rounds=1, iterations=1
    )
    print()
    print(table)
    runs = downgrade_fb.runs
    policies = [label for label in runs if label not in ("HDFS", "OctopusFS")]
    # XGB achieves the highest byte hit ratio (paper: 98% vs ~69-85%).
    best = max(policies, key=lambda p: runs[p].metrics.byte_hit_ratio())
    assert best == "XGB", best
    # All managed policies beat the static OctopusFS placement on BHR.
    static_bhr = runs["OctopusFS"].metrics.byte_hit_ratio()
    for policy in policies:
        assert runs[policy].metrics.byte_hit_ratio() >= static_bhr - 0.10, policy
