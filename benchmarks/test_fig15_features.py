"""Fig 15: feature ablations on the FB downgrade model."""

from repro.experiments.model_eval import render_fig15, run_fig15


def test_fig15_features(benchmark):
    result = benchmark.pedantic(run_fig15, rounds=1, iterations=1)
    print()
    print(render_fig15(result))
    by_label = {m.label: m for m in result.models}
    default = by_label["With 12 Accesses (Def)"]
    # File size is an individually important predictor: dropping it
    # hurts (paper Sec 7.6).
    assert by_label["W/out Filesize"].auc <= default.auc + 0.01
    # Extending history from 12 to 18 accesses has marginal impact.
    assert abs(by_label["With 18 Accesses"].auc - default.auc) < 0.05
    # 6 accesses still give a usable model.
    assert by_label["With 6 Accesses"].auc > 0.75
