"""Fig 9: HR and BHR based on memory accesses and memory locations.

The access-based ratios run through the tier-unaware scheduler, whose
arbitrary task placement adds sampling noise on top of the policies'
decisions; the location-based ratios measure the policies directly.
The assertions therefore pin the paper's ordering on the location-based
metric and allow a noise margin on the access-based one.
"""

from repro.experiments.endtoend import render_fig09


def test_fig09_hit_ratios(benchmark, endtoend_fb):
    table = benchmark.pedantic(
        lambda: render_fig09(endtoend_fb), rounds=1, iterations=1
    )
    print()
    print(table)
    metrics = {label: run.metrics for label, run in endtoend_fb.runs.items()}
    # OctopusFS static placement: well below the managed systems (the
    # paper reports <50% HR for it).
    assert metrics["OctopusFS"].hit_ratio() < 0.65
    policies = ("LRU-OSA", "LRFU", "EXD", "XGB")
    # XGB keeps the most relevant bytes resident: highest location BHR.
    best_loc = max(policies, key=lambda p: metrics[p].location_byte_hit_ratio())
    assert best_loc == "XGB", best_loc
    # On the noisy access-based BHR it stays within a whisker of the top.
    best_acc = max(metrics[p].byte_hit_ratio() for p in policies)
    assert metrics["XGB"].byte_hit_ratio() >= best_acc - 0.02
    # The paper's headline gap: location-based ratios exceed access-based
    # ones because stock schedulers ignore tiers (Sec 7.2).
    for policy in policies:
        assert (
            metrics[policy].location_hit_ratio()
            > metrics[policy].hit_ratio() + 0.05
        ), policy
