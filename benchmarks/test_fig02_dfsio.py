"""Fig 2: DFSIO throughput for HDFS / HDFS+Cache / OctopusFS / Octopus++."""

from repro.experiments.fig02_dfsio import render_fig02, run_fig02


def test_fig02_dfsio(benchmark):
    result = benchmark.pedantic(run_fig02, rounds=1, iterations=1)
    print()
    print(render_fig02(result))
    # Shape checks mirroring the paper's Sec 3.1 narrative.
    octo_read = result.read_curves["OctopusFS"]
    hdfs_read = result.read_curves["Original HDFS"]
    assert octo_read[0][1] > 1.5 * hdfs_read[0][1], (
        "tiered reads should beat all-HDD reads while memory lasts"
    )
    cache_read = result.read_curves["HDFS with Cache"]
    assert cache_read[0][1] > hdfs_read[0][1]
    # After memory exhaustion the cache stops helping (curve converges).
    assert cache_read[-1][1] < cache_read[0][1]
