"""Service mode: a long-lived multi-tenant tiering daemon.

The paper's tiering manager runs *inside* a live cluster — a resident
service observing file accesses from many applications at once and
moving replicas between tiers as the mix shifts.  This package turns
the single-shot replay engine into exactly that shape:

* :class:`~repro.service.server.TieringService` (``repro serve``) — the
  daemon: a data plane accepting many concurrent tenant streams over
  the JSONL wire protocol (``docs/stream-protocol.md``), plus a stdlib
  HTTP/JSON control plane (``/healthz``, ``/metrics``, ``/tenants``).
* :class:`~repro.service.engine.ServiceEngine` — one shared simulated
  cluster (a :class:`~repro.engine.runner.WorkloadRunner`) fed by the
  merged stream, reporting metrics mid-flight through
  :meth:`~repro.engine.runner.WorkloadRunner.snapshot`.
* :class:`~repro.service.mux.TenantMux` — the live-admission merge: the
  online counterpart of
  :func:`~repro.workload.streams.merge_timed_sources`, admitting
  tenants while the simulation runs and preserving its ordering
  invariants.
* :class:`~repro.service.tenants.TenantRegistry` — per-tenant identity,
  lifecycle state, and isolated :class:`~repro.engine.metrics.MetricsCollector`
  projections of the shared run.

Everything here is additive: the offline paths (``repro simulate``,
``repro live``, ``repro scenario run``) never construct these classes
and stay bit-identical.  Operator documentation lives in
``docs/service.md``.
"""

from repro.service.engine import ServiceEngine, json_safe, result_to_dict
from repro.service.mux import ServiceClosed, TenantMux
from repro.service.server import TieringService
from repro.service.tenants import Tenant, TenantRegistry, tenant_collector_for_job

__all__ = [
    "ServiceEngine",
    "ServiceClosed",
    "Tenant",
    "TenantMux",
    "TenantRegistry",
    "TieringService",
    "json_safe",
    "result_to_dict",
    "tenant_collector_for_job",
]
