"""The daemon itself: data plane + control plane + signal-driven drain.

:class:`TieringService` is what ``repro serve`` runs: it binds two
ports —

* the **data plane** (``--port``): a TCP listener where each accepted
  connection becomes one tenant session speaking the JSONL stream
  protocol (the many-session generalization of the ``listen://`` live
  source), and
* the **control plane** (``--control-port``): the HTTP/JSON surface in
  :mod:`repro.service.control` —

and runs the shared cluster on the
:class:`~repro.service.engine.ServiceEngine`'s engine thread.  Both
ports accept ``0`` (bind an ephemeral port and report it), which is how
tests and the CI smoke job avoid port collisions.

Graceful shutdown (``SIGTERM``, ``SIGINT``, or ``POST /shutdown``)
drains rather than drops: admissions close, open sessions get a grace
period to finish, stragglers are force-closed, and the engine completes
its normal end-of-run drain — in-flight jobs and transfers finish and
the final :class:`~repro.engine.runner.RunResult` is published.
"""

from __future__ import annotations

import signal
import socket as socket_module
import threading
from typing import Optional, Set

from repro.engine.runner import RunResult, SystemConfig
from repro.service.control import ControlPlane
from repro.service.engine import ServiceEngine
from repro.workload.live import DEFAULT_REORDER_DEPTH


class TieringService:
    """A long-lived multi-tenant tiering daemon over one shared cluster."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        control_port: int = 0,
        pace: Optional[float] = None,
        reorder_depth: int = DEFAULT_REORDER_DEPTH,
        late: str = "clamp",
        drain_grace: float = 30.0,
        drain_limit: float = 4 * 3600.0,
        results_log: Optional[str] = None,
    ) -> None:
        self.host = host
        #: Replay pacing applied to every admitted tenant (simulated
        #: seconds per wall second; None = as fast as streams deliver).
        self.pace = pace
        self.reorder_depth = reorder_depth
        self.late = late
        self.drain_grace = drain_grace
        self.engine = ServiceEngine(
            config, drain_limit=drain_limit, results_log=results_log
        )
        self._listener = socket_module.create_server(
            (host, port), family=socket_module.AF_INET, backlog=16
        )
        self._control = ControlPlane(self, host, control_port)
        self._accept_thread: Optional[threading.Thread] = None
        self._conns: Set[socket_module.socket] = set()
        self._conns_lock = threading.Lock()
        self._draining = False
        self._stopped = threading.Event()

    # -- addresses -----------------------------------------------------------
    @property
    def data_port(self) -> int:
        """The bound data-plane port (resolved when 0 was requested)."""
        return self._listener.getsockname()[1]

    @property
    def control_port(self) -> int:
        """The bound control-plane port."""
        return self._control.address[1]

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        """Start the engine thread, data-plane accept loop, and control
        plane; returns once all three are live."""
        self.engine.start()
        self._control.start()
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True
        )
        self._accept_thread.start()

    def _accept_loop(self) -> None:
        while True:
            try:
                conn, addr = self._listener.accept()
            except OSError:
                return  # listener closed: drain/stop
            peer = f"{addr[0]}:{addr[1]}"
            with self._conns_lock:
                self._conns.add(conn)
            self.engine.attach_socket(
                conn,
                peer,
                reorder_depth=self.reorder_depth,
                late=self.late,
                pace=self.pace,
            )

    def begin_drain(
        self, grace: Optional[float] = None, mode: str = "drain"
    ) -> None:
        """Stop accepting work and drain (idempotent, returns at once).

        ``mode="drain"`` gives open sessions ``grace`` wall seconds
        (default: the service's ``drain_grace``) to finish before their
        transports are force-closed; ``mode="now"`` skips the grace.
        The engine thread then completes its end-of-run drain and
        publishes the final result (:meth:`wait`).
        """
        self._draining = True
        try:
            self._listener.close()
        except OSError:
            pass
        effective = 0.0 if mode == "now" else (
            grace if grace is not None else self.drain_grace
        )
        self.engine.begin_drain(grace=effective)

    def wait(self, timeout: Optional[float] = None) -> Optional[RunResult]:
        """Block until the engine finishes; the final run result."""
        return self.engine.join(timeout)

    def stop(self, grace: Optional[float] = None) -> Optional[RunResult]:
        """Full shutdown: drain, wait for the engine, close everything."""
        self.begin_drain(grace=grace, mode="drain" if grace else "now")
        result = self.wait()
        with self._conns_lock:
            conns, self._conns = set(self._conns), set()
        for conn in conns:
            try:
                conn.close()
            except OSError:
                pass
        if not self._stopped.is_set():
            self._control.stop()
            self._stopped.set()
        return result

    def install_signal_handlers(self) -> None:
        """Route SIGTERM/SIGINT to a graceful drain (main thread only)."""

        def handler(signum, frame) -> None:
            self.begin_drain(mode="drain")

        signal.signal(signal.SIGTERM, handler)
        signal.signal(signal.SIGINT, handler)
