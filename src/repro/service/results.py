"""Durable tenant-results log for the long-lived daemon.

``repro serve --results-log PATH`` appends one JSON line per *done*
tenant (finished, failed, or force-closed), so a restarted daemon can
still report the tenants served by earlier incarnations: the control
plane's ``GET /tenants`` includes the loaded history under ``"past"``.

The format is append-only JSONL — one self-contained record per line,
written with :func:`repro.obs.export.trace_line` (sorted keys, compact
separators) and flushed immediately, so a crash mid-run loses at most
the line being written and the file is safe to tail.  Records carry the
wall-clock completion time, the tenant's control-plane projection, and
its per-tenant metrics.

Each tenant is logged twice on a clean run: once when its *stream* ends
(crash-durable, but the shared engine may still be replaying buffered
events, so metrics can be partial) and once more at engine shutdown
with ``"final": true`` and complete metrics.  :meth:`ResultsLog.load`
collapses the pair — keyed by tenant id plus admission wall time, so
records from different daemon incarnations never merge — keeping the
final record when both survived.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Any, Dict, List

from repro.obs.export import trace_line
from repro.service.tenants import Tenant


class ResultsLog:
    """Append-only JSONL log of completed-tenant records."""

    def __init__(self, path: str) -> None:
        self.path = path
        self._lock = threading.Lock()

    def load(self) -> List[Dict[str, Any]]:
        """One record per tenant from prior (and current) daemon runs.

        Stream-end and final records for the same admission collapse to
        the later one.  Tolerant of a missing file (first run) and of a
        trailing truncated line (crash mid-append): both simply shorten
        the list.
        """
        import json

        if not os.path.exists(self.path):
            return []
        records: Dict[Any, Dict[str, Any]] = {}
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                tenant = record.get("tenant") or {}
                key = (tenant.get("id"), record.get("admitted"))
                records[key] = record
        return list(records.values())

    def append(self, record: Dict[str, Any]) -> None:
        """Append one record and flush it to disk."""
        with self._lock:
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(trace_line(record) + "\n")
                handle.flush()

    def record_tenant(self, tenant: Tenant, final: bool = False) -> Dict[str, Any]:
        """Append the done-tenant record for ``tenant`` and return it.

        ``final=True`` marks the engine-shutdown pass, whose metrics are
        complete (every buffered event has been replayed by then).
        """
        collector = tenant.collector
        record = {
            "wall": time.time(),
            "admitted": tenant.admitted_wall,
            "final": final,
            "tenant": tenant.as_dict(),
            "metrics": {
                "hit_ratio": collector.hit_ratio(),
                "byte_hit_ratio": collector.byte_hit_ratio(),
                "task_seconds": collector.total_task_seconds(),
                "bytes_read": collector.bytes_read,
                "bytes_written": collector.bytes_written,
            },
        }
        self.append(record)
        return record
