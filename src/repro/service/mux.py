"""The live-admission merge: many tenant streams, one shared cluster.

:class:`TenantMux` is the online counterpart of
:func:`~repro.workload.streams.merge_timed_sources`.  The offline merge
admits each source at a fixed start time known up front and eagerly
pulls one event per admitted source to seed its heap — which would
block a live service the moment a connected producer pauses between
events.  The mux keeps the same two invariants —

* events are emitted in non-decreasing :func:`~repro.workload.jobs.event_sort_key`
  order (arrival breaks ties, so the merge is deterministic for any
  fixed interleaving), and
* each tenant's events are shifted by its admission offset: a tenant's
  ``t=0`` is the shared cluster's simulation time at admission —

but feeds from per-session buffers filled by producer threads, so a
source that has nothing to say never holds a lock over the merge
*unless correctness requires it*: the merge only emits an event once no
open session with an empty buffer could still deliver an earlier one
(each session's bound is its admission offset plus the newest timestamp
it has delivered).  The flip side is the classic deterministic-merge
price: a connected tenant that goes quiet *without closing* holds the
merged clock at its bound until it sends or disconnects.  Pacing
(``--pace``) keeps producers flowing; drain force-closes stragglers.

The mux exposes a ``live_stats`` attribute, so the runner treats it
exactly like a :class:`~repro.workload.live.LiveStream`: pump batching
stays disabled (``next()`` blocks on tenant arrival) and transport
counters appear in :class:`~repro.engine.runner.RunResult`.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import replace
from typing import Callable, Deque, Iterator, List, Optional

from repro.workload.jobs import StreamEvent, TraceJob, event_sort_key, event_time
from repro.workload.live import LiveStats
from repro.workload.streams import WorkloadStream
from repro.service.tenants import SERVICE_TENANT_ATTR, Tenant

#: Per-session buffer high-water mark: a producer running this many
#: events ahead of the merge blocks in :meth:`TenantMux.feed` until the
#: consumer catches up (back-pressure, not data loss).
DEFAULT_BUFFER_LIMIT = 8192

_DONE = object()


class ServiceClosed(RuntimeError):
    """Raised when attaching a tenant after admissions closed (drain)."""


class _Session:
    """Mux-side state for one attached tenant (internal)."""

    __slots__ = ("tenant", "buffer", "open", "frontier", "seq", "closer")

    def __init__(
        self, tenant: Tenant, seq: int, closer: Optional[Callable[[], None]]
    ) -> None:
        self.tenant = tenant
        self.buffer: Deque[StreamEvent] = deque()
        self.open = True
        #: Newest tenant-relative timestamp delivered so far: future
        #: events are >= this (per-tenant streams are ordered), so
        #: ``offset + frontier`` bounds what this session can still emit.
        self.frontier = 0.0
        self.seq = seq
        self.closer = closer


class TenantMux(WorkloadStream):
    """A :class:`~repro.workload.streams.WorkloadStream` merging tenant
    sessions admitted while the simulation runs."""

    def __init__(
        self,
        registry=None,
        clock: Optional[Callable[[], float]] = None,
        buffer_limit: int = DEFAULT_BUFFER_LIMIT,
    ) -> None:
        self.name = "service"
        #: Open-ended: the submission window closes when the last
        #: session drains after admissions close (the runner rewrites
        #: the duration to that time; see RunResult.duration).
        self.duration = float("inf")
        #: Optional callback fired (outside the lock) with each tenant
        #: that reaches a terminal state — finished, failed, or closed.
        #: The service engine wires the results log here.
        self.on_tenant_done: Optional[Callable[[Tenant], None]] = None
        self.registry = registry
        #: Shared-cluster clock (wired to ``sim.now`` by the engine);
        #: read at admission to fix each tenant's offset.
        self.clock = clock
        self.buffer_limit = int(buffer_limit)
        #: Transport counters in the LiveStream shape, so the runner's
        #: live-path handling (no pump batching, stats in RunResult)
        #: applies unchanged.
        self.live_stats = LiveStats()
        self._cond = threading.Condition()
        self._sessions: List[_Session] = []
        self._seq = 0
        self._admissions_closed = False
        self._consumed = False

    # -- producer side -------------------------------------------------------
    def attach(
        self, tenant: Tenant, closer: Optional[Callable[[], None]] = None
    ) -> _Session:
        """Admit ``tenant``: fix its offset at the current cluster time
        and return the session its feeder thread writes into.

        ``closer`` (optional) force-closes the tenant's transport; drain
        calls it for sessions that outlive the grace period.  Raises
        :class:`ServiceClosed` once admissions are closed.
        """
        with self._cond:
            if self._admissions_closed:
                raise ServiceClosed("service is draining; no new tenants")
            offset = float(self.clock()) if self.clock is not None else 0.0
            session = _Session(tenant, self._seq, closer)
            self._seq += 1
            tenant.offset = offset
            tenant.state = "streaming"
            self._sessions.append(session)
            self._cond.notify_all()
            return session

    def feed(self, session: _Session, event: StreamEvent) -> bool:
        """Deliver one tenant-relative event into ``session``'s buffer.

        Blocks when the buffer is at its high-water mark (back-pressure
        on the producer thread).  Returns False — dropping the event —
        when the session was closed under the producer (drain).
        """
        with self._cond:
            while session.open and len(session.buffer) >= self.buffer_limit:
                self._cond.wait()
            if not session.open:
                self.live_stats.events_dropped += 1
                return False
            session.buffer.append(event)
            t = event_time(event)
            if t > session.frontier:
                session.frontier = t
            self.live_stats.events_received += 1
            self._cond.notify_all()
            return True

    def end(self, session: _Session) -> None:
        """Producer finished cleanly (end sentinel or EOF)."""
        done = None
        with self._cond:
            if session.open:
                session.open = False
                if session.tenant.state == "streaming":
                    session.tenant.state = "finished"
                    done = session.tenant
            self._cond.notify_all()
        if done is not None:
            self._notify_done(done)

    def fail(self, session: _Session, exc: BaseException) -> None:
        """Producer died (transport/decode error): stop this tenant only.

        The shared cluster keeps running — one tenant's corrupt stream
        must not take down everyone else's.
        """
        done = None
        with self._cond:
            if session.open:
                session.open = False
                session.tenant.state = "failed"
                session.tenant.error = str(exc)
                done = session.tenant
            elif session.tenant.error is None:
                # Force-closed transports surface as read errors on the
                # feeder; keep the drain state but record the cause.
                session.tenant.error = str(exc)
            self._cond.notify_all()
        if done is not None:
            self._notify_done(done)

    def _notify_done(self, tenant: Tenant) -> None:
        """Fire ``on_tenant_done`` outside the condition lock.

        A logging failure must never poison the merge or a producer
        thread, so exceptions are swallowed here.
        """
        callback = self.on_tenant_done
        if callback is None:
            return
        try:
            callback(tenant)
        except Exception:
            pass

    # -- lifecycle -----------------------------------------------------------
    def close_admissions(self) -> None:
        """Refuse new tenants; existing sessions keep streaming."""
        with self._cond:
            self._admissions_closed = True
            self._cond.notify_all()

    def force_close(self) -> None:
        """Close every open session (drain grace expired).

        Already-buffered events still replay — force-close bounds how
        long the merge waits for *new* arrivals, it does not discard
        what was already delivered.  Transports are closed through each
        session's ``closer`` so blocked feeder reads unblock.
        """
        closers = []
        done = []
        with self._cond:
            self._admissions_closed = True
            for session in self._sessions:
                if session.open:
                    session.open = False
                    if session.tenant.state in ("pending", "streaming"):
                        session.tenant.state = "closed"
                        done.append(session.tenant)
                    if session.closer is not None:
                        closers.append(session.closer)
            self._cond.notify_all()
        for closer in closers:
            try:
                closer()
            except OSError:
                pass
        for tenant in done:
            self._notify_done(tenant)

    # -- consumer side (the runner's pump) -----------------------------------
    def events(self) -> Iterator[StreamEvent]:
        if self._consumed:
            raise ValueError("TenantMux is single-shot: one merge per service")
        self._consumed = True
        return self._merged()

    def _merged(self) -> Iterator[StreamEvent]:
        while True:
            with self._cond:
                while True:
                    item = self._pop_ready()
                    if item is not None:
                        break
                    self._cond.wait()
            if item is _DONE:
                return
            yield item

    def _pop_ready(self):
        """Under the lock: the next emittable event, ``_DONE`` at end of
        service, or None when the merge must wait.

        The head is the minimum ``(offset + time, kind, admission seq)``
        over non-empty session buffers; it is emittable only when no
        *open* session with an empty buffer has a bound (offset +
        frontier) strictly below the head time — such a session could
        still deliver an earlier event.
        """
        best: Optional[_Session] = None
        best_key = None
        draining = True
        for session in self._sessions:
            if not session.buffer:
                draining = draining and not session.open
                continue
            draining = False
            head = session.buffer[0]
            t, kind = event_sort_key(head)
            key = (session.tenant.offset + t, kind, session.seq)
            if best_key is None or key < best_key:
                best, best_key = session, key
        if best is None:
            if draining and self._admissions_closed:
                return _DONE
            return None
        head_time = best_key[0]
        for session in self._sessions:
            if (
                session.open
                and not session.buffer
                and session.tenant.offset + session.frontier < head_time
            ):
                return None
        event = best.buffer.popleft()
        self._cond.notify_all()  # wake feeders blocked on the buffer limit
        return self._emit(best.tenant, event)

    def _emit(self, tenant: Tenant, event: StreamEvent) -> StreamEvent:
        """Shift ``event`` onto the cluster clock, scope its paths under
        the tenant's prefix, and tag its tenant."""
        offset = tenant.offset
        prefix = tenant.prefix
        if isinstance(event, TraceJob):
            # Jobs are per-stream objects (never shared), so mutating the
            # submit time and stamping the tenant tag is safe — and with
            # isolation off, leaving times/ids/paths untouched is what
            # keeps a single-tenant served run identical to the offline
            # replay.
            if offset:
                event.submit_time += offset
            if prefix:
                event.input_paths = [prefix + p for p in event.input_paths]
                if event.outputs:
                    event.outputs = [
                        replace(o, path=prefix + o.path) for o in event.outputs
                    ]
            setattr(event, SERVICE_TENANT_ATTR, tenant)
            tenant.jobs_submitted += 1
        elif offset or prefix:
            event = replace(
                event, time=event.time + offset, path=prefix + event.path
            )
        tenant.events_emitted += 1
        self.live_stats.events_emitted += 1
        return event
