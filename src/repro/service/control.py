"""The daemon's HTTP/JSON control plane (stdlib ``http.server``).

Small on purpose: a :class:`~http.server.ThreadingHTTPServer` whose
handler dispatches on path, answering monitoring probes and tenant
submissions with JSON.  Endpoints (full operator reference in
``docs/service.md``):

====================================  =======================================
``GET /healthz``                      liveness + tenant counts
``GET /metrics``                      engine/run counters (pump lead, queue
                                      delay by tier, heap peak, events/sec)
``GET /metrics?format=prometheus``    the same counters in Prometheus text
                                      exposition, with per-tenant labels
``GET /tenants``                      tenant list with lifecycle states
                                      (plus ``past`` from ``--results-log``)
``GET /tenants/<id>/metrics``         per-tenant RunResult projection
``POST /tenants``                     admit a tenant: a JSON scenario spec
                                      (``{"scenario": ..., "params": ...,
                                      "pace": ...}``) or a raw JSONL stream
                                      body
``POST /shutdown``                    ``{"mode": "drain"|"now"}`` graceful
                                      stop
====================================  =======================================

Responses are always JSON, always :func:`~repro.service.engine.json_safe`
(non-finite floats serialize as ``null``, never ``Infinity``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.service.engine import json_safe
from repro.service.mux import ServiceClosed


class ControlHandler(BaseHTTPRequestHandler):
    """Routes control-plane requests to the owning service."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, format: str, *args: Any) -> None:
        """Silence per-request stderr logging (the daemon's stdout is
        the operator surface; probes would flood it)."""

    @property
    def service(self):
        """The :class:`~repro.service.server.TieringService` this
        control server fronts."""
        return self.server.service

    # -- plumbing ------------------------------------------------------------
    def _send_json(self, code: int, body: Dict[str, Any]) -> None:
        payload = json.dumps(json_safe(body), indent=2).encode() + b"\n"
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        return self.rfile.read(length) if length else b""

    def _send_text(self, code: int, text: str) -> None:
        payload = text.encode()
        self.send_response(code)
        self.send_header("Content-Type", "text/plain; version=0.0.4")
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    # -- routes --------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        """Dispatch GET: healthz, metrics, tenant listing/projections."""
        engine = self.service.engine
        parts = urlsplit(self.path)
        query = parse_qs(parts.query)
        path = parts.path.rstrip("/") or "/"
        if path == "/healthz":
            body = engine.healthz()
            body["data_port"] = self.service.data_port
            self._send_json(200 if body["ok"] else 503, body)
        elif path == "/metrics":
            if query.get("format", [""])[0] == "prometheus":
                self._send_text(200, engine.prometheus())
            else:
                self._send_json(200, engine.metrics())
        elif path == "/tenants":
            self._send_json(
                200,
                {
                    "tenants": [t.as_dict() for t in engine.registry.list()],
                    "past": engine.past_tenants,
                },
            )
        elif path.startswith("/tenants/") and path.endswith("/metrics"):
            tenant_id = path[len("/tenants/") : -len("/metrics")]
            tenant = engine.registry.get(tenant_id)
            if tenant is None:
                self._send_json(404, {"error": f"no tenant {tenant_id!r}"})
            else:
                self._send_json(200, tenant.metrics_dict())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        """Dispatch POST: tenant submission and shutdown."""
        path = self.path.rstrip("/")
        if path == "/tenants":
            self._post_tenant()
        elif path == "/shutdown":
            self._post_shutdown()
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def _post_tenant(self) -> None:
        engine = self.service.engine
        body = self._read_body()
        content_type = (self.headers.get("Content-Type") or "").split(";")[0].strip()
        try:
            if content_type == "application/json":
                spec = json.loads(body.decode() or "{}")
                isolate = bool(spec.get("isolate", True))
                if "scenario" in spec:
                    tenant = engine.attach_scenario(
                        spec["scenario"],
                        params=spec.get("params"),
                        name=spec.get("name"),
                        pace=spec.get("pace"),
                        isolate=isolate,
                    )
                elif "events" in spec:
                    tenant = engine.attach_jsonl(
                        spec["events"],
                        name=spec.get("name"),
                        pace=spec.get("pace"),
                        isolate=isolate,
                    )
                else:
                    self._send_json(
                        400, {"error": "spec needs 'scenario' or 'events'"}
                    )
                    return
            elif body:
                # Raw JSONL stream body (e.g. `repro scenario run --out -`
                # piped through curl --data-binary).
                tenant = engine.attach_jsonl(body.decode())
            else:
                self._send_json(400, {"error": "empty tenant submission"})
                return
        except ServiceClosed as exc:
            self._send_json(409, {"error": str(exc)})
            return
        except (KeyError, ValueError, TypeError) as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._send_json(201, {"tenant": tenant.as_dict()})

    def _post_shutdown(self) -> None:
        try:
            spec = json.loads(self._read_body().decode() or "{}")
        except ValueError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        mode = spec.get("mode", "drain")
        if mode not in ("drain", "now"):
            self._send_json(400, {"error": f"mode {mode!r} not in ('drain', 'now')"})
            return
        grace = spec.get("grace")
        self.service.begin_drain(
            grace=float(grace) if grace is not None else None, mode=mode
        )
        self._send_json(202, {"status": "draining", "mode": mode})


class ControlPlane:
    """Owns the threaded HTTP server for one service instance."""

    def __init__(self, service, host: str, port: int) -> None:
        self._server = ThreadingHTTPServer((host, port), ControlHandler)
        self._server.daemon_threads = True
        self._server.service = service
        self._thread: Optional[threading.Thread] = None

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (port resolved when 0 was asked)."""
        return self._server.server_address[:2]

    def start(self) -> None:
        """Serve requests on a daemon thread until :meth:`stop`."""
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="service-control",
            daemon=True,
        )
        self._thread.start()

    def stop(self) -> None:
        """Stop serving and release the port."""
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
