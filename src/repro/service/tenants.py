"""Tenant identity, lifecycle, and per-tenant metric projections.

A *tenant* is one workload stream admitted into the shared simulated
cluster: a socket session on the data plane, or an inline/scenario
submission through the control plane.  The registry hands out ids,
tracks lifecycle state, and owns each tenant's private
:class:`~repro.engine.metrics.MetricsCollector` — the per-tenant
projection of the shared run that ``GET /tenants/<id>/metrics`` serves.

Job→tenant routing works by *tagging*: the mux stamps every
:class:`~repro.workload.jobs.TraceJob` it emits with its tenant (jobs
are per-stream objects, never shared, so the attribute is private to
the session), and the scheduler's per-job fanout
(:attr:`~repro.engine.scheduler.TaskScheduler.metrics_for_job`) follows
the tag back to the tenant's collector.  Tenant-local job ids are left
untouched — nothing in the engine keys on them, and preserving them is
what makes a single-tenant served run event-for-event identical to the
offline ``repro live`` replay.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.engine.metrics import MetricsCollector

#: Private attribute the mux stamps on emitted jobs to route per-tenant
#: metrics (see :func:`tenant_collector_for_job`).
SERVICE_TENANT_ATTR = "_service_tenant"

#: Tenant lifecycle states, in the order they normally occur.
#: ``pending`` — admitted by the registry, transport not yet attached
#: (socket sessions wait here until the producer's header arrives);
#: ``streaming`` — events flowing into the shared cluster;
#: ``finished`` — stream ended cleanly (end sentinel or EOF);
#: ``failed`` — transport or decode error (the shared cluster keeps
#: running; only this tenant stops);
#: ``closed`` — force-closed by drain before the stream ended.
TENANT_STATES = ("pending", "streaming", "finished", "failed", "closed")


@dataclass
class Tenant:
    """One admitted workload stream and its private accounting."""

    #: Registry-assigned id (``t1``, ``t2``, ...), the control-plane key.
    tenant_id: str
    #: Display name (stream header name, scenario name, or peer address).
    name: str
    #: Where the stream came from: ``socket:<peer>``, ``inline``, or
    #: ``scenario:<name>``.
    source: str
    #: Lifecycle state, one of :data:`TENANT_STATES`.
    state: str = "pending"
    #: Simulation time at admission: every event time in this tenant's
    #: stream is shifted by this offset onto the shared cluster clock.
    offset: float = 0.0
    #: Wall-clock replay pacing applied to this tenant's feeder (None =
    #: as fast as the transport delivers).
    pace: Optional[float] = None
    #: Path-namespace prefix (``/t1``): tenants share one DFS namespace,
    #: so by default the service scopes every path in a tenant's stream
    #: under its id — two tenants replaying the *same* scenario would
    #: otherwise collide on file creation.  Empty = no rewriting
    #: (``isolate=false`` at admission), which is what makes a
    #: single-tenant served run byte-identical to the offline replay.
    prefix: str = ""
    #: Events emitted into the shared cluster on this tenant's behalf.
    events_emitted: int = 0
    #: Jobs among those events (the submission count).
    jobs_submitted: int = 0
    #: First transport/decode error, when ``state == "failed"``.
    error: Optional[str] = None
    #: Wall time of admission (:func:`time.time`), for operator display.
    admitted_wall: float = field(default_factory=time.time)
    #: This tenant's isolated metrics projection: the scheduler records
    #: every task read, write, and completion of the tenant's jobs here
    #: *in addition to* the shared run collector.
    collector: MetricsCollector = field(default_factory=MetricsCollector)

    def as_dict(self) -> Dict[str, Any]:
        """Control-plane projection (``GET /tenants``)."""
        return {
            "id": self.tenant_id,
            "name": self.name,
            "source": self.source,
            "state": self.state,
            "offset": self.offset,
            "pace": self.pace,
            "prefix": self.prefix,
            "events_emitted": self.events_emitted,
            "jobs_submitted": self.jobs_submitted,
            "jobs_finished": self.collector.jobs_completed,
            "error": self.error,
        }

    def metrics_dict(self) -> Dict[str, Any]:
        """Per-tenant :class:`~repro.engine.runner.RunResult`-style
        projection (``GET /tenants/<id>/metrics``)."""
        collector = self.collector
        return {
            "tenant": self.as_dict(),
            "jobs_finished": collector.jobs_completed,
            "hit_ratio": collector.hit_ratio(),
            "byte_hit_ratio": collector.byte_hit_ratio(),
            "task_seconds": collector.total_task_seconds(),
            "bytes_read": collector.bytes_read,
            "bytes_read_memory": collector.bytes_read_memory,
            "bytes_written": collector.bytes_written,
            "mean_completion_times": collector.mean_completion_times(),
        }


def tenant_collector_for_job(trace_job) -> Optional[MetricsCollector]:
    """The scheduler fanout hook: the tagged tenant's collector, if any.

    Wired as :attr:`~repro.engine.scheduler.TaskScheduler.metrics_for_job`
    by :class:`~repro.service.engine.ServiceEngine`; returns None for
    untagged jobs so non-service paths are unaffected.
    """
    tenant = getattr(trace_job, SERVICE_TENANT_ATTR, None)
    return tenant.collector if tenant is not None else None


class TenantRegistry:
    """Thread-safe tenant directory for one service instance."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._tenants: Dict[str, Tenant] = {}
        self._next = 1

    def create(
        self,
        name: str,
        source: str,
        pace: Optional[float] = None,
        collector: Optional[MetricsCollector] = None,
        isolate: bool = True,
    ) -> Tenant:
        """Admit a new tenant (state ``pending``) and return it.

        ``isolate`` (the default) scopes the tenant's paths under
        ``/<tenant-id>`` — see :attr:`Tenant.prefix`.
        """
        with self._lock:
            tenant_id = f"t{self._next}"
            self._next += 1
            tenant = Tenant(
                tenant_id=tenant_id,
                name=name,
                source=source,
                pace=pace,
                prefix=f"/{tenant_id}" if isolate else "",
                collector=collector if collector is not None else MetricsCollector(),
            )
            self._tenants[tenant_id] = tenant
            return tenant

    def get(self, tenant_id: str) -> Optional[Tenant]:
        """The tenant with ``tenant_id``, or None."""
        with self._lock:
            return self._tenants.get(tenant_id)

    def list(self) -> List[Tenant]:
        """All tenants in admission order."""
        with self._lock:
            return list(self._tenants.values())

    def counts(self) -> Dict[str, int]:
        """Tenant counts by lifecycle state (plus ``total``)."""
        with self._lock:
            counts = {state: 0 for state in TENANT_STATES}
            for tenant in self._tenants.values():
                counts[tenant.state] += 1
            counts["total"] = len(self._tenants)
            return counts
