"""One shared simulated cluster fed by many tenants, with live metrics.

:class:`ServiceEngine` owns the pieces the daemon multiplexes tenants
into: a :class:`~repro.service.mux.TenantMux`, a
:class:`~repro.engine.runner.WorkloadRunner` replaying the merged
stream on a dedicated *engine thread*, and the
:class:`~repro.service.tenants.TenantRegistry` whose per-tenant
collectors the scheduler fans metrics out to
(:attr:`~repro.engine.scheduler.TaskScheduler.metrics_for_job`).

Mid-flight observability comes from
:meth:`~repro.engine.runner.WorkloadRunner.snapshot`: the control plane
calls it from HTTP handler threads while the engine thread is still
replaying.  The engine thread spends its idle time blocked inside the
mux's condition wait (the pump's ``next()``), so the simulation state a
snapshot reads is stable whenever no events are flowing; under load the
snapshot is a consistent-enough point-in-time view, which is the
contract monitoring wants.

Everything serialized for HTTP passes through :func:`json_safe`, which
turns non-finite floats into ``null`` — the header-less live stream's
``duration=inf`` must never leak into JSON as a bare ``Infinity`` token
(see ``docs/benchmarks.md``).
"""

from __future__ import annotations

import io
import math
import socket as socket_module
import threading
import time
from typing import Any, Dict, Iterable, Optional

from repro.engine.metrics import MetricsCollector
from repro.engine.runner import RunResult, SystemConfig, WorkloadRunner
from repro.service.mux import ServiceClosed, TenantMux
from repro.service.tenants import Tenant, TenantRegistry, tenant_collector_for_job
from repro.workload.jobs import StreamEvent
from repro.workload.live import DEFAULT_REORDER_DEPTH, LiveStream, paced_events


def json_safe(value: Any) -> Any:
    """``value`` with every non-JSON scalar made representable.

    Non-finite floats (``inf``, ``nan``) become ``None`` — JSON has no
    ``Infinity`` token, and Python's default ``json.dumps`` would emit
    one anyway, producing output standard parsers reject.  Non-string
    dict keys become strings (tier objects key some engine dicts), and
    unknown objects fall back to ``str``.
    """
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, (str, int, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {
            (k if isinstance(k, str) else str(getattr(k, "name", k))): json_safe(v)
            for k, v in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    return str(value)


def result_to_dict(result: RunResult) -> Dict[str, Any]:
    """A JSON-safe dict projection of a :class:`RunResult`.

    This is the ``run`` section of ``GET /metrics``: the run-level
    counters an operator watches (submission/completion, hit ratios,
    pump lead, per-tier queue delay, I/O contention), with open-ended
    durations already ``None`` (see :attr:`RunResult.duration`).
    """
    metrics = result.metrics
    return json_safe(
        {
            "label": result.label,
            "duration": result.duration,
            "elapsed": result.elapsed,
            "jobs_submitted": result.jobs_submitted,
            "jobs_finished": result.jobs_finished,
            "deletions_applied": result.deletions_applied,
            "hit_ratio": metrics.hit_ratio(),
            "byte_hit_ratio": metrics.byte_hit_ratio(),
            "task_seconds": metrics.total_task_seconds(),
            "bytes_read": metrics.bytes_read,
            "bytes_written": metrics.bytes_written,
            "pump": {
                "events": result.pump_events,
                "lead_mean_seconds": result.pump_lead_mean_seconds,
                "lead_max_seconds": result.pump_lead_max_seconds,
                "late_events": result.pump_late_events,
            },
            "queue_delay_by_tier": result.queue_delay_by_tier,
            "io_stats": result.io_stats,
            "live_stats": result.live_stats,
            "transfers_committed": result.transfers_committed,
        }
    )


class ServiceEngine:
    """The multi-tenant replay engine behind one service instance."""

    def __init__(
        self,
        config: Optional[SystemConfig] = None,
        drain_limit: float = 4 * 3600.0,
        results_log: Optional[str] = None,
    ) -> None:
        if config is None:
            config = SystemConfig(label="service")
        self.config = config
        self.drain_limit = drain_limit
        self.registry = TenantRegistry()
        self.mux = TenantMux(self.registry)
        self.runner = WorkloadRunner(self.mux, config)
        # The mux stamps each tenant's admission offset off the shared
        # simulation clock, and the scheduler fans per-job metrics out
        # to the tagged tenant's collector.
        self.mux.clock = self.runner.sim.now
        self.runner.scheduler.metrics_for_job = tenant_collector_for_job
        #: Tenant records from previous daemon runs (``--results-log``):
        #: loaded once at startup, served under ``GET /tenants``'s
        #: ``"past"`` key.  Empty without a log.
        self.past_tenants: list = []
        self.results_log = None
        if results_log is not None:
            from repro.service.results import ResultsLog

            self.results_log = ResultsLog(results_log)
            self.past_tenants = self.results_log.load()
            self.mux.on_tenant_done = self.results_log.record_tenant
        self.result: Optional[RunResult] = None
        self.error: Optional[BaseException] = None
        self.started_wall: Optional[float] = None
        self._thread: Optional[threading.Thread] = None
        self._drain_lock = threading.Lock()
        self._draining = False

    # -- lifecycle -----------------------------------------------------------
    @property
    def status(self) -> str:
        """``starting`` → ``serving`` → ``draining`` → ``finished`` (or
        ``failed`` when the engine thread died)."""
        if self.error is not None:
            return "failed"
        if self.result is not None:
            return "finished"
        if self._draining:
            return "draining"
        if self._thread is not None:
            return "serving"
        return "starting"

    def start(self) -> None:
        """Start the engine thread (idempotent)."""
        if self._thread is not None:
            return
        self.started_wall = time.time()
        self._thread = threading.Thread(
            target=self._run, name="service-engine", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        try:
            self.result = self.runner.run(self.drain_limit)
            if self.results_log is not None:
                # The replay has fully drained, so every tenant's
                # collector is final — re-log with complete metrics
                # (load() collapses the stream-end/final pair).
                for tenant in self.registry.list():
                    if tenant.state in ("finished", "failed", "closed"):
                        try:
                            self.results_log.record_tenant(tenant, final=True)
                        except Exception:
                            pass
        except BaseException as exc:  # surface, never swallow, engine death
            self.error = exc

    def begin_drain(self, grace: float = 30.0) -> None:
        """Graceful shutdown: stop admissions, give open sessions
        ``grace`` wall seconds to finish, then force-close transports.

        Returns immediately; the engine thread finishes the replay
        (draining in-flight jobs and transfers) and publishes the final
        :class:`RunResult`.  Idempotent.
        """
        with self._drain_lock:
            if self._draining:
                return
            self._draining = True
        self.mux.close_admissions()
        threading.Thread(
            target=self._drain, args=(grace,), name="service-drain", daemon=True
        ).start()

    def _drain(self, grace: float) -> None:
        deadline = time.time() + grace
        while time.time() < deadline:
            if all(
                t.state not in ("pending", "streaming") for t in self.registry.list()
            ):
                break
            time.sleep(0.05)
        self.mux.force_close()

    def alive(self) -> bool:
        """Whether the engine thread is still replaying."""
        return self._thread is not None and self._thread.is_alive()

    def join(self, timeout: Optional[float] = None) -> Optional[RunResult]:
        """Wait for the engine thread; the final result once finished."""
        if self._thread is not None:
            self._thread.join(timeout)
        if self.error is not None:
            raise RuntimeError("service engine failed") from self.error
        return self.result

    # -- tenant admission ----------------------------------------------------
    def _collector(self) -> MetricsCollector:
        return MetricsCollector(hierarchy=self.runner.hierarchy)

    def attach_events(
        self,
        events: Iterable[StreamEvent],
        name: str,
        source: str,
        pace: Optional[float] = None,
        isolate: bool = True,
    ) -> Tenant:
        """Admit a pre-built event iterator (scenario or inline stream)
        as a tenant; a daemon feeder thread delivers it into the mux.

        ``isolate=False`` skips the per-tenant path prefix (see
        :attr:`~repro.service.tenants.Tenant.prefix`).  Raises
        :class:`~repro.service.mux.ServiceClosed` while draining.
        """
        tenant = self.registry.create(
            name=name,
            source=source,
            pace=pace,
            collector=self._collector(),
            isolate=isolate,
        )
        session = self.mux.attach(tenant)
        threading.Thread(
            target=self._feed,
            args=(session, events, pace),
            name=f"feeder-{tenant.tenant_id}",
            daemon=True,
        ).start()
        return tenant

    def _feed(self, session, events: Iterable[StreamEvent], pace: Optional[float]):
        try:
            if pace is not None:
                events = paced_events(events, pace)
            for event in events:
                if not self.mux.feed(session, event):
                    break
            self.mux.end(session)
        except Exception as exc:
            self.mux.fail(session, exc)

    def attach_jsonl(
        self,
        text: str,
        name: Optional[str] = None,
        pace: Optional[float] = None,
        isolate: bool = True,
    ) -> Tenant:
        """Admit an inline JSONL stream (``POST /tenants`` with a raw
        body): decoded through :class:`~repro.workload.live.LiveStream`
        so it gets the same header/reorder/numbering conveniences as
        every other transport."""
        stream = LiveStream(io.StringIO(text), name=name)
        return self.attach_events(
            stream.events(),
            name=stream.name,
            source="inline",
            pace=pace,
            isolate=isolate,
        )

    def attach_scenario(
        self,
        scenario: str,
        params: Optional[Dict[str, Any]] = None,
        name: Optional[str] = None,
        pace: Optional[float] = None,
        isolate: bool = True,
    ) -> Tenant:
        """Admit a registered scenario as a tenant (``POST /tenants``
        with ``{"scenario": ...}``)."""
        from repro.workload.scenarios import build_scenario

        stream = build_scenario(scenario, **(params or {}))
        return self.attach_events(
            stream.events(),
            name=name or stream.name,
            source=f"scenario:{scenario}",
            pace=pace,
            isolate=isolate,
        )

    def attach_socket(
        self,
        conn: socket_module.socket,
        peer: str,
        reorder_depth: int = DEFAULT_REORDER_DEPTH,
        late: str = "clamp",
        pace: Optional[float] = None,
        isolate: bool = True,
    ) -> Tenant:
        """Admit a data-plane connection as a tenant.

        The tenant is listed immediately (state ``pending``); the feeder
        thread blocks on the producer's header, attaches to the mux when
        it arrives (fixing the tenant's offset at that moment), then
        streams until end-of-stream, error, or drain force-close.
        """
        tenant = self.registry.create(
            name=peer,
            source=f"socket:{peer}",
            pace=pace,
            collector=self._collector(),
            isolate=isolate,
        )

        def closer() -> None:
            # shutdown() unblocks a feeder parked in readline(); close()
            # releases the fd.  Both are safe to call twice.
            try:
                conn.shutdown(socket_module.SHUT_RDWR)
            except OSError:
                pass
            conn.close()

        def feeder() -> None:
            session = None
            try:
                stream = LiveStream(
                    conn.makefile("rb"), reorder_depth=reorder_depth, late=late
                )
                if stream.name != "live":
                    tenant.name = stream.name
                session = self.mux.attach(tenant, closer=closer)
                self._feed(session, stream.events(), pace)
            except ServiceClosed:
                tenant.state = "closed"
                tenant.error = "admissions closed while connecting"
            except Exception as exc:
                if session is None:
                    tenant.state = "failed"
                    tenant.error = str(exc)
            finally:
                closer()

        threading.Thread(
            target=feeder, name=f"feeder-{tenant.tenant_id}", daemon=True
        ).start()
        return tenant

    # -- observability -------------------------------------------------------
    def snapshot(self) -> RunResult:
        """The shared run as it stands: the final result once finished,
        else a mid-flight :meth:`WorkloadRunner.snapshot`.

        Snapshots race benignly with the engine thread; transient
        failures (a dict resized mid-iteration) are retried.
        """
        if self.result is not None:
            return self.result
        for _ in range(3):
            try:
                return self.runner.snapshot()
            except RuntimeError:
                time.sleep(0.01)
        return self.runner.snapshot()

    def engine_stats(self) -> Dict[str, Any]:
        """The ``engine`` section of ``GET /metrics``: the simulator's
        core counters (:meth:`~repro.sim.simulator.Simulator.stats`)
        plus the service-level throughput gauge."""
        stats = self.runner.sim.stats()
        # The control plane has always called this gauge
        # ``pending_events`` (docs/service.md); keep that name stable.
        stats["pending_events"] = stats.pop("pending")
        wall = time.time() - self.started_wall if self.started_wall else 0.0
        stats["events_per_wall_second"] = (
            stats["events_processed"] / wall if wall > 0 else 0.0
        )
        return stats

    def metrics(self) -> Dict[str, Any]:
        """The ``GET /metrics`` body: service, engine, and run counters."""
        wall = time.time() - self.started_wall if self.started_wall else 0.0
        return json_safe(
            {
                "status": self.status,
                "uptime_wall_seconds": wall,
                "sim_now": self.runner.sim.now(),
                "tenants": self.registry.counts(),
                "engine": self.engine_stats(),
                "run": result_to_dict(self.snapshot()),
            }
        )

    def prometheus(self) -> str:
        """The ``GET /metrics?format=prometheus`` body (text exposition)."""
        from repro.obs.export import prometheus_text

        tenants = []
        for tenant in self.registry.list():
            row = tenant.as_dict()
            row["hit_ratio"] = tenant.collector.hit_ratio()
            row["bytes_read"] = tenant.collector.bytes_read
            tenants.append(row)
        return prometheus_text(
            self.engine_stats(), tenants=tenants, status=self.status
        )

    def healthz(self) -> Dict[str, Any]:
        """The ``GET /healthz`` body: liveness plus tenant counts."""
        return json_safe(
            {
                "status": self.status,
                "ok": self.error is None,
                "sim_now": self.runner.sim.now(),
                "tenants": self.registry.counts(),
            }
        )
