"""Trace synthesis: generate FB/CMU-shaped workloads from their statistics.

The synthesizer reproduces, per :class:`WorkloadProfile`:

* the Table 3 bin distribution of job counts and the heavy-tailed job
  input sizes (log-uniform within each bin);
* the dominant structure of production MapReduce traces: **recurring job
  series** — the same job re-running every N minutes over the same input
  files.  FB mixes short periods (15-120min: report/ETL pipelines whose
  temporal locality favours LRU); CMU uses long periods (75-140min:
  scientific parameter sweeps whose cyclic re-reads defeat LRU but are
  learnable from the consecutive-access-delta features);
* skewed file popularity for the ad-hoc (non-recurring) jobs (Zipf
  within per-bin pools, plus a hot set in periodic mode) with the
  published re-access fractions;
* the never-read file fraction (outputs nobody consumes plus cold
  data-load files);
* **pattern drift** when ``drift=True``: the popularity ranking rotates
  hourly and series starting later in the trace run with stretched
  periods, so the feature→label relationship the models learn keeps
  shifting — which is what makes one-shot learners decay in Fig 16.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.common.rng import make_rng, zipf_probabilities
from repro.common.units import MB
from repro.workload.bins import BINS
from repro.workload.jobs import FileCreation, OutputSpec, Trace, TraceJob
from repro.workload.profiles import WorkloadProfile


@dataclass
class _PoolEntry:
    """One (lazily materialized) input file inside a bin pool."""

    index: int
    path: Optional[str] = None
    size: int = 0
    creation_time: float = 0.0
    last_access: float = -math.inf
    access_count: int = 0


@dataclass
class _Pool:
    """Per-bin pool of reusable input files."""

    bin_name: str
    entries: List[_PoolEntry] = field(default_factory=list)
    cursor: int = 0
    #: Next entry to hand to a new recurring series.  Series take
    #: consecutive entries so each input file belongs to (at most) one
    #: series — these become the workload's "popular" files.
    series_cursor: int = 0
    #: Zipf probabilities over entries (recomputed on rotation).
    popularity: Optional[np.ndarray] = None


@dataclass
class _JobSlot:
    """One planned job occurrence (a series run or an ad-hoc job)."""

    time: float
    bin_idx: int
    entries: Optional[List[_PoolEntry]]  # fixed inputs for series runs
    #: Period class of the owning series (None for ad-hoc jobs).  Series
    #: of the same period class read characteristically sized inputs
    #: (parameter sweeps process uniform chunks), so file size is an
    #: informative predictor of re-access behaviour — mirroring the
    #: paper's Fig 15 finding that size is individually important.
    period_idx: Optional[int] = None


def _largest_remainder(fractions: Sequence[float], total: int) -> List[int]:
    """Integer apportionment of ``total`` by ``fractions`` (sums exactly)."""
    raw = [f * total for f in fractions]
    counts = [int(math.floor(r)) for r in raw]
    remainder = total - sum(counts)
    order = sorted(range(len(raw)), key=lambda i: raw[i] - counts[i], reverse=True)
    for i in order[:remainder]:
        counts[i] += 1
    return counts


class TraceSynthesizer:
    """Generates a :class:`Trace` from a :class:`WorkloadProfile`."""

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int = 42,
        drift: bool = True,
        start_time: float = 0.0,
    ) -> None:
        self.profile = profile
        self.seed = seed
        self.drift = drift
        self.start_time = start_time
        self._rng = make_rng(seed)

    # -- public API ---------------------------------------------------------
    def synthesize(self) -> Trace:
        profile = self.profile
        trace = Trace(name=profile.name, duration=profile.duration)
        counts = _largest_remainder(profile.bin_fractions, profile.num_jobs)
        pools = self._build_pools(counts)
        slots = self._plan_slots(counts, pools)
        recent_outputs: List[Tuple[OutputSpec, float]] = []
        next_rotation = 3600.0
        for job_id, slot in enumerate(slots):
            if self.drift and slot.time >= next_rotation:
                self._rotate_popularity(pools)
                next_rotation += 3600.0
            job = self._make_job(job_id, slot, pools, recent_outputs, trace)
            trace.jobs.append(job)
        self._add_cold_files(trace)
        trace.creations.sort(key=lambda c: c.time)
        return trace

    # -- planning ------------------------------------------------------------------
    def _plan_slots(self, counts: List[int], pools: List[_Pool]) -> List[_JobSlot]:
        """Lay out recurring series and ad-hoc jobs on the time axis."""
        rng = self._rng
        profile = self.profile
        slots: List[_JobSlot] = []
        for bin_idx, n_jobs in enumerate(counts):
            remaining = n_jobs
            while remaining > 0:
                if remaining >= 3 and rng.random() < profile.recurring_frac:
                    planned = self._plan_series(bin_idx, remaining, pools[bin_idx])
                    if planned:
                        slots.extend(planned)
                        remaining -= len(planned)
                        continue
                slots.append(
                    _JobSlot(
                        time=float(rng.uniform(0, profile.duration)),
                        bin_idx=bin_idx,
                        entries=None,
                    )
                )
                remaining -= 1
        slots.sort(key=lambda s: s.time)
        for slot in slots:
            slot.time += self.start_time
        return slots

    def _plan_series(
        self, bin_idx: int, budget: int, pool: _Pool
    ) -> List[_JobSlot]:
        """One recurring series: fixed inputs, one run per period."""
        rng = self._rng
        profile = self.profile
        period_idx = int(rng.integers(len(profile.period_choices)))
        period = float(profile.period_choices[period_idx])
        start = float(rng.uniform(0, profile.duration * 0.85))
        if self.drift:
            # Series launched later in the trace run slower: re-access
            # timescales stretch as the workload evolves.
            period *= 1.0 + 0.8 * (start / profile.duration)
        span = min(profile.duration - start, profile.series_span)
        max_runs = int(span // period) + 1
        runs = min(max_runs, budget, profile.max_series_runs)
        if runs < 2:
            return []
        k_lo, k_hi = profile.files_per_job[bin_idx]
        k = int(rng.integers(k_lo, k_hi + 1))
        # Series own consecutive pool entries taken from the *tail* of the
        # pool, keeping them disjoint from the Zipf head the ad-hoc jobs
        # favour: series files keep clean periodic access patterns, and
        # they accumulate the high access counts that form the popular
        # head of the frequency distribution (Fig 5c).
        entries = []
        n = len(pool.entries)
        for i in range(min(k, n)):
            entries.append(pool.entries[n - 1 - ((pool.series_cursor + i) % n)])
        pool.series_cursor += len(entries)
        # Shared reference data: some series re-read one hot-set file on
        # every run, concentrating accesses on the frequency head (Fig 5c).
        if profile.series_ref_prob > 0 and rng.random() < profile.series_ref_prob:
            assert pool.popularity is not None
            head = min(profile.hot_head, n)
            top = np.argsort(-pool.popularity, kind="stable")[:head]
            ref = pool.entries[int(rng.choice(top))]
            if ref not in entries:
                entries.append(ref)
        slots = []
        for i in range(runs):
            jitter = float(rng.normal(0.0, profile.period_jitter * period))
            t = min(max(start + i * period + jitter, 0.0), profile.duration)
            slots.append(
                _JobSlot(
                    time=t, bin_idx=bin_idx, entries=entries, period_idx=period_idx
                )
            )
        return slots

    # -- pools ------------------------------------------------------------------
    def _build_pools(self, counts: List[int]) -> List[_Pool]:
        pools = []
        for bin_idx, size_bin in enumerate(BINS):
            n_jobs = counts[bin_idx]
            ratio = self.profile.pool_ratio[bin_idx]
            pool_size = max(2, int(round(n_jobs * ratio))) if n_jobs else 2
            pool = _Pool(
                bin_name=size_bin.name,
                entries=[_PoolEntry(index=i) for i in range(pool_size)],
            )
            pool.popularity = zipf_probabilities(
                pool_size, self.profile.popularity_skew
            )
            pools.append(pool)
        return pools

    def _rotate_popularity(self, pools: List[_Pool]) -> None:
        """Re-rank file popularity (workload evolution, Sec 7.6)."""
        for pool in pools:
            assert pool.popularity is not None
            self._rng.shuffle(pool.popularity)

    # -- entry selection ----------------------------------------------------------
    def _burst_window(self, t_rel: float) -> float:
        """Burst window, stretching over the trace when drift is on."""
        base = self.profile.burst_window
        if not self.drift:
            return base
        progress = min(max(t_rel / self.profile.duration, 0.0), 1.0)
        return base * (1.0 + 2.0 * progress)

    def _pick_entries(
        self, pool: _Pool, k: int, t: float, t_rel: float
    ) -> List[_PoolEntry]:
        rng = self._rng
        k = min(k, len(pool.entries))
        if self.profile.reuse_mode == "periodic":
            # Cyclic scan plus a small hot set of reference datasets: hot
            # picks concentrate on the ``hot_head`` most popular entries,
            # producing the heavy frequency head of Fig 5c (the head
            # itself rotates hourly under drift).
            picked: List[_PoolEntry] = []
            for _ in range(k):
                if rng.random() < self.profile.hot_pick_prob:
                    assert pool.popularity is not None
                    head = min(self.profile.hot_head, len(pool.entries))
                    top = np.argsort(-pool.popularity, kind="stable")[:head]
                    idx = int(rng.choice(top))
                else:
                    idx = pool.cursor % len(pool.entries)
                    pool.cursor += 1
                entry = pool.entries[idx]
                if entry not in picked:
                    picked.append(entry)
            return picked
        # Temporal mode: Zipf popularity boosted for recently read files.
        assert pool.popularity is not None
        weights = pool.popularity.copy()
        window = self._burst_window(t_rel)
        for i, entry in enumerate(pool.entries):
            if t - entry.last_access <= window:
                weights[i] *= self.profile.burst_boost
        weights /= weights.sum()
        picks = rng.choice(len(pool.entries), size=k, replace=False, p=weights)
        return [pool.entries[int(i)] for i in picks]

    # -- job construction ----------------------------------------------------------
    def _make_job(
        self,
        job_id: int,
        slot: _JobSlot,
        pools: List[_Pool],
        recent_outputs: List[Tuple[OutputSpec, float]],
        trace: Trace,
    ) -> TraceJob:
        rng = self._rng
        profile = self.profile
        pool = pools[slot.bin_idx]
        size_bin = BINS[slot.bin_idx]
        t = slot.time
        t_rel = t - self.start_time
        lo = max(size_bin.low, 4 * MB)
        if slot.entries is not None and slot.period_idx is not None:
            # Series inputs: sizes are quantized by period class — each
            # class processes chunks centered on a characteristic size
            # (log-spaced across the bin) with small jitter, so the file
            # size feature genuinely encodes the re-access period.
            n_classes = max(len(profile.period_choices), 1)
            frac = (slot.period_idx + 0.5) / n_classes
            center = lo * (size_bin.high / lo) ** frac
            target_size = int(center * float(np.exp(rng.normal(0.0, 0.08))))
            entries = slot.entries
        elif slot.entries is not None:
            target_size = int(
                np.exp(rng.uniform(np.log(lo), np.log(size_bin.high)))
            )
            entries = slot.entries
        else:
            target_size = int(
                np.exp(rng.uniform(np.log(lo), np.log(size_bin.high)))
            )
            k_lo, k_hi = profile.files_per_job[slot.bin_idx]
            k = int(rng.integers(k_lo, k_hi + 1))
            entries = self._pick_entries(pool, k, t, t_rel)
        input_paths: List[str] = []
        input_size = 0
        per_file = max(int(target_size) // max(len(entries), 1), 1 * MB)
        for entry in entries:
            if entry.path is None:
                entry.path = f"/data/{pool.bin_name}/in{entry.index:05d}"
                entry.size = per_file
                lead = rng.exponential(profile.creation_lead_mean)
                entry.creation_time = max(self.start_time, t - lead)
                trace.creations.append(
                    FileCreation(entry.path, entry.size, entry.creation_time)
                )
            entry.last_access = t
            entry.access_count += 1
            input_paths.append(entry.path)
            input_size += entry.size
        # Job chains: occasionally read a recently produced output.  Only
        # outputs of jobs submitted a while ago qualify — the producer
        # must have finished writing by the time the consumer reads.
        mature = [
            o for o, t_out in recent_outputs if t_out <= t - 15 * 60.0
        ]
        if mature and rng.random() < profile.chain_prob:
            chained = mature[int(rng.integers(len(mature)))]
            if chained.path not in input_paths:
                input_paths.append(chained.path)
                input_size += chained.size
        outputs: List[OutputSpec] = []
        if rng.random() < profile.output_prob:
            lo_r, hi_r = profile.output_ratio
            ratio = float(np.exp(rng.uniform(np.log(lo_r), np.log(hi_r))))
            out_size = max(int(input_size * ratio), 1 * MB)
            output = OutputSpec(path=f"/out/job{job_id:05d}", size=out_size)
            outputs.append(output)
            recent_outputs.append((output, t))
            if len(recent_outputs) > 50:
                recent_outputs.pop(0)
        cpu_lo, cpu_hi = profile.cpu_per_mb
        cpu_per_byte = (
            float(np.exp(rng.uniform(np.log(cpu_lo), np.log(cpu_hi)))) / MB
        )
        return TraceJob(
            job_id=job_id,
            submit_time=t,
            input_paths=input_paths,
            input_size=input_size,
            outputs=outputs,
            cpu_seconds_per_byte=cpu_per_byte,
        )

    # -- cold files ---------------------------------------------------------------
    def _add_cold_files(self, trace: Trace) -> None:
        """Top up never-read files and total bytes toward the targets.

        Cold files model data loaded but never consumed during the window
        (23% of files in FB, 18% in CMU).
        """
        target_never_read = {"FB": 0.23, "CMU": 0.18}.get(self.profile.name, 0.20)
        counts = trace.access_counts()
        never_read = sum(1 for c in counts.values() if c == 0)
        total_files = len(counts)
        # Solve (never_read + x) / (total + x) = target.
        needed = (target_never_read * total_files - never_read) / (
            1.0 - target_never_read
        )
        needed = max(int(round(needed)), 0)
        remaining_bytes = max(self.profile.total_bytes - trace.total_bytes, 0)
        rng = self._rng
        for i in range(needed):
            if remaining_bytes > 0:
                mean = remaining_bytes / needed
                size = int(np.clip(rng.exponential(mean), 1 * MB, 4096 * MB))
            else:
                size = int(rng.uniform(1 * MB, 64 * MB))
            time = self.start_time + float(rng.uniform(0, self.profile.duration))
            trace.creations.append(
                FileCreation(f"/data/cold/cold{i:05d}", size, time)
            )


def synthesize_trace(
    profile: WorkloadProfile, seed: int = 42, drift: bool = True
) -> Trace:
    """Convenience wrapper: build and run a :class:`TraceSynthesizer`."""
    return TraceSynthesizer(profile, seed=seed, drift=drift).synthesize()
