"""Trace import/export: whole-trace JSON and streaming JSONL.

Two formats live here:

* **Whole-trace JSON** (:func:`save_trace` / :func:`load_trace`): one
  document holding the complete trace.  Simple, but requires the trace
  to fit in memory on both ends.
* **Streaming JSONL** (:func:`save_events` / :func:`iter_events` /
  :class:`EventWriter`): one event per line, readable and writable
  incrementally, transparently gzip-compressed for ``*.gz`` paths.  An
  optional header line carries the workload name and duration; an
  optional ``{"kind": "end"}`` sentinel line marks a clean end of
  stream (pipes and sockets cannot always rely on EOF).  This is the
  on-disk *and* on-the-wire form of the stream protocol
  (:mod:`repro.workload.streams`, :mod:`repro.workload.live`) and the
  JSONL half of the external trace schema
  (:mod:`repro.workload.external`).  The full line schema is specified
  in ``docs/stream-protocol.md``.

Synthesized workloads are deterministic given a seed, but exporting a
trace pins the exact event sequence for sharing, regression baselines,
or replaying through external systems.
"""

from __future__ import annotations

import gzip
import json
import sys
from typing import Any, Dict, IO, Iterable, Iterator, Optional, Union

from repro.workload.jobs import (
    FileCreation,
    FileDeletion,
    OutputSpec,
    StreamEvent,
    Trace,
    TraceJob,
    event_time,
)

FORMAT_VERSION = 1

#: Streaming JSONL format version (header line ``kind: "header"``).
EVENT_FORMAT_VERSION = 1

#: ``kind`` of the optional end-of-stream sentinel line.
END_KIND = "end"


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "duration": trace.duration,
        "creations": [
            {"path": c.path, "size": c.size, "time": c.time}
            for c in trace.creations
        ],
        "jobs": [
            {
                "job_id": j.job_id,
                "submit_time": j.submit_time,
                "input_paths": list(j.input_paths),
                "input_size": j.input_size,
                "outputs": [
                    {"path": o.path, "size": o.size} for o in j.outputs
                ],
                "cpu_seconds_per_byte": j.cpu_seconds_per_byte,
            }
            for j in trace.jobs
        ],
    }


def trace_from_dict(data: Dict[str, Any]) -> Trace:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {version!r}")
    trace = Trace(name=data["name"], duration=float(data["duration"]))
    trace.creations = [
        FileCreation(c["path"], int(c["size"]), float(c["time"]))
        for c in data["creations"]
    ]
    trace.jobs = [
        TraceJob(
            job_id=int(j["job_id"]),
            submit_time=float(j["submit_time"]),
            input_paths=list(j["input_paths"]),
            input_size=int(j["input_size"]),
            outputs=[OutputSpec(o["path"], int(o["size"])) for o in j["outputs"]],
            cpu_seconds_per_byte=float(j["cpu_seconds_per_byte"]),
        )
        for j in data["jobs"]
    ]
    return trace


def save_trace(trace: Trace, path: str) -> None:
    """Write the trace to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(trace_to_dict(trace), handle)


def load_trace(path: str) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    with open(path) as handle:
        return trace_from_dict(json.load(handle))


# -- streaming JSONL ---------------------------------------------------------
def _open_text(path: str, mode: str) -> IO[str]:
    """Open ``path`` for text I/O, transparently gzipped for ``*.gz``."""
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t")
    return open(path, mode)


def event_to_dict(event: StreamEvent) -> Dict[str, Any]:
    """One stream event as a JSON-able dict (the JSONL line schema)."""
    if isinstance(event, FileCreation):
        return {
            "kind": "create",
            "time": event.time,
            "path": event.path,
            "bytes": event.size,
        }
    if isinstance(event, FileDeletion):
        return {"kind": "delete", "time": event.time, "path": event.path}
    if isinstance(event, TraceJob):
        record: Dict[str, Any] = {
            "kind": "job",
            "time": event.submit_time,
            "job_id": event.job_id,
            "inputs": list(event.input_paths),
            "input_bytes": event.input_size,
            "cpu_seconds_per_byte": event.cpu_seconds_per_byte,
        }
        if event.outputs:
            record["outputs"] = [
                {"path": o.path, "bytes": o.size} for o in event.outputs
            ]
        return record
    raise TypeError(f"not a stream event: {event!r}")


def event_from_dict(data: Dict[str, Any]) -> StreamEvent:
    """Inverse of :func:`event_to_dict` (tolerates omitted job fields)."""
    kind = data.get("kind")
    if kind == "create":
        return FileCreation(data["path"], int(data["bytes"]), float(data["time"]))
    if kind == "delete":
        return FileDeletion(data["path"], float(data["time"]))
    if kind == "job":
        return TraceJob(
            job_id=int(data.get("job_id", -1)),
            submit_time=float(data["time"]),
            input_paths=[str(p) for p in data["inputs"]],
            input_size=int(data.get("input_bytes", 0)),
            outputs=[
                OutputSpec(o["path"], int(o["bytes"]))
                for o in data.get("outputs", ())
            ],
            cpu_seconds_per_byte=float(data.get("cpu_seconds_per_byte", 0.0)),
        )
    raise ValueError(f"unknown event kind {kind!r}")


class EventWriter:
    """Incremental writer for the streaming JSONL trace format.

    Events are appended one line at a time — a generator can be drained
    to disk without ever materializing it.  Opening with ``append=True``
    continues an existing file (no header is written); otherwise a
    header line records the workload name, duration, and format version.

    ``path`` may be ``"-"`` for standard output, which turns the writer
    into the producing end of a pipe (``repro scenario run --out -``):
    every line is flushed as it is written (``auto_flush`` defaults to
    True for stdout) so a live consumer sees events as they are
    generated, and a consumer that hangs up early (``SIGPIPE`` →
    :class:`BrokenPipeError`) is treated as a clean stop — :meth:`close`
    and context exit flush what the pipe will still take and swallow the
    broken-pipe error instead of losing buffered events silently.

    Usable as a context manager::

        with EventWriter("trace.jsonl.gz", name="FB", duration=21600) as w:
            for event in stream:
                w.write(event)
            w.write_end()
    """

    def __init__(
        self,
        path: str,
        name: Optional[str] = None,
        duration: Optional[float] = None,
        append: bool = False,
        auto_flush: Optional[bool] = None,
    ) -> None:
        self.path = path
        self._stdout = path == "-"
        if self._stdout:
            self._handle: Optional[IO[str]] = sys.stdout
        else:
            self._handle = _open_text(path, "a" if append else "w")
        self.auto_flush = self._stdout if auto_flush is None else auto_flush
        self.events_written = 0
        self._ended = False
        if not append:
            header = {
                "kind": "header",
                "format_version": EVENT_FORMAT_VERSION,
            }
            if name is not None:
                header["name"] = name
            if duration is not None:
                header["duration"] = duration
            self._write_line(header)

    def _write_line(self, record: Dict[str, Any]) -> None:
        if self._handle is None:
            raise ValueError(f"writer for {self.path} is closed")
        self._handle.write(json.dumps(record) + "\n")
        if self.auto_flush:
            self._handle.flush()

    def write(self, event: StreamEvent) -> None:
        self._write_line(event_to_dict(event))
        self.events_written += 1

    def write_all(self, events: Iterable[StreamEvent]) -> int:
        for event in events:
            self.write(event)
        return self.events_written

    def write_end(self) -> None:
        """Write the end-of-stream sentinel line (idempotent)."""
        if not self._ended:
            self._write_line({"kind": END_KIND})
            self._ended = True

    def close(self) -> None:
        """Flush and release the underlying handle (stdout stays open)."""
        if self._handle is None:
            return
        handle, self._handle = self._handle, None
        try:
            handle.flush()
        except BrokenPipeError:
            # The consumer hung up (e.g. `| head`); everything it was
            # willing to read has been delivered — not a data loss.
            pass
        finally:
            if not self._stdout:
                try:
                    handle.close()
                except BrokenPipeError:
                    pass

    def __enter__(self) -> "EventWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def save_events(
    workload: Union[Trace, Iterable[StreamEvent]],
    path: str,
    name: Optional[str] = None,
    duration: Optional[float] = None,
    end_sentinel: bool = False,
) -> int:
    """Stream ``workload`` (a trace or any event iterable) to JSONL.

    Returns the number of events written.  Traces and
    :class:`~repro.workload.streams.WorkloadStream` objects supply their
    own name/duration unless overridden.  ``end_sentinel`` appends the
    end-of-stream line — recommended when the output is a pipe
    (``path="-"``) so the consumer need not rely on EOF.
    """
    if name is None:
        name = getattr(workload, "name", None)
    if duration is None:
        duration = getattr(workload, "duration", None)
    events = workload.events() if isinstance(workload, Trace) else iter(workload)
    with EventWriter(path, name=name, duration=duration) as writer:
        written = writer.write_all(events)
        if end_sentinel:
            writer.write_end()
        return written


def read_stream_header(path: str) -> Dict[str, Any]:
    """The header dict of a JSONL trace (``{}`` if the file has none)."""
    with _open_text(path, "r") as handle:
        first = handle.readline()
    if not first:
        return {}
    record = json.loads(first)
    if record.get("kind") != "header":
        return {}
    version = record.get("format_version")
    if version != EVENT_FORMAT_VERSION:
        raise ValueError(f"unsupported stream format version: {version!r}")
    return record


def iter_events(path: str) -> Iterator[StreamEvent]:
    """Lazily yield the events of a JSONL trace (header line skipped).

    Memory is O(1): lines are decoded one at a time, so arbitrarily long
    traces replay without materialization.
    """
    with _open_text(path, "r") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("kind") == "header":
                if line_no != 1:
                    raise ValueError(f"{path}:{line_no}: header after first line")
                continue
            if record.get("kind") == END_KIND:
                return
            yield event_from_dict(record)


def stream_duration(path: str) -> float:
    """Duration of a JSONL trace: header value, else a scan for max time."""
    header = read_stream_header(path)
    if "duration" in header:
        return float(header["duration"])
    last = 0.0
    for event in iter_events(path):
        last = max(last, event_time(event))
    return last
