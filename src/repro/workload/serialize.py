"""Trace import/export as JSON.

Synthesized workloads are deterministic given a seed, but exporting a
trace pins the exact event sequence for sharing, regression baselines,
or replaying through external systems.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.workload.jobs import FileCreation, OutputSpec, Trace, TraceJob

FORMAT_VERSION = 1


def trace_to_dict(trace: Trace) -> Dict[str, Any]:
    return {
        "format_version": FORMAT_VERSION,
        "name": trace.name,
        "duration": trace.duration,
        "creations": [
            {"path": c.path, "size": c.size, "time": c.time}
            for c in trace.creations
        ],
        "jobs": [
            {
                "job_id": j.job_id,
                "submit_time": j.submit_time,
                "input_paths": list(j.input_paths),
                "input_size": j.input_size,
                "outputs": [
                    {"path": o.path, "size": o.size} for o in j.outputs
                ],
                "cpu_seconds_per_byte": j.cpu_seconds_per_byte,
            }
            for j in trace.jobs
        ],
    }


def trace_from_dict(data: Dict[str, Any]) -> Trace:
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported trace format version: {version!r}")
    trace = Trace(name=data["name"], duration=float(data["duration"]))
    trace.creations = [
        FileCreation(c["path"], int(c["size"]), float(c["time"]))
        for c in data["creations"]
    ]
    trace.jobs = [
        TraceJob(
            job_id=int(j["job_id"]),
            submit_time=float(j["submit_time"]),
            input_paths=list(j["input_paths"]),
            input_size=int(j["input_size"]),
            outputs=[OutputSpec(o["path"], int(o["size"])) for o in j["outputs"]],
            cpu_seconds_per_byte=float(j["cpu_seconds_per_byte"]),
        )
        for j in data["jobs"]
    ]
    return trace


def save_trace(trace: Trace, path: str) -> None:
    """Write the trace to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(trace_to_dict(trace), handle)


def load_trace(path: str) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    with open(path) as handle:
        return trace_from_dict(json.load(handle))
