"""Statistical profiles of the Facebook and CMU OpenCloud workloads.

The original traces are proprietary / not shipped; these profiles encode
every marginal the paper publishes about the derived workloads (Sec 7.1,
Table 3, Fig 5) plus the qualitative access-pattern structure the paper
describes:

* **FB** — web-company analytics: strong Zipf file popularity and bursty
  temporal locality ("good temporal locality of reference", Sec 7.2),
  which is why LRU-flavoured policies do well on it;
* **CMU** — scientific batch workloads: weaker popularity skew and
  *cyclic* re-reads (parameter sweeps re-scanning cohorts of inputs),
  the access pattern on which LRU-OSA under-performs.

DESIGN.md documents this substitution (real traces → synthesizers that
match the published statistics).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.common.units import GB, HOURS, MINUTES


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything the synthesizer needs to generate one workload."""

    name: str
    num_jobs: int
    duration: float
    #: Fraction of jobs per bin A-F (Table 3, "% of Jobs").
    bin_fractions: Tuple[float, float, float, float, float, float]
    #: Target total bytes across all files (inputs + outputs).
    total_bytes: int
    #: Distinct input files per bin pool, as a fraction of the bin's jobs.
    pool_ratio: Tuple[float, float, float, float, float, float]
    #: (min, max) input files per job, per bin.
    files_per_job: Tuple[Tuple[int, int], ...]
    #: "temporal" (burst reuse) or "periodic" (cyclic scans).
    reuse_mode: str
    #: Zipf skew of within-pool file popularity.
    popularity_skew: float
    #: Recent-access boost multiplier and window (temporal mode).
    burst_boost: float = 4.0
    burst_window: float = 30 * MINUTES
    #: Probability a job writes an output file.
    output_prob: float = 0.4
    #: Output size as a fraction of input size: (min, max), log-uniform.
    output_ratio: Tuple[float, float] = (0.05, 0.6)
    #: Probability a job reads one recently produced output (job chains).
    chain_prob: float = 0.1
    #: Periodic mode: probability a pick goes to the popular "hot set"
    #: instead of the cyclic scan cursor.
    hot_pick_prob: float = 0.15
    #: Periodic mode: size of that hot set (reference datasets shared by
    #: many jobs — the heavy head of Fig 5c's frequency CDF).
    hot_head: int = 6
    #: Probability a recurring series also reads one hot-set reference
    #: file on every run (shared reference data accumulates the highest
    #: access counts in the trace).
    series_ref_prob: float = 0.0
    #: Fraction of jobs that belong to recurring series (the dominant
    #: structure of production MapReduce traces: the same job re-runs on
    #: the same inputs every N minutes).
    recurring_frac: float = 0.65
    #: Candidate periods (seconds) for recurring series.
    period_choices: Tuple[float, ...] = (
        15 * MINUTES,
        30 * MINUTES,
        60 * MINUTES,
        120 * MINUTES,
    )
    #: Relative jitter applied to each recurrence.
    period_jitter: float = 0.04
    #: Maximum number of runs in one series.
    max_series_runs: int = 24
    #: Maximum lifespan of one series (pipelines retire and are replaced
    #: — the workload evolution of Sec 7.6).
    series_span: float = 3 * HOURS
    #: Lead time between a file's creation and its first read (mean, s).
    creation_lead_mean: float = 20 * MINUTES
    #: CPU seconds per input MB: (min, max), log-uniform per job.
    cpu_per_mb: Tuple[float, float] = (0.01, 0.04)
    #: Fixed per-task startup overhead range in seconds.
    task_overhead: Tuple[float, float] = (0.5, 2.0)


#: Derived-FB workload (Sec 7.1): 1000 jobs / 6 hours / ~1380 files / ~92GB.
FB_PROFILE = WorkloadProfile(
    name="FB",
    num_jobs=1000,
    duration=6 * HOURS,
    bin_fractions=(0.744, 0.162, 0.040, 0.030, 0.016, 0.008),
    total_bytes=92 * GB,
    pool_ratio=(2.00, 1.60, 1.00, 0.90, 0.90, 1.00),
    files_per_job=((1, 3), (1, 2), (2, 3), (2, 4), (2, 4), (3, 5)),
    reuse_mode="temporal",
    popularity_skew=0.35,
    burst_boost=2.0,
    output_prob=0.30,
    chain_prob=0.30,
    recurring_frac=0.80,
    max_series_runs=16,
    # Periods sit away from the 30-minute upgrade class window so labels
    # near the boundary are not coin flips.  The 150-minute class is the
    # long-term re-access component the trace analyses report (daily /
    # weekly reuse, compressed into the 6-hour replay): its gaps exceed
    # what memory retention allows under churn, so recency policies evict
    # these files right before they return — the pattern only the learned
    # policy picks up.
    period_choices=(
        10 * MINUTES,
        20 * MINUTES,
        40 * MINUTES,
        60 * MINUTES,
        150 * MINUTES,
    ),
)

#: Derived-CMU workload (Sec 7.1): 800 jobs / 6 hours / ~1305 files / ~85GB.
CMU_PROFILE = WorkloadProfile(
    name="CMU",
    num_jobs=800,
    duration=6 * HOURS,
    bin_fractions=(0.634, 0.291, 0.009, 0.049, 0.015, 0.003),
    total_bytes=85 * GB,
    pool_ratio=(1.40, 1.20, 0.80, 0.80, 0.80, 0.90),
    files_per_job=((1, 2), (1, 2), (2, 3), (2, 4), (2, 4), (3, 5)),
    reuse_mode="periodic",
    popularity_skew=0.9,
    output_prob=0.32,
    chain_prob=0.25,
    hot_pick_prob=0.25,
    # Scientific sweeps: long gaps between re-reads of the same inputs —
    # the anti-LRU pattern (gaps exceed what memory retention allows
    # under churn, so LRU evicts files right before they return).
    recurring_frac=0.75,
    period_choices=(60 * MINUTES, 80 * MINUTES, 105 * MINUTES),
    series_span=4.5 * HOURS,
    creation_lead_mean=10 * MINUTES,
    hot_head=5,
    series_ref_prob=0.45,
)

PROFILES: Dict[str, WorkloadProfile] = {
    "FB": FB_PROFILE,
    "CMU": CMU_PROFILE,
}


def scaled_profile(profile: WorkloadProfile, scale: float) -> WorkloadProfile:
    """Scale job count and data volume together (Sec 7.5 scale-out runs)."""
    from dataclasses import replace

    return replace(
        profile,
        num_jobs=max(1, int(round(profile.num_jobs * scale))),
        total_bytes=int(profile.total_bytes * scale),
    )
