"""Composition algebra over registered scenarios.

The scenario registry (:mod:`repro.workload.scenarios`) names individual
load shapes; real clusters run *mixtures* — a flash crowd landing on top
of a training scan, a day of diurnal traffic followed by a batch
backfill, the same tenant workload replayed at double speed.  This
module closes the stream protocol under five combinators, each
producing a lazy, seeded :class:`~repro.workload.streams.WorkloadStream`:

``overlay(*streams)``
    Merge concurrent streams into one timeline (via
    :func:`~repro.workload.streams.merge_timed_sources`).  By default
    every source is *namespace-isolated* under a tenant prefix
    (``/t0``, ``/t1``, ...) so overlaid scenarios can never collide on a
    file path — two sources deleting and re-creating the same path at
    the same timestamp would otherwise be forced through the global
    creations-before-deletions tie rule, silently inverting the
    intended delete→create order (see ``tests/test_compose.py``).
``concat(*streams)``
    Sequential composition: each source is clipped to its nominal
    duration and shifted to start where the previous one ended (plus an
    optional ``gap``), with the same per-source namespace isolation.
``timescale(stream, k)``
    Stretch (``k`` > 1) or compress (``k`` < 1) the arrival timeline by
    multiplying every event time by ``k``.  ``timescale(stream, 1)`` is
    the identity.
``tenant_tag(stream, prefix)``
    Rewrite every file path (inputs, outputs, creations, deletions)
    under ``prefix`` — the building block of multi-tenant composition
    and per-tenant metric attribution (see :mod:`repro.workload.fuzz`).
``take(stream, n)`` / ``until(stream, t)``
    Windowing: the first ``n`` events, or every event at or before
    simulated time ``t``.

Every combinator is **lazy** (transforms are applied per event as the
composed stream is pulled, so memory stays O(active sources), never
O(events)) and **closed** (the result is a stream: compositions nest).
Jobs are renumbered in merged order at every composition level, and the
ordering guard of the stream protocol is enforced on the output.

Compositions also **round-trip through a declarative JSON spec** — the
same algebra as data::

    {"op": "overlay", "sources": [
        {"op": "scenario", "name": "flashcrowd", "seed": 1},
        {"op": "timescale", "factor": 2.0,
         "source": {"op": "scenario", "name": "mlscan"}}]}

:func:`parse_spec` accepts a dict, JSON text, or a file path;
:func:`canonical_spec` normalizes a spec (defaults filled, parameter
values coerced, identity ``timescale`` collapsed) so that equal
workloads hash equally — the sweep subsystem content-addresses
composite cells by the canonical form.  :func:`build_compose` turns a
spec into the stream; ``repro scenario run compose --spec SPEC`` is the
CLI entry point, and frozen regression scenarios under
``tests/regression_scenarios/`` are exactly these specs plus the
pathology metric they pin.
"""

from __future__ import annotations

import itertools
import json
import os
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence

from repro.workload.jobs import (
    FileCreation,
    FileDeletion,
    OutputSpec,
    StreamEvent,
    TraceJob,
    event_time,
)
from repro.workload.streams import (
    WorkloadStream,
    clip,
    merge_timed_sources,
    number_jobs,
    ordered,
)

#: Every operator a composition spec may use (the algebra's signature).
COMPOSE_OPS = (
    "scenario",
    "overlay",
    "concat",
    "timescale",
    "tenant_tag",
    "take",
    "until",
)


class ComposeSpecError(ValueError):
    """A composition spec is malformed (unknown op, bad field, ...)."""


# -- per-event transforms (lazy, copying) ------------------------------------
def _rewrite(
    event: StreamEvent,
    prefix: str = "",
    offset: float = 0.0,
    factor: float = 1.0,
) -> StreamEvent:
    """A fresh copy of ``event`` with paths prefixed and times mapped.

    The time map is ``t -> t * factor + offset``.  Jobs come back with
    ``job_id=-1`` so the composed stream renumbers them in merged order
    (sources arrive pre-numbered; composition defines a new order).
    Copying also keeps re-iteration deterministic: mutable ``TraceJob``
    objects are never shared between the source and the composition.
    """
    if isinstance(event, FileCreation):
        return FileCreation(prefix + event.path, event.size, event.time * factor + offset)
    if isinstance(event, FileDeletion):
        return FileDeletion(prefix + event.path, event.time * factor + offset)
    return TraceJob(
        job_id=-1,
        submit_time=event.submit_time * factor + offset,
        input_paths=[prefix + p for p in event.input_paths],
        input_size=event.input_size,
        outputs=[OutputSpec(prefix + o.path, o.size) for o in event.outputs],
        cpu_seconds_per_byte=event.cpu_seconds_per_byte,
    )


def _transformed(
    events: Iterable[StreamEvent],
    prefix: str = "",
    offset: float = 0.0,
    factor: float = 1.0,
) -> Iterator[StreamEvent]:
    """Lazily apply :func:`_rewrite` to every event."""
    for event in events:
        yield _rewrite(event, prefix=prefix, offset=offset, factor=factor)


class ComposedStream(WorkloadStream):
    """A stream produced by the composition algebra.

    Wraps a factory returning the composed (already transformed) event
    iterator; the standard numbering/ordering guards run on top, exactly
    as for :class:`~repro.workload.streams.GeneratedStream`.  ``spec``
    is the canonical declarative form this stream round-trips through.
    """

    def __init__(self, name: str, duration: float, factory, spec: Dict[str, Any]):
        self.name = name
        self.duration = duration
        self._factory = factory
        self.spec = spec

    def events(self) -> Iterator[StreamEvent]:
        """The composed event sequence (renumbered, order-guarded)."""
        return number_jobs(ordered(self._factory(), name=self.name))


# -- the combinators ----------------------------------------------------------
def _spec_of(stream: WorkloadStream) -> Dict[str, Any]:
    """The spec of a composable input (streams built by this module)."""
    spec = getattr(stream, "spec", None)
    if spec is None:
        raise ComposeSpecError(
            f"stream {stream.name!r} was not built by the composition "
            "algebra (build leaves with scenario()/build_compose())"
        )
    return spec


def scenario(
    name: str, seed: int = 42, scale: float = 1.0, **params: float
) -> ComposedStream:
    """A registered scenario as a composition leaf.

    Identical workload to ``build_scenario(name, ...)``, wrapped so it
    carries its canonical spec and can enter the algebra.
    """
    from repro.workload.scenarios import build_scenario

    inner = build_scenario(name, seed=seed, scale=scale, **params)
    spec = canonical_spec(
        {"op": "scenario", "name": name, "seed": seed, "scale": scale,
         "params": dict(params)}
    )
    return ComposedStream(inner.name, inner.duration, inner.events, spec)


def overlay(
    *streams: WorkloadStream,
    isolate: bool = True,
) -> ComposedStream:
    """Merge concurrent streams into one timeline.

    With ``isolate`` (the default) source ``i``'s paths are rewritten
    under ``/t{i}`` so overlaid scenarios never collide on a file path;
    ``isolate=False`` merges verbatim — only safe when the sources'
    namespaces are already disjoint (same-path events from different
    sources are forced through the creations-before-deletions tie rule,
    which can invert an intended delete→create sequence).
    """
    if not streams:
        raise ComposeSpecError("overlay needs at least one source stream")
    spec = canonical_spec(
        {"op": "overlay", "sources": [_spec_of(s) for s in streams],
         "isolate": isolate}
    )
    return build_compose(spec)


def concat(
    *streams: WorkloadStream,
    gap: float = 0.0,
    isolate: bool = True,
) -> ComposedStream:
    """Sequential composition: each source starts where the last ended.

    Source ``i`` is clipped to its nominal duration and shifted by the
    cumulative duration (plus ``gap`` seconds between sources); with
    ``isolate`` its namespace moves under ``/c{i}``, so a scenario can
    be concatenated with itself without path collisions.
    """
    if not streams:
        raise ComposeSpecError("concat needs at least one source stream")
    spec = canonical_spec(
        {"op": "concat", "sources": [_spec_of(s) for s in streams],
         "gap": gap, "isolate": isolate}
    )
    return build_compose(spec)


def timescale(stream: WorkloadStream, factor: float) -> ComposedStream:
    """Multiply every event time (and the duration) by ``factor``.

    ``factor`` > 1 stretches (same events, lower rate), < 1 compresses
    (a pressure test for the pump and the policies); ``factor == 1``
    is the identity — the canonical spec collapses it away.
    """
    return build_compose(
        canonical_spec(
            {"op": "timescale", "source": _spec_of(stream), "factor": factor}
        )
    )


def tenant_tag(stream: WorkloadStream, prefix: str) -> ComposedStream:
    """Rewrite every file path of ``stream`` under ``prefix``.

    The prefix must look like an absolute directory (``/tA``); it is
    prepended to creations, deletions, job inputs, and job outputs, so
    the tagged stream lives in its own namespace — per-tenant metric
    attribution keys off exactly this prefix.
    """
    return build_compose(
        canonical_spec(
            {"op": "tenant_tag", "source": _spec_of(stream), "prefix": prefix}
        )
    )


def take(stream: WorkloadStream, count: int) -> ComposedStream:
    """The first ``count`` events of ``stream`` (a lazy window)."""
    return build_compose(
        canonical_spec({"op": "take", "source": _spec_of(stream), "count": count})
    )


def until(stream: WorkloadStream, time: float) -> ComposedStream:
    """Every event of ``stream`` at or before simulated time ``time``."""
    return build_compose(
        canonical_spec({"op": "until", "source": _spec_of(stream), "time": time})
    )


# -- declarative specs --------------------------------------------------------
def parse_spec(spec: Any) -> Dict[str, Any]:
    """Normalize a spec argument into its canonical dict form.

    Accepts a mapping, JSON text (must start with ``{``), or a path to
    a JSON file (either a bare spec or a frozen regression case whose
    ``spec`` field holds one).
    """
    if isinstance(spec, Mapping):
        return canonical_spec(spec)
    if not isinstance(spec, str):
        raise ComposeSpecError(f"spec must be a mapping, JSON text, or path, got {type(spec).__name__}")
    text = spec.strip()
    if not text.startswith("{"):
        if not os.path.exists(spec):
            raise ComposeSpecError(f"spec file not found: {spec!r}")
        with open(spec, "r", encoding="utf-8") as handle:
            text = handle.read()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ComposeSpecError(f"spec is not valid JSON: {exc}") from exc
    if not isinstance(data, Mapping):
        raise ComposeSpecError("spec JSON must be an object")
    if "op" not in data and "spec" in data:
        # A frozen regression case: the composition lives under "spec".
        data = data["spec"]
    return canonical_spec(data)


def _require(spec: Mapping[str, Any], op: str, allowed: Sequence[str]) -> None:
    """Reject unknown fields so typos fail loudly instead of silently."""
    unknown = set(spec) - set(allowed) - {"op"}
    if unknown:
        raise ComposeSpecError(
            f"op {op!r} has no field(s) {sorted(unknown)}; "
            f"allowed: {sorted(allowed)}"
        )


def _canonical_params(name: str, params: Mapping[str, Any]) -> Dict[str, float]:
    """Validated scenario overrides with default-valued entries dropped.

    Values are coerced to float (the scenario builders' parameter type),
    and an override equal to the registered default is omitted — so two
    specs describing the same workload canonicalize identically.
    """
    from repro.workload.scenarios import get_scenario

    defaults = get_scenario(name).defaults
    unknown = set(params) - set(defaults)
    if unknown:
        raise ComposeSpecError(
            f"scenario {name!r} has no parameter(s) {sorted(unknown)}; "
            f"available: {sorted(defaults)}"
        )
    out: Dict[str, float] = {}
    for key in sorted(params):
        value = float(params[key])
        if value != float(defaults[key]):
            out[key] = value
    return out


def canonical_spec(spec: Mapping[str, Any]) -> Dict[str, Any]:
    """The canonical (hash-stable) form of a composition spec.

    Normalization rules: defaults are filled in (``seed=42``,
    ``scale=1.0``, ``isolate=True``, ``gap=0.0``), numeric fields are
    coerced to their canonical type, scenario parameter overrides equal
    to the registered default are dropped, and ``timescale`` with
    ``factor == 1`` collapses to its source (it is the identity).  Two
    specs describing the same workload therefore produce the same JSON
    — and the same sweep cell id.
    """
    op = spec.get("op")
    if op == "scenario":
        _require(spec, op, ("name", "seed", "scale", "params"))
        name = spec.get("name")
        if not isinstance(name, str):
            raise ComposeSpecError("scenario spec needs a 'name' string")
        from repro.workload.scenarios import get_scenario

        try:
            get_scenario(name)
        except ValueError as exc:
            raise ComposeSpecError(str(exc)) from exc
        return {
            "op": "scenario",
            "name": name,
            "seed": int(spec.get("seed", 42)),
            "scale": float(spec.get("scale", 1.0)),
            "params": _canonical_params(name, spec.get("params", {})),
        }
    if op in ("overlay", "concat"):
        allowed = ("sources", "isolate") if op == "overlay" else (
            "sources", "isolate", "gap")
        _require(spec, op, allowed)
        sources = spec.get("sources")
        if not isinstance(sources, Sequence) or not sources:
            raise ComposeSpecError(f"{op} spec needs a non-empty 'sources' list")
        out: Dict[str, Any] = {
            "op": op,
            "sources": [canonical_spec(s) for s in sources],
            "isolate": bool(spec.get("isolate", True)),
        }
        if op == "concat":
            gap = float(spec.get("gap", 0.0))
            if gap < 0:
                raise ComposeSpecError("concat gap must be >= 0")
            out["gap"] = gap
        return out
    if op == "timescale":
        _require(spec, op, ("source", "factor"))
        factor = float(spec.get("factor", 1.0))
        if factor <= 0:
            raise ComposeSpecError("timescale factor must be > 0")
        source = canonical_spec(_source_of(spec))
        if factor == 1.0:
            return source  # the identity: collapse for canonical hashing
        return {"op": "timescale", "source": source, "factor": factor}
    if op == "tenant_tag":
        _require(spec, op, ("source", "prefix"))
        prefix = spec.get("prefix")
        if (
            not isinstance(prefix, str)
            or not prefix.startswith("/")
            or prefix.endswith("/")
            or len(prefix) < 2
        ):
            raise ComposeSpecError(
                "tenant_tag prefix must look like '/name' "
                f"(absolute, no trailing slash), got {prefix!r}"
            )
        return {
            "op": "tenant_tag",
            "source": canonical_spec(_source_of(spec)),
            "prefix": prefix,
        }
    if op == "take":
        _require(spec, op, ("source", "count"))
        count = int(spec.get("count", 0))
        if count <= 0:
            raise ComposeSpecError("take count must be a positive integer")
        return {
            "op": "take",
            "source": canonical_spec(_source_of(spec)),
            "count": count,
        }
    if op == "until":
        _require(spec, op, ("source", "time"))
        time = float(spec.get("time", 0.0))
        if time <= 0:
            raise ComposeSpecError("until time must be > 0")
        return {
            "op": "until",
            "source": canonical_spec(_source_of(spec)),
            "time": time,
        }
    raise ComposeSpecError(
        f"unknown composition op {op!r}; expected one of {list(COMPOSE_OPS)}"
    )


def _source_of(spec: Mapping[str, Any]) -> Mapping[str, Any]:
    """The single-source field of a unary op, validated present."""
    source = spec.get("source")
    if not isinstance(source, Mapping):
        raise ComposeSpecError(f"op {spec.get('op')!r} needs a 'source' spec")
    return source


def spec_hash(spec: Mapping[str, Any]) -> str:
    """Content hash of a composition spec (canonicalized first)."""
    from repro.sweep.spec import cell_hash

    return cell_hash(canonical_spec(spec))


def compose_name(spec: Mapping[str, Any]) -> str:
    """A short human-readable label for a composition spec."""
    op = spec["op"]
    if op == "scenario":
        return spec["name"]
    if op in ("overlay", "concat"):
        inner = ",".join(compose_name(s) for s in spec["sources"])
        return f"{op}({inner})"
    if op == "timescale":
        return f"timescale({compose_name(spec['source'])},{spec['factor']:g})"
    if op == "tenant_tag":
        return f"tag({compose_name(spec['source'])},{spec['prefix']})"
    return f"{op}({compose_name(spec['source'])})"


def tenant_prefixes(spec: Mapping[str, Any], outer: str = "") -> List[str]:
    """The namespace prefixes the composed stream's paths live under.

    One entry per isolated overlay source or ``tenant_tag`` (nested
    prefixes concatenate, matching the path rewriting).  A spec with no
    isolation yields no prefixes — every path keeps its scenario
    namespace.  Per-tenant metric attribution keys off this list.
    """
    op = spec["op"]
    if op == "scenario":
        return []
    if op == "overlay" and spec["isolate"]:
        out = []
        for i, source in enumerate(spec["sources"]):
            prefix = f"{outer}/t{i}"
            nested = tenant_prefixes(source, prefix)
            out.extend(nested if nested else [prefix])
        return out
    if op == "concat" and spec["isolate"]:
        out = []
        for i, source in enumerate(spec["sources"]):
            prefix = f"{outer}/c{i}"
            nested = tenant_prefixes(source, prefix)
            out.extend(nested if nested else [prefix])
        return out
    if op in ("overlay", "concat"):
        out = []
        for source in spec["sources"]:
            out.extend(tenant_prefixes(source, outer))
        return out
    if op == "tenant_tag":
        prefix = f"{outer}{spec['prefix']}"
        nested = tenant_prefixes(spec["source"], prefix)
        return nested if nested else [prefix]
    return tenant_prefixes(spec["source"], outer)


# -- building streams from specs ----------------------------------------------
def _leaf_events(spec: Mapping[str, Any]):
    """A factory for a scenario leaf's (renumber-ready) event iterator."""
    from repro.workload.scenarios import build_scenario

    def factory() -> Iterator[StreamEvent]:
        stream = build_scenario(
            spec["name"], seed=spec["seed"], scale=spec["scale"], **spec["params"]
        )
        return _transformed(stream.events())

    return factory


def _leaf_duration(spec: Mapping[str, Any]) -> float:
    """Nominal duration of a scenario leaf (no events generated)."""
    from repro.workload.scenarios import build_scenario

    return build_scenario(
        spec["name"], seed=spec["seed"], scale=spec["scale"], **spec["params"]
    ).duration


def _duration_of(spec: Mapping[str, Any]) -> float:
    """Nominal duration of a composed spec, computed structurally."""
    op = spec["op"]
    if op == "scenario":
        return _leaf_duration(spec)
    if op == "overlay":
        return max(_duration_of(s) for s in spec["sources"])
    if op == "concat":
        durations = [_duration_of(s) for s in spec["sources"]]
        return sum(durations) + spec["gap"] * (len(durations) - 1)
    if op == "timescale":
        return _duration_of(spec["source"]) * spec["factor"]
    if op == "until":
        return min(_duration_of(spec["source"]), spec["time"])
    # tenant_tag / take keep the source's nominal window.
    return _duration_of(spec["source"])


def _factory_of(spec: Mapping[str, Any]):
    """A fresh-iterator factory for ``spec`` (the lazy build path)."""
    op = spec["op"]
    if op == "scenario":
        return _leaf_events(spec)
    if op == "overlay":
        sources = spec["sources"]
        factories = [_factory_of(s) for s in sources]
        prefixes = [
            f"/t{i}" if spec["isolate"] else "" for i in range(len(sources))
        ]

        def factory() -> Iterator[StreamEvent]:
            return merge_timed_sources(
                (0.0, _transformed(f(), prefix=p))
                for f, p in zip(factories, prefixes)
            )

        return factory
    if op == "concat":
        sources = spec["sources"]
        factories = [_factory_of(s) for s in sources]
        durations = [_duration_of(s) for s in sources]
        offsets = list(
            itertools.accumulate(
                [0.0] + [d + spec["gap"] for d in durations[:-1]]
            )
        )
        prefixes = [
            f"/c{i}" if spec["isolate"] else "" for i in range(len(sources))
        ]

        def factory() -> Iterator[StreamEvent]:
            def shifted(i: int) -> Iterator[StreamEvent]:
                # Clip each source at its nominal duration so a source
                # overrunning its window cannot run backward in time
                # relative to its successor's offset.
                return _transformed(
                    clip(factories[i](), durations[i]),
                    prefix=prefixes[i],
                    offset=offsets[i],
                )

            return merge_timed_sources(
                (offsets[i], shifted(i)) for i in range(len(factories))
            )

        return factory
    if op == "timescale":
        inner = _factory_of(spec["source"])
        factor = spec["factor"]

        def factory() -> Iterator[StreamEvent]:
            return _transformed(inner(), factor=factor)

        return factory
    if op == "tenant_tag":
        inner = _factory_of(spec["source"])
        prefix = spec["prefix"]

        def factory() -> Iterator[StreamEvent]:
            return _transformed(inner(), prefix=prefix)

        return factory
    if op == "take":
        inner = _factory_of(spec["source"])
        count = spec["count"]

        def factory() -> Iterator[StreamEvent]:
            return itertools.islice(inner(), count)

        return factory
    # until
    inner = _factory_of(spec["source"])
    bound = spec["time"]

    def factory() -> Iterator[StreamEvent]:
        return itertools.takewhile(
            lambda event: event_time(event) <= bound, inner()
        )

    return factory


def build_compose(spec: Any, name: Optional[str] = None) -> ComposedStream:
    """Build the composed stream a spec describes.

    ``spec`` is anything :func:`parse_spec` accepts.  The result is lazy
    and seeded: iterating it twice yields the identical event sequence,
    and the same canonical spec always builds the same workload.
    """
    canonical = parse_spec(spec)
    return ComposedStream(
        name or compose_name(canonical),
        _duration_of(canonical),
        _factory_of(canonical),
        canonical,
    )
