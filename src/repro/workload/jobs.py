"""Trace data model: file creations and MapReduce-style jobs.

A :class:`Trace` is an ordered sequence of two event kinds — create a
file, submit a job — plus static summary statistics.  Traces are either
synthesized (:mod:`repro.workload.synthesis`) or built by hand in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Tuple, Union

import numpy as np

from repro.workload.bins import BINS, SizeBin, bin_for_size


@dataclass(frozen=True)
class FileCreation:
    """Create ``path`` of ``size`` bytes at ``time`` (data-load event)."""

    path: str
    size: int
    time: float


@dataclass(frozen=True)
class FileDeletion:
    """Delete ``path`` at ``time`` (dataset retirement).

    Deletions only occur in streamed scenarios (e.g. the ``pipeline``
    dataset lifecycle); a materialized :class:`Trace` has no deletion
    list, so streams containing deletions cannot be materialized.
    """

    path: str
    time: float


@dataclass(frozen=True)
class OutputSpec:
    """One output file a job writes on completion."""

    path: str
    size: int


@dataclass
class TraceJob:
    """One job: reads its inputs, computes, writes its outputs."""

    job_id: int
    submit_time: float
    input_paths: List[str]
    input_size: int
    outputs: List[OutputSpec] = field(default_factory=list)
    #: CPU seconds consumed per input byte (models per-job compute skew).
    cpu_seconds_per_byte: float = 0.0

    @property
    def size_bin(self) -> SizeBin:
        return bin_for_size(self.input_size)

    @property
    def output_size(self) -> int:
        return sum(o.size for o in self.outputs)


TraceEvent = Union[FileCreation, TraceJob]

#: Everything a workload stream may yield; a superset of TraceEvent.
StreamEvent = Union[FileCreation, TraceJob, FileDeletion]

#: Same-timestamp ordering of stream events: files come into existence
#: before the jobs that read them, and retire only after the reads.
_EVENT_ORDER = {FileCreation: 0, TraceJob: 1, FileDeletion: 2}


def event_time(event: StreamEvent) -> float:
    """The simulation time at which ``event`` takes effect."""
    if isinstance(event, TraceJob):
        return event.submit_time
    return event.time


def event_sort_key(event: StreamEvent) -> Tuple[float, int]:
    """Total order for merging streams: (time, kind) with creations
    before jobs before deletions on ties — the same tie rule as
    :meth:`Trace.events`."""
    return (event_time(event), _EVENT_ORDER[type(event)])


@dataclass
class Trace:
    """A complete workload: file creations plus jobs, time-ordered."""

    name: str
    duration: float
    creations: List[FileCreation] = field(default_factory=list)
    jobs: List[TraceJob] = field(default_factory=list)

    def events(self) -> Iterator[TraceEvent]:
        """All events merged in time order (creations before jobs on ties)."""
        creations = sorted(self.creations, key=lambda c: c.time)
        jobs = sorted(self.jobs, key=lambda j: j.submit_time)
        ci = ji = 0
        while ci < len(creations) or ji < len(jobs):
            if ji >= len(jobs) or (
                ci < len(creations) and creations[ci].time <= jobs[ji].submit_time
            ):
                yield creations[ci]
                ci += 1
            else:
                yield jobs[ji]
                ji += 1

    # -- static statistics (Sec 7.1 / Fig 5) --------------------------------
    @property
    def file_count(self) -> int:
        return len(self.creations) + sum(len(j.outputs) for j in self.jobs)

    @property
    def total_bytes(self) -> int:
        created = sum(c.size for c in self.creations)
        written = sum(j.output_size for j in self.jobs)
        return created + written

    def access_counts(self) -> Dict[str, int]:
        """Number of job reads per file path (0 for never-read files)."""
        counts: Dict[str, int] = {c.path: 0 for c in self.creations}
        for job in self.jobs:
            for output in job.outputs:
                counts.setdefault(output.path, 0)
        for job in self.jobs:
            for path in job.input_paths:
                counts[path] = counts.get(path, 0) + 1
        return counts

    def never_read_fraction(self) -> float:
        counts = self.access_counts()
        if not counts:
            return 0.0
        return sum(1 for c in counts.values() if c == 0) / len(counts)

    def frequently_read_fraction(self, threshold: int = 5) -> float:
        """Fraction of files accessed more than ``threshold`` times."""
        counts = self.access_counts()
        if not counts:
            return 0.0
        return sum(1 for c in counts.values() if c > threshold) / len(counts)

    def jobs_per_bin(self) -> Dict[str, int]:
        result = {b.name: 0 for b in BINS}
        for job in self.jobs:
            result[job.size_bin.name] += 1
        return result

    def io_per_bin(self) -> Dict[str, int]:
        """Input + output bytes generated by the jobs of each bin."""
        result = {b.name: 0 for b in BINS}
        for job in self.jobs:
            result[job.size_bin.name] += job.input_size + job.output_size
        return result

    def file_sizes(self) -> List[int]:
        sizes = [c.size for c in self.creations]
        sizes.extend(o.size for j in self.jobs for o in j.outputs)
        return sizes

    def job_sizes(self) -> List[int]:
        return [j.input_size for j in self.jobs]

    # -- CDFs for Fig 5 ---------------------------------------------------------
    @staticmethod
    def cdf(values: List[int]) -> Tuple[np.ndarray, np.ndarray]:
        """Empirical CDF: (sorted values, cumulative probability)."""
        if not values:
            return np.array([]), np.array([])
        data = np.sort(np.asarray(values, dtype=float))
        prob = np.arange(1, len(data) + 1) / len(data)
        return data, prob
