"""DFSIO-style sequential I/O workload (paper Sec 3.1, Fig 2).

DFSIO writes a set of large files and then reads them back, reporting
throughput.  The paper writes and reads 84GB on the 12-node cluster and
plots average per-node throughput as a function of cumulative data
volume, which exposes the moment the aggregate memory tier fills (~42GB).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.common.units import GB


@dataclass(frozen=True)
class DfsioSpec:
    """Total volume and per-file size of a DFSIO run."""

    total_bytes: int = 84 * GB
    file_size: int = 1 * GB
    path_prefix: str = "/dfsio"

    @property
    def num_files(self) -> int:
        return self.total_bytes // self.file_size

    def file_paths(self) -> List[str]:
        return [
            f"{self.path_prefix}/part-{i:05d}" for i in range(self.num_files)
        ]
