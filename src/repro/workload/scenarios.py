"""Named workload scenarios: a registry of parameterized stream builders.

The FB/CMU synthesizers reproduce the paper's two production traces, but
the adaptive-policy machinery should hold up against every load shape a
production cluster sees.  Each scenario here is a **lazy, seeded
generator** (see :mod:`repro.workload.streams`) with a characteristic
access pattern that stresses tiering differently:

``fb`` / ``cmu``
    The paper's derived workloads behind the stream protocol
    (compat wrappers over :class:`~repro.workload.synthesis.TraceSynthesizer`).
``diurnal``
    Multi-tenant day/night cycles: phase-shifted sinusoidal arrival
    rates per tenant.  Tier demand swings hourly, so static placements
    waste the premium tiers off-peak.
``flashcrowd``
    Steady background traffic punctuated by hot-set spikes: a handful of
    files absorb most reads for a short window.  Rewards fast upgrades
    and punishes slow downgrade recovery.
``mlscan``
    Scan-heavy ML training: every epoch re-reads the full shard set in a
    shuffled order plus a small hot evaluation set.  Cyclic re-reads
    with epoch-scale gaps are the anti-LRU pattern.
``oscillating``
    The hot set shifts along the file pool every phase (the classic
    cache-simulator "oscillating" workload): temporal locality is
    strong within a phase and worthless across phases.
``pipeline``
    Dataset lifecycle create→hot→cool→delete: new datasets arrive on a
    cadence, burn bright, cool off, and retire.  Exercises deletions and
    bounded-memory streaming (sources enter and leave the merge).
``static`` / ``dynamic`` / ``phaseshift``
    The capsa trace-generator family: a stationary hot/scan mixture
    with a sequential scan cursor (``static``); shuffled disjoint
    hot-region jumps with an interleaved cold-pool scan cursor
    (``dynamic``); and abrupt A/B working-set flips where the history a
    policy learns in one phase is poison in the next (``phaseshift``).

Scenarios compose: :mod:`repro.workload.compose` closes the registry
under overlay/concat/timescale/tenant_tag/take/until combinators.

Every builder takes ``(seed, scale, **params)`` and returns a
:class:`WorkloadStream`.  ``scale`` stretches the *length* of the
generated scenarios (duration at constant rate — a 10x run streams 10x
the events in the same memory); for ``fb``/``cmu`` it scales job count
and bytes, matching :func:`~repro.workload.profiles.scaled_profile`.
All randomness flows
through ``numpy`` generators seeded from ``seed``, so
``build_scenario(name, seed=s, **params)`` is a pure function of its
arguments: the registry round-trips name + params to the identical
event sequence.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence

import numpy as np

from repro.common.rng import make_rng, zipf_probabilities
from repro.common.units import HOURS, MB, MINUTES
from repro.workload.jobs import (
    FileCreation,
    FileDeletion,
    OutputSpec,
    StreamEvent,
    TraceJob,
)
from repro.workload.profiles import CMU_PROFILE, FB_PROFILE
from repro.workload.streams import (
    GeneratedStream,
    SynthesizedStream,
    WorkloadStream,
    clip,
    merge_events,
    merge_timed_sources,
)

DAY = 24 * HOURS


# -- registry ----------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One registered scenario: builder plus parameter documentation."""

    name: str
    description: str
    defaults: Mapping[str, float]
    builder: Callable[..., WorkloadStream]

    def build(
        self, seed: int = 42, scale: float = 1.0, **overrides: float
    ) -> WorkloadStream:
        unknown = set(overrides) - set(self.defaults)
        if unknown:
            raise ValueError(
                f"scenario {self.name!r} has no parameter(s) "
                f"{sorted(unknown)}; available: {sorted(self.defaults)}"
            )
        params = {**self.defaults, **overrides}
        return self.builder(seed=seed, scale=scale, **params)


SCENARIOS: Dict[str, Scenario] = {}


def register_scenario(
    name: str, description: str, **defaults: float
) -> Callable[[Callable[..., WorkloadStream]], Callable[..., WorkloadStream]]:
    """Decorator: register ``builder(seed, scale, **params)`` under ``name``."""

    def decorate(builder: Callable[..., WorkloadStream]):
        SCENARIOS[name] = Scenario(name, description, defaults, builder)
        return builder

    return decorate


def scenario_names() -> List[str]:
    return sorted(SCENARIOS)


def get_scenario(name: str) -> Scenario:
    if name not in SCENARIOS:
        raise ValueError(f"unknown scenario {name!r}; available: {scenario_names()}")
    return SCENARIOS[name]


def build_scenario(
    name: str, seed: int = 42, scale: float = 1.0, **params: float
) -> WorkloadStream:
    """Instantiate a registered scenario (the one public entry point)."""
    return get_scenario(name).build(seed=seed, scale=scale, **params)


# -- shared generator plumbing ----------------------------------------------
class _FilePool:
    """A fixed pool of files, created lazily on first read.

    Sizes are drawn once at pool construction (part of the stream's
    seeded state); a file's creation event is emitted at the timestamp
    of its first read — the same-time tie rule guarantees the creation
    is applied before the job that reads it.
    """

    def __init__(self, prefix: str, sizes: Sequence[int]) -> None:
        self.prefix = prefix
        self.sizes = [int(s) for s in sizes]
        self._created = [False] * len(self.sizes)

    def __len__(self) -> int:
        return len(self.sizes)

    def path(self, index: int) -> str:
        return f"{self.prefix}/f{index:05d}"

    def read(self, indices: Sequence[int], t: float):
        """Return ``(creations, paths, total_bytes)`` for a read at ``t``."""
        creations: List[FileCreation] = []
        paths: List[str] = []
        total = 0
        for index in indices:
            index = int(index)
            path = self.path(index)
            if path in paths:
                continue
            if not self._created[index]:
                self._created[index] = True
                creations.append(FileCreation(path, self.sizes[index], t))
            paths.append(path)
            total += self.sizes[index]
        return creations, paths, total


def _log_uniform(rng: np.random.Generator, low: float, high: float) -> float:
    return float(np.exp(rng.uniform(np.log(low), np.log(high))))


def _file_sizes(
    rng: np.random.Generator, count: int, low_mb: float, high_mb: float
) -> np.ndarray:
    """Heavy-tailed (log-uniform) per-file sizes in bytes."""
    return np.exp(
        rng.uniform(np.log(low_mb * MB), np.log(high_mb * MB), size=count)
    ).astype(np.int64)


class _JobFactory:
    """Builds jobs with scenario-scoped output paths and CPU skew."""

    def __init__(self, rng: np.random.Generator, out_prefix: str) -> None:
        self._rng = rng
        self._out_prefix = out_prefix
        self._outputs = 0

    def job(
        self,
        t: float,
        paths: List[str],
        size: int,
        output_prob: float = 0.25,
    ) -> TraceJob:
        rng = self._rng
        outputs: List[OutputSpec] = []
        if output_prob > 0 and rng.random() < output_prob:
            ratio = _log_uniform(rng, 0.05, 0.5)
            out_size = max(int(size * ratio), 1 * MB)
            outputs.append(
                OutputSpec(f"{self._out_prefix}/out{self._outputs:05d}", out_size)
            )
            self._outputs += 1
        return TraceJob(
            job_id=-1,
            submit_time=t,
            input_paths=paths,
            input_size=size,
            outputs=outputs,
            cpu_seconds_per_byte=_log_uniform(rng, 0.01, 0.04) / MB,
        )


def _poisson_times(
    rng: np.random.Generator,
    rate_max: float,
    duration: float,
    rate_fn: Optional[Callable[[float], float]] = None,
    start: float = 0.0,
) -> Iterator[float]:
    """Poisson arrivals over ``[start, start+duration)``.

    With ``rate_fn`` the process is non-homogeneous (thinning against
    the ``rate_max`` envelope); otherwise homogeneous at ``rate_max``.
    """
    t = start
    end = start + duration
    while True:
        t += rng.exponential(1.0 / rate_max)
        if t >= end:
            return
        if rate_fn is None or rng.random() * rate_max <= rate_fn(t):
            yield t


# -- classic workloads -------------------------------------------------------
@register_scenario(
    "fb",
    "The paper's derived Facebook workload (temporal locality, bursty "
    "re-reads) behind the stream protocol.",
    drift=1,
)
def _fb_scenario(seed: int, scale: float, drift: float) -> WorkloadStream:
    return SynthesizedStream(FB_PROFILE, seed=seed, drift=bool(drift), scale=scale)


@register_scenario(
    "cmu",
    "The paper's derived CMU OpenCloud workload (cyclic scientific "
    "re-reads, the anti-LRU pattern) behind the stream protocol.",
    drift=1,
)
def _cmu_scenario(seed: int, scale: float, drift: float) -> WorkloadStream:
    return SynthesizedStream(CMU_PROFILE, seed=seed, drift=bool(drift), scale=scale)


# -- diurnal -----------------------------------------------------------------
@register_scenario(
    "diurnal",
    "Multi-tenant day/night load: phase-shifted sinusoidal arrival rates, "
    "one Zipf file pool per tenant.",
    tenants=3,
    days=1,
    jobs_per_day=320,
    pool_files=120,
    file_mb_low=8,
    file_mb_high=1024,
    amplitude=0.85,
    skew=0.7,
)
def _diurnal(
    seed: int,
    scale: float,
    tenants: float,
    days: float,
    jobs_per_day: float,
    pool_files: float,
    file_mb_low: float,
    file_mb_high: float,
    amplitude: float,
    skew: float,
) -> WorkloadStream:
    tenants = max(1, int(tenants))
    duration = days * DAY * scale

    def factory() -> Iterator[StreamEvent]:
        def tenant_events(tenant: int) -> Iterator[StreamEvent]:
            rng = make_rng([seed, tenant])
            pool = _FilePool(
                f"/data/diurnal/t{tenant}",
                _file_sizes(rng, int(pool_files), file_mb_low, file_mb_high),
            )
            jobs = _JobFactory(rng, f"/out/diurnal/t{tenant}")
            popularity = zipf_probabilities(len(pool), skew)
            base = jobs_per_day / DAY
            phase = 2.0 * math.pi * tenant / tenants

            def rate(t: float) -> float:
                # Peak mid-"day" for tenant 0; other tenants shifted —
                # global demand stays lumpy, per-tenant demand swings.
                return base * (
                    1.0 + amplitude * math.sin(2.0 * math.pi * t / DAY + phase)
                )

            rate_max = base * (1.0 + amplitude)
            for t in _poisson_times(rng, rate_max, duration, rate_fn=rate):
                k = int(rng.integers(1, 4))
                picks = rng.choice(len(pool), size=k, replace=False, p=popularity)
                creations, paths, size = pool.read(picks, t)
                yield from creations
                yield jobs.job(t, paths, size)

        return merge_events(*[tenant_events(i) for i in range(tenants)])

    return GeneratedStream("diurnal", duration, factory)


# -- flashcrowd --------------------------------------------------------------
@register_scenario(
    "flashcrowd",
    "Steady Zipf background traffic with hot-set spikes: short windows "
    "where a few files absorb a multiplied arrival rate.",
    hours=6,
    jobs_per_hour=140,
    crowds=4,
    crowd_minutes=20,
    crowd_boost=8,
    hot_files=4,
    pool_files=200,
    file_mb_low=8,
    file_mb_high=1024,
    skew=0.6,
)
def _flashcrowd(
    seed: int,
    scale: float,
    hours: float,
    jobs_per_hour: float,
    crowds: float,
    crowd_minutes: float,
    crowd_boost: float,
    hot_files: float,
    pool_files: float,
    file_mb_low: float,
    file_mb_high: float,
    skew: float,
) -> WorkloadStream:
    duration = hours * HOURS * scale
    n_crowds = max(0, int(round(crowds * scale)))

    def factory() -> Iterator[StreamEvent]:
        rng = make_rng([seed, 0])
        pool = _FilePool(
            "/data/flashcrowd",
            _file_sizes(rng, int(pool_files), file_mb_low, file_mb_high),
        )
        jobs = _JobFactory(rng, "/out/flashcrowd")
        popularity = zipf_probabilities(len(pool), skew)
        window = crowd_minutes * MINUTES
        # Crowd windows and their hot sets are drawn up front (O(crowds)
        # state), then arrivals are thinned against the boosted envelope.
        starts = np.sort(rng.uniform(0.0, max(duration - window, 1.0), n_crowds))
        hot_sets = [
            rng.choice(len(pool), size=int(hot_files), replace=False)
            for _ in range(n_crowds)
        ]
        base = jobs_per_hour / HOURS

        def active_crowd(t: float) -> int:
            # O(crowds) scan: crowd counts are tiny and state stays flat.
            for i, s in enumerate(starts):
                if s <= t < s + window:
                    return i
            return -1

        def rate(t: float) -> float:
            return base * (crowd_boost if active_crowd(t) >= 0 else 1.0)

        for t in _poisson_times(rng, base * crowd_boost, duration, rate_fn=rate):
            crowd = active_crowd(t)
            if crowd >= 0 and rng.random() < 0.85:
                # Crowd read: everyone piles onto the same few files.
                k = min(int(rng.integers(1, 3)), len(hot_sets[crowd]))
                picks = rng.choice(hot_sets[crowd], size=k, replace=False)
            else:
                k = int(rng.integers(1, 3))
                picks = rng.choice(len(pool), size=k, replace=False, p=popularity)
            creations, paths, size = pool.read(picks, t)
            yield from creations
            yield jobs.job(t, paths, size)

    return GeneratedStream("flashcrowd", duration, factory)


# -- mlscan ------------------------------------------------------------------
@register_scenario(
    "mlscan",
    "Scan-heavy ML training: each epoch re-reads the full shard set in "
    "shuffled order plus a hot evaluation set — cyclic re-reads with "
    "epoch-scale gaps (the anti-LRU pattern).",
    epochs=8,
    shards=64,
    shard_mb=256,
    batch_shards=4,
    step_seconds=45,
    eval_files=4,
    eval_mb=64,
    epoch_pause_seconds=300,
)
def _mlscan(
    seed: int,
    scale: float,
    epochs: float,
    shards: float,
    shard_mb: float,
    batch_shards: float,
    step_seconds: float,
    eval_files: float,
    eval_mb: float,
    epoch_pause_seconds: float,
) -> WorkloadStream:
    n_epochs = max(1, int(round(epochs * scale)))
    n_shards = max(1, int(shards))
    batch = max(1, int(batch_shards))
    steps = (n_shards + batch - 1) // batch
    epoch_span = steps * step_seconds + epoch_pause_seconds
    duration = n_epochs * epoch_span

    def factory() -> Iterator[StreamEvent]:
        rng = make_rng([seed, 0])
        # Shards are uniform-sized (dataset chunks); eval set is small.
        shard_pool = _FilePool("/data/mlscan/shards", [int(shard_mb * MB)] * n_shards)
        eval_pool = _FilePool(
            "/data/mlscan/eval", [int(eval_mb * MB)] * int(eval_files)
        )
        jobs = _JobFactory(rng, "/out/mlscan")
        for epoch in range(n_epochs):
            t0 = epoch * epoch_span
            order = rng.permutation(n_shards)
            for step in range(steps):
                t = t0 + step * step_seconds + float(
                    rng.uniform(0.0, 0.25 * step_seconds)
                )
                picks = order[step * batch : (step + 1) * batch]
                creations, paths, size = shard_pool.read(picks, t)
                yield from creations
                # Training steps read-only: checkpoints come from the
                # eval job below.
                yield jobs.job(t, paths, size, output_prob=0.0)
            t_eval = t0 + steps * step_seconds + float(
                rng.uniform(0.0, 0.5 * epoch_pause_seconds)
            )
            creations, paths, size = eval_pool.read(range(len(eval_pool)), t_eval)
            yield from creations
            yield jobs.job(t_eval, paths, size, output_prob=1.0)

    return GeneratedStream("mlscan", duration, factory)


# -- oscillating -------------------------------------------------------------
@register_scenario(
    "oscillating",
    "Phase-shifting hot set: strong temporal locality within a phase, "
    "none across phases — the hot window slides along the pool every "
    "phase_minutes.",
    hours=6,
    jobs_per_minute=2,
    pool_files=240,
    hot_files=24,
    phase_minutes=30,
    hot_prob=0.85,
    file_mb_low=8,
    file_mb_high=512,
)
def _oscillating(
    seed: int,
    scale: float,
    hours: float,
    jobs_per_minute: float,
    pool_files: float,
    hot_files: float,
    phase_minutes: float,
    hot_prob: float,
    file_mb_low: float,
    file_mb_high: float,
) -> WorkloadStream:
    duration = hours * HOURS * scale
    n_pool = int(pool_files)
    n_hot = max(1, int(hot_files))

    def factory() -> Iterator[StreamEvent]:
        rng = make_rng([seed, 0])
        pool = _FilePool(
            "/data/oscillating",
            _file_sizes(rng, n_pool, file_mb_low, file_mb_high),
        )
        jobs = _JobFactory(rng, "/out/oscillating")
        phase_span = phase_minutes * MINUTES
        for t in _poisson_times(rng, jobs_per_minute / MINUTES, duration):
            phase = int(t // phase_span)
            window_start = (phase * n_hot) % n_pool
            k = int(rng.integers(1, 3))
            if rng.random() < hot_prob:
                offsets = rng.choice(n_hot, size=min(k, n_hot), replace=False)
                picks = [(window_start + int(o)) % n_pool for o in offsets]
            else:
                picks = rng.choice(n_pool, size=k, replace=False)
            creations, paths, size = pool.read(picks, t)
            yield from creations
            yield jobs.job(t, paths, size)

    return GeneratedStream("oscillating", duration, factory)


# -- pipeline ----------------------------------------------------------------
@register_scenario(
    "pipeline",
    "Dataset lifecycle create→hot→cool→delete: datasets arrive on a "
    "cadence, absorb heavy reads while fresh, cool off, and retire "
    "(file deletions) — sources enter and leave the stream merge, so "
    "memory tracks *active* datasets only.",
    hours=6,
    cadence_minutes=20,
    dataset_files=6,
    file_mb_low=64,
    file_mb_high=512,
    hot_minutes=40,
    hot_jobs_per_minute=1.5,
    cool_minutes=60,
    cool_jobs=4,
    ttl_minutes=150,
)
def _pipeline(
    seed: int,
    scale: float,
    hours: float,
    cadence_minutes: float,
    dataset_files: float,
    file_mb_low: float,
    file_mb_high: float,
    hot_minutes: float,
    hot_jobs_per_minute: float,
    cool_minutes: float,
    cool_jobs: float,
    ttl_minutes: float,
) -> WorkloadStream:
    duration = hours * HOURS * scale
    cadence = cadence_minutes * MINUTES
    # At least one dataset even when the (scaled) window is shorter than
    # the cadence: its events are clipped at ``duration``.
    n_datasets = max(1, int(duration // cadence))

    def factory() -> Iterator[StreamEvent]:
        def dataset_events(index: int, start: float) -> Iterator[StreamEvent]:
            rng = make_rng([seed, index])
            pool = _FilePool(
                f"/data/pipeline/d{index:04d}",
                _file_sizes(rng, int(dataset_files), file_mb_low, file_mb_high),
            )
            jobs = _JobFactory(rng, f"/out/pipeline/d{index:04d}")
            # Ingest: the whole dataset lands shortly after ``start``.
            creations, _, _ = pool.read(range(len(pool)), start)
            yield from creations
            hot_end = start + hot_minutes * MINUTES
            read_start = start + 30.0
            for t in _poisson_times(
                rng,
                hot_jobs_per_minute / MINUTES,
                hot_end - read_start,
                start=read_start,
            ):
                k = int(rng.integers(1, min(4, len(pool)) + 1))
                picks = rng.choice(len(pool), size=k, replace=False)
                _, paths, size = pool.read(picks, t)
                yield jobs.job(t, paths, size)
            # Cooling: a few stragglers re-read parts of the dataset.
            cool_end = hot_end + cool_minutes * MINUTES
            cool_times = np.sort(rng.uniform(hot_end, cool_end, int(cool_jobs)))
            for t in cool_times:
                k = int(rng.integers(1, min(3, len(pool)) + 1))
                picks = rng.choice(len(pool), size=k, replace=False)
                _, paths, size = pool.read(picks, float(t))
                yield jobs.job(float(t), paths, size, output_prob=0.1)
            # Retirement: the dataset is deleted wholesale at its TTL —
            # never before the cool phase ends, so a short ttl cannot
            # emit deletions out of time order (or ahead of reads).
            expiry = max(start + ttl_minutes * MINUTES, cool_end)
            for i in range(len(pool)):
                yield FileDeletion(pool.path(i), expiry)

        def sources():
            for index in range(n_datasets):
                start = index * cadence
                yield start, dataset_events(index, start)

        return clip(merge_timed_sources(sources()), duration)

    return GeneratedStream("pipeline", duration, factory)


# -- capsa generator family ---------------------------------------------------
@register_scenario(
    "static",
    "Capsa-family static mix: a fixed Zipf-weighted hot set absorbs "
    "hot_ratio of the reads while the rest advance a sequential scan "
    "cursor over the cold segment (round-robin full sweeps) — a "
    "stationary pattern where the right tier split never changes.",
    hours=4,
    jobs_per_minute=2.5,
    hot_files=32,
    scan_files=160,
    hot_ratio=0.75,
    hot_skew=0.8,
    file_mb_low=16,
    file_mb_high=512,
)
def _static(
    seed: int,
    scale: float,
    hours: float,
    jobs_per_minute: float,
    hot_files: float,
    scan_files: float,
    hot_ratio: float,
    hot_skew: float,
    file_mb_low: float,
    file_mb_high: float,
) -> WorkloadStream:
    duration = hours * HOURS * scale
    n_hot = max(1, int(hot_files))
    n_scan = max(1, int(scan_files))

    def factory() -> Iterator[StreamEvent]:
        rng = make_rng([seed, 0])
        pool = _FilePool(
            "/data/static",
            _file_sizes(rng, n_hot + n_scan, file_mb_low, file_mb_high),
        )
        jobs = _JobFactory(rng, "/out/static")
        hot_popularity = zipf_probabilities(n_hot, hot_skew)
        cursor = 0
        for t in _poisson_times(rng, jobs_per_minute / MINUTES, duration):
            if rng.random() < hot_ratio:
                k = min(int(rng.integers(1, 3)), n_hot)
                picks = rng.choice(n_hot, size=k, replace=False, p=hot_popularity)
            else:
                # Sequential scan: the cursor walks the cold segment
                # round-robin, the classic cache-pollution pattern.
                picks = [n_hot + cursor % n_scan]
                cursor += 1
            creations, paths, size = pool.read(picks, t)
            yield from creations
            yield jobs.job(t, paths, size)

    return GeneratedStream("static", duration, factory)


@register_scenario(
    "dynamic",
    "Capsa-family dynamic mix: the hot set jumps between shuffled "
    "disjoint pool regions every phase while a sequential scan cursor "
    "interleaves cold-pool sweeps — locality is real but keeps moving, "
    "so placements trained on the last phase mispredict the next.",
    hours=4,
    jobs_per_minute=2.5,
    phases=8,
    hot_files=24,
    pool_files=240,
    hot_prob=0.8,
    hot_skew=0.6,
    file_mb_low=16,
    file_mb_high=512,
)
def _dynamic(
    seed: int,
    scale: float,
    hours: float,
    jobs_per_minute: float,
    phases: float,
    hot_files: float,
    pool_files: float,
    hot_prob: float,
    hot_skew: float,
    file_mb_low: float,
    file_mb_high: float,
) -> WorkloadStream:
    duration = hours * HOURS * scale
    n_pool = max(2, int(pool_files))
    n_hot = max(1, min(int(hot_files), n_pool - 1))
    n_phases = max(1, int(phases))
    phase_span = duration / n_phases

    def factory() -> Iterator[StreamEvent]:
        rng = make_rng([seed, 0])
        pool = _FilePool(
            "/data/dynamic",
            _file_sizes(rng, n_pool, file_mb_low, file_mb_high),
        )
        jobs = _JobFactory(rng, "/out/dynamic")
        hot_popularity = zipf_probabilities(n_hot, hot_skew)
        # Hot regions are disjoint slices of the pool, visited in a
        # seeded shuffled order: successive phases share no hot files
        # (unlike ``oscillating``'s deterministic sliding window).
        n_regions = max(1, n_pool // n_hot)
        region_order = rng.permutation(n_regions)
        cursor = 0
        for t in _poisson_times(rng, jobs_per_minute / MINUTES, duration):
            phase = min(int(t // phase_span), n_phases - 1)
            region = int(region_order[phase % n_regions])
            if rng.random() < hot_prob:
                k = min(int(rng.integers(1, 3)), n_hot)
                offsets = rng.choice(n_hot, size=k, replace=False, p=hot_popularity)
                picks = [(region * n_hot + int(o)) % n_pool for o in offsets]
            else:
                picks = [cursor % n_pool]
                cursor += 1
            creations, paths, size = pool.read(picks, t)
            yield from creations
            yield jobs.job(t, paths, size)

    return GeneratedStream("dynamic", duration, factory)


@register_scenario(
    "phaseshift",
    "Capsa-family phase shift: `sets` disjoint working sets take turns "
    "being essentially the whole load, flipping abruptly every "
    "period_minutes — the adversarial A/B oscillation that punishes "
    "history-driven policies hardest right after each flip.",
    hours=4,
    jobs_per_minute=2.5,
    sets=2,
    set_files=40,
    period_minutes=25,
    focus=0.95,
    file_mb_low=16,
    file_mb_high=512,
)
def _phaseshift(
    seed: int,
    scale: float,
    hours: float,
    jobs_per_minute: float,
    sets: float,
    set_files: float,
    period_minutes: float,
    focus: float,
    file_mb_low: float,
    file_mb_high: float,
) -> WorkloadStream:
    duration = hours * HOURS * scale
    n_sets = max(1, int(sets))
    n_set = max(1, int(set_files))
    n_pool = n_sets * n_set

    def factory() -> Iterator[StreamEvent]:
        rng = make_rng([seed, 0])
        pool = _FilePool(
            "/data/phaseshift",
            _file_sizes(rng, n_pool, file_mb_low, file_mb_high),
        )
        jobs = _JobFactory(rng, "/out/phaseshift")
        period = period_minutes * MINUTES
        for t in _poisson_times(rng, jobs_per_minute / MINUTES, duration):
            active = int(t // period) % n_sets
            k = int(rng.integers(1, 3))
            if rng.random() < focus:
                offsets = rng.choice(n_set, size=min(k, n_set), replace=False)
                picks = [active * n_set + int(o) for o in offsets]
            else:
                picks = rng.choice(n_pool, size=min(k, n_pool), replace=False)
            creations, paths, size = pool.read(picks, t)
            yield from creations
            yield jobs.job(t, paths, size)

    return GeneratedStream("phaseshift", duration, factory)
