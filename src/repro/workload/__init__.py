"""Workload substrate: FB/CMU trace synthesis and DFSIO.

The original Facebook and CMU OpenCloud traces are proprietary;
:mod:`repro.workload.synthesis` regenerates workloads from every
statistic the paper publishes about them (see DESIGN.md for the
substitution rationale).
"""

from repro.workload.bins import BINS, BIN_NAMES, SizeBin, bin_for_size
from repro.workload.dfsio import DfsioSpec
from repro.workload.jobs import FileCreation, OutputSpec, Trace, TraceJob
from repro.workload.profiles import (
    CMU_PROFILE,
    FB_PROFILE,
    PROFILES,
    WorkloadProfile,
    scaled_profile,
)
from repro.workload.synthesis import TraceSynthesizer, synthesize_trace

__all__ = [
    "BINS",
    "BIN_NAMES",
    "SizeBin",
    "bin_for_size",
    "FileCreation",
    "OutputSpec",
    "TraceJob",
    "Trace",
    "WorkloadProfile",
    "FB_PROFILE",
    "CMU_PROFILE",
    "PROFILES",
    "scaled_profile",
    "TraceSynthesizer",
    "synthesize_trace",
    "DfsioSpec",
]
