"""Workload substrate: FB/CMU trace synthesis and DFSIO.

The original Facebook and CMU OpenCloud traces are proprietary;
:mod:`repro.workload.synthesis` regenerates workloads from every
statistic the paper publishes about them (see DESIGN.md for the
substitution rationale).
"""

from repro.workload.bins import BINS, BIN_NAMES, SizeBin, bin_for_size
from repro.workload.dfsio import DfsioSpec
from repro.workload.external import ExternalTraceStream, load_stream
from repro.workload.jobs import (
    FileCreation,
    FileDeletion,
    OutputSpec,
    StreamEvent,
    Trace,
    TraceJob,
    event_sort_key,
    event_time,
)
from repro.workload.profiles import (
    CMU_PROFILE,
    FB_PROFILE,
    PROFILES,
    WorkloadProfile,
    scaled_profile,
)
from repro.workload.scenarios import (
    SCENARIOS,
    Scenario,
    build_scenario,
    get_scenario,
    register_scenario,
    scenario_names,
)
from repro.workload.streams import (
    GeneratedStream,
    StreamStats,
    SynthesizedStream,
    TraceStream,
    WorkloadStream,
    merge_events,
    merge_timed_sources,
)
from repro.workload.synthesis import TraceSynthesizer, synthesize_trace

__all__ = [
    "BINS",
    "BIN_NAMES",
    "SizeBin",
    "bin_for_size",
    "FileCreation",
    "FileDeletion",
    "OutputSpec",
    "StreamEvent",
    "TraceJob",
    "Trace",
    "event_sort_key",
    "event_time",
    "WorkloadProfile",
    "FB_PROFILE",
    "CMU_PROFILE",
    "PROFILES",
    "scaled_profile",
    "TraceSynthesizer",
    "synthesize_trace",
    "DfsioSpec",
    "WorkloadStream",
    "TraceStream",
    "SynthesizedStream",
    "GeneratedStream",
    "StreamStats",
    "merge_events",
    "merge_timed_sources",
    "Scenario",
    "SCENARIOS",
    "register_scenario",
    "scenario_names",
    "get_scenario",
    "build_scenario",
    "ExternalTraceStream",
    "load_stream",
]
