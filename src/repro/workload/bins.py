"""Job size bins A-F (paper Table 3).

Jobs are binned by their total input data size; the same bins organize
every per-bin figure (6, 7, 8, 10, 12, 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.common.units import GB, MB


@dataclass(frozen=True)
class SizeBin:
    """One input-size bin."""

    name: str
    low: int  # inclusive, bytes
    high: int  # exclusive, bytes

    def contains(self, size: int) -> bool:
        return self.low <= size < self.high

    @property
    def label(self) -> str:
        return self.name


#: The six bins of Table 3.
BINS: List[SizeBin] = [
    SizeBin("A", 0, 128 * MB),
    SizeBin("B", 128 * MB, 512 * MB),
    SizeBin("C", 512 * MB, 1 * GB),
    SizeBin("D", 1 * GB, 2 * GB),
    SizeBin("E", 2 * GB, 5 * GB),
    SizeBin("F", 5 * GB, 10 * GB),
]

BIN_NAMES = [b.name for b in BINS]


def bin_for_size(size: int) -> SizeBin:
    """The bin containing ``size`` (sizes above the last bin clamp to it)."""
    for size_bin in BINS:
        if size_bin.contains(size):
            return size_bin
    return BINS[-1]


def bin_index(name: str) -> int:
    for i, size_bin in enumerate(BINS):
        if size_bin.name == name:
            return i
    raise ValueError(f"unknown bin {name!r}")


def bin_by_name(name: str) -> Optional[SizeBin]:
    for size_bin in BINS:
        if size_bin.name == name:
            return size_bin
    return None
