"""Live workload replay: the stream protocol over pipes and sockets.

:class:`LiveStream` turns a *running* event producer into a
:class:`~repro.workload.streams.WorkloadStream`: it decodes the
streaming JSONL wire schema (the same line format
:mod:`repro.workload.serialize` writes and
:mod:`repro.workload.external` ingests — see ``docs/stream-protocol.md``)
line by line from a pipe, FIFO, socket, or any file-like object, and the
runner's one-event-lookahead pump drives it exactly like an offline
stream.  This is the online half of the paper's claim: policies adapt
*while* the workload arrives, not after it has been materialized.

The canonical demo pipes a scenario generator straight into the system::

    python -m repro scenario run fb --out - | python -m repro live -

Differences from offline streams, all of which come from the source
being a live transport rather than a seekable file:

* **Single-shot** — a pipe cannot be rewound, so :meth:`events` may be
  consumed once; a second iteration raises.
* **Out-of-order tolerance** — real producers (multiple appenders, UDP
  relays, clock skew) deliver events slightly out of order.  A bounded
  reorder buffer of ``reorder_depth`` events re-sorts within the bound;
  an event arriving *behind* what has already been emitted is **late**
  and handled by the ``late`` policy: ``"clamp"`` (default) rewrites its
  timestamp to the last emitted time, ``"drop"`` discards it, ``"error"``
  raises :class:`~repro.workload.streams.StreamOrderError`.
* **End-of-stream sentinel** — a ``{"kind": "end"}`` line terminates the
  stream cleanly; EOF works too, but sockets and long-lived pipes cannot
  always deliver one promptly.
* **Unknown duration** — when the header carries no duration the stream
  reports ``float("inf")`` and the runner ends the submission window
  when the stream is exhausted instead of at a nominal end time.
  (:class:`~repro.engine.runner.RunResult` serializes the open-ended
  case as ``duration=None``, never JSON ``Infinity``.)
* **Pacing** — ``pace`` meters replay against the wall clock
  (:func:`paced_events`): ``pace=1.0`` consumes a recorded file in real
  time, turning any offline trace into a live-looking producer.  The
  long-lived multi-tenant daemon built on top of this module lives in
  :mod:`repro.service` (``repro serve``).

Replay fidelity: events pass through the same
:func:`~repro.workload.external.fill_input_sizes` /
:func:`~repro.workload.streams.number_jobs` conveniences as file
ingestion, so live replay of a serialized scenario is event-for-event
identical to replaying the same file offline (property-tested in
``tests/test_live.py``).
"""

from __future__ import annotations

import gzip
import heapq
import io
import json
import socket as socket_module
import sys
import time as time_module
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, IO, Iterator, List, Optional, Tuple, Union

from repro.workload.external import fill_input_sizes
from repro.workload.jobs import (
    StreamEvent,
    TraceJob,
    event_sort_key,
    event_time,
)
from repro.workload.serialize import (
    END_KIND,
    EVENT_FORMAT_VERSION,
    event_from_dict,
)
from repro.workload.streams import StreamOrderError, WorkloadStream, number_jobs

LATE_POLICIES = ("clamp", "drop", "error")

#: Source kinds :func:`open_live_source` understands (the ``repro list
#: live-transports`` catalog dimension).  ``stdin`` is ``-``; ``file``
#: covers regular files and FIFOs (``.gz`` aware); ``tcp`` dials out to
#: a producer; ``listen`` binds a port and waits for one producer to
#: connect (the single-session half of the service's data plane — the
#: daemon in :mod:`repro.service` accepts many).
LIVE_TRANSPORTS = ("stdin", "file", "fifo", "tcp", "listen")

#: Default reorder-buffer depth (events held back for re-sorting).
DEFAULT_REORDER_DEPTH = 64


@dataclass
class LiveStats:
    """Counters describing what the live transport delivered.

    The disorder signal is ``events_reordered`` (arrivals whose sort key
    was behind something already received — zero for an in-order
    producer) together with ``max_disorder_seconds`` (how far behind the
    newest-seen timestamp such an arrival was; compare it against the
    reorder bound's reach to judge whether ``reorder_depth`` is sized
    right).  ``max_buffer_depth`` is plain buffer occupancy — it
    saturates at the bound for any stream longer than the buffer, so it
    only says how much of the allowance was exercised.
    """

    events_received: int = 0
    events_emitted: int = 0
    events_reordered: int = 0
    max_disorder_seconds: float = 0.0
    events_late: int = 0
    events_dropped: int = 0
    events_clamped: int = 0
    max_buffer_depth: int = 0
    end_sentinel_seen: bool = False

    def as_dict(self) -> Dict[str, Any]:
        return {
            "events_received": self.events_received,
            "events_emitted": self.events_emitted,
            "events_reordered": self.events_reordered,
            "max_disorder_seconds": self.max_disorder_seconds,
            "events_late": self.events_late,
            "events_dropped": self.events_dropped,
            "events_clamped": self.events_clamped,
            "max_buffer_depth": self.max_buffer_depth,
            "end_sentinel_seen": self.end_sentinel_seen,
        }


def open_live_source(
    spec: Union[str, IO[str]], compression: Optional[str] = None
) -> Tuple[IO[str], bool, bool]:
    """Resolve a source spec into ``(handle, owned, raw_seekable)``.

    ``spec`` may be an open file-like object (used as-is unless
    ``compression`` asks for a gzip wrap), ``"-"`` for standard input, a
    ``tcp://host:port`` address to connect to, ``listen://[host:]port``
    to bind and wait for one producer to connect (host defaults to all
    interfaces; the accepted connection becomes the source and the
    listening socket closes — one session per listen, see
    :mod:`repro.service` for the many-session daemon), or a filesystem
    path (regular files and FIFOs both work; ``*.gz`` implies gzip).

    ``owned`` says whether closing is this module's job: True only for
    transports opened *here* (paths, tcp connections) — caller-supplied
    handles and the process's stdin are never closed out from under
    their owner.  ``raw_seekable`` reflects the underlying transport
    *before* any gzip wrapping (``GzipFile`` emulates forward seeks, so
    asking the wrapper would call a pipe seekable).
    """
    if not isinstance(spec, str):
        return _wrap_compression(spec, compression), False, _seekable(spec)
    if spec == "-":
        # Wrap the binary buffer so gzip-over-stdin works uniformly.
        raw = sys.stdin.buffer
        return _wrap_compression(raw, compression), False, _seekable(raw)
    if spec.startswith("tcp://"):
        host, port = parse_endpoint(spec, "tcp")
        if not host:
            raise ValueError(f"bad live source address {spec!r}; want tcp://host:port")
        sock = socket_module.create_connection((host, port))
        handle = sock.makefile("rb")
        # makefile() reference-counts the fd: dropping our socket handle
        # here means closing the file (LiveStream.close) closes the
        # connection instead of leaking it until garbage collection.
        sock.close()
        return _wrap_compression(handle, compression), True, False
    if spec.startswith("listen://"):
        handle = _accept_one(spec)
        return _wrap_compression(handle, compression), True, False
    if compression is None and spec.endswith(".gz"):
        compression = "gzip"
    raw = open(spec, "rb")
    return _wrap_compression(raw, compression), True, _seekable(raw)


def parse_endpoint(spec: str, scheme: str) -> Tuple[str, int]:
    """Split ``scheme://[host:]port`` into ``(host, port)``.

    ``host`` defaults to ``""`` (all interfaces) for ``listen://`` specs
    given as a bare port; bracketed IPv6 literals are unwrapped.  Raises
    :class:`ValueError` for anything that does not end in a numeric
    port.
    """
    prefix = f"{scheme}://"
    if not spec.startswith(prefix):
        raise ValueError(f"bad {scheme} source address {spec!r}")
    host, _, port = spec[len(prefix) :].rpartition(":")
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]  # bracketed IPv6 literal, e.g. tcp://[::1]:9000
    if not port.isdigit():
        raise ValueError(
            f"bad live source address {spec!r}; want {scheme}://host:port"
        )
    return host, int(port)


def _accept_one(spec: str):
    """Bind ``listen://[host:]port``, accept one producer, return its
    binary read handle (the listening socket closes after the accept)."""
    host, port = parse_endpoint(spec, "listen")
    server = socket_module.create_server(
        (host, port), family=socket_module.AF_INET, reuse_port=False
    )
    try:
        conn, _addr = server.accept()
    finally:
        server.close()
    handle = conn.makefile("rb")
    # As for tcp://: makefile() reference-counts the fd, so dropping the
    # socket object means closing the file closes the connection.
    conn.close()
    return handle


def paced_events(
    events: Iterator["StreamEvent"],
    pace: float,
    clock: Callable[[], float] = time_module.monotonic,
    sleep: Callable[[float], None] = time_module.sleep,
) -> Iterator["StreamEvent"]:
    """Meter an event iterator against the wall clock.

    ``pace`` is the replay speed in simulated seconds per wall second:
    ``1.0`` replays in real time, ``60`` at a minute per second.  Each
    event is withheld until ``t0 + event_time / pace`` where ``t0`` is
    the wall time of the first ``next()`` call, so a consumer (the
    runner's pump, or a service feeder thread) sees events arrive as a
    live producer would emit them.  Events already past their deadline
    flow through without sleeping — pacing only ever delays, it never
    reorders or drops.  ``clock``/``sleep`` exist for deterministic
    tests.
    """
    if pace <= 0:
        raise ValueError(f"pace must be > 0 (sim seconds per wall second), got {pace}")
    start: Optional[float] = None
    for event in events:
        if start is None:
            start = clock()
        deadline = start + event_time(event) / pace
        delay = deadline - clock()
        if delay > 0:
            sleep(delay)
        yield event


def _seekable(handle) -> bool:
    """Whether the raw transport is seekable (False when undeterminable)."""
    try:
        return bool(handle.seekable())
    except (AttributeError, ValueError):
        return False


def _wrap_compression(handle, compression: Optional[str]) -> IO[str]:
    """Text-mode view of ``handle``, gunzipping on the fly if asked."""
    if compression not in (None, "gzip"):
        raise ValueError(f"unknown compression {compression!r}; want gzip or None")
    if compression == "gzip":
        raw = getattr(handle, "buffer", handle)
        return io.TextIOWrapper(gzip.GzipFile(fileobj=raw, mode="rb"))
    if isinstance(handle, io.TextIOBase) or hasattr(handle, "encoding"):
        return handle
    return io.TextIOWrapper(handle)


def _clamped(event: StreamEvent, time: float) -> StreamEvent:
    """A copy of ``event`` moved to ``time`` (jobs are mutated in place:
    they are per-stream objects, never shared)."""
    if isinstance(event, TraceJob):
        event.submit_time = time
        return event
    return replace(event, time=time)


class LiveStream(WorkloadStream):
    """A :class:`WorkloadStream` fed by a live JSONL transport.

    Constructing the stream reads (and blocks on) the first line to
    pick up the optional header — producers write it immediately, so in
    practice this returns as soon as the transport connects.  ``name``
    and ``duration`` default to the header values; without a header
    duration the stream reports ``inf`` and the runner treats stream
    exhaustion as the end of the submission window.
    """

    def __init__(
        self,
        source: Union[str, IO[str]],
        reorder_depth: int = DEFAULT_REORDER_DEPTH,
        late: str = "clamp",
        name: Optional[str] = None,
        duration: Optional[float] = None,
        compression: Optional[str] = None,
        pace: Optional[float] = None,
    ) -> None:
        if late not in LATE_POLICIES:
            raise ValueError(f"late policy {late!r} not in {LATE_POLICIES}")
        if reorder_depth < 0:
            raise ValueError(f"reorder_depth must be >= 0, got {reorder_depth}")
        if pace is not None and pace <= 0:
            raise ValueError(f"pace must be > 0 or None, got {pace}")
        #: Wall-clock replay speed in simulated seconds per wall second
        #: (None = as fast as the transport delivers); see
        #: :func:`paced_events`.
        self.pace = pace
        # On a seekable source (a finished regular file) EOF is
        # unambiguous, so a final line without its newline is accepted;
        # on pipes/sockets it means the producer died mid-record.
        self._handle, self._owned, self._seekable = open_live_source(
            source, compression
        )
        self.reorder_depth = int(reorder_depth)
        self.late = late
        self.live_stats = LiveStats()
        self._consumed = False
        self._line_no = 0
        self._pushback: Optional[Dict[str, Any]] = None
        try:
            header = self._read_header()
        except Exception:
            # No stream object reaches the caller, so a transport this
            # module opened would otherwise leak.
            self.close()
            raise
        if name is None:
            name = header.get("name") or "live"
        self.name = name
        if duration is None:
            duration = header.get("duration")
        self.duration = float("inf") if duration is None else float(duration)

    # -- wire decoding -------------------------------------------------------
    def _read_record(self) -> Optional[Dict[str, Any]]:
        """The next decoded JSONL record, or None at end of stream."""
        if self._pushback is not None:
            record, self._pushback = self._pushback, None
            return record
        line = ""
        # Loop (not recurse): producers may send blank-line keepalives.
        while not line.strip():
            line = self._handle.readline()
            if not line:
                return None
            self._line_no += 1
        stripped = line.strip()
        if not line.endswith("\n") and not self._seekable:
            # On a pipe/socket, a final line without its newline means
            # the producer died mid-record (truncated pipe); even if it
            # happens to parse, it must not be trusted as complete.
            raise ValueError(
                f"{self.name}: truncated record at line {self._line_no} "
                f"(no trailing newline): {stripped[:80]!r}"
            )
        try:
            return json.loads(stripped)
        except json.JSONDecodeError as exc:
            raise ValueError(
                f"{self.name}: corrupt record at line {self._line_no}: {exc}"
            ) from exc

    def _read_header(self) -> Dict[str, Any]:
        record = self._read_record()
        if record is None:
            return {}
        if record.get("kind") != "header":
            self._pushback = record
            return {}
        version = record.get("format_version")
        if version != EVENT_FORMAT_VERSION:
            raise ValueError(f"unsupported stream format version: {version!r}")
        return record

    def _raw_events(self) -> Iterator[StreamEvent]:
        while True:
            record = self._read_record()
            if record is None:
                return
            if record.get("kind") == END_KIND:
                self.live_stats.end_sentinel_seen = True
                return
            if record.get("kind") == "header":
                raise ValueError(
                    f"{self.name}: header after line 1 (line {self._line_no})"
                )
            yield event_from_dict(record)

    # -- reorder buffer ------------------------------------------------------
    def _reordered(self) -> Iterator[StreamEvent]:
        """Re-sort events within the bounded buffer; apply the late policy.

        The buffer holds at most ``reorder_depth`` events keyed by
        :func:`event_sort_key` (arrival order breaks ties, so an already
        ordered stream passes through unchanged).  Whatever cannot be
        fixed within the bound is *late*: by construction emission times
        are non-decreasing, so downstream consumers see a well-formed
        stream whichever policy runs.
        """
        stats = self.live_stats
        heap: List[Tuple[Tuple[float, int], int, StreamEvent]] = []
        arrival = 0
        last_emitted = -float("inf")
        newest_key = (-float("inf"), 0)
        newest_time = -float("inf")

        def pop() -> StreamEvent:
            nonlocal last_emitted
            _, _, event = heapq.heappop(heap)
            last_emitted = event_time(event)
            stats.events_emitted += 1
            return event

        for event in self._raw_events():
            stats.events_received += 1
            key = event_sort_key(event)
            if key < newest_key:
                # Genuinely out of order relative to what has already
                # arrived (the buffer will resort it if within bound).
                stats.events_reordered += 1
                stats.max_disorder_seconds = max(
                    stats.max_disorder_seconds, newest_time - event_time(event)
                )
            else:
                newest_key = key
                newest_time = event_time(event)
            if event_time(event) < last_emitted:
                stats.events_late += 1
                if self.late == "error":
                    raise StreamOrderError(
                        f"{self.name}: event at t={event_time(event)} arrived "
                        f"after t={last_emitted} was emitted (beyond the "
                        f"reorder bound of {self.reorder_depth})"
                    )
                if self.late == "drop":
                    stats.events_dropped += 1
                    continue
                stats.events_clamped += 1
                event = _clamped(event, last_emitted)
            heapq.heappush(heap, (event_sort_key(event), arrival, event))
            arrival += 1
            while len(heap) > self.reorder_depth:
                yield pop()
            stats.max_buffer_depth = max(stats.max_buffer_depth, len(heap))
        while heap:
            yield pop()

    # -- WorkloadStream ------------------------------------------------------
    def events(self) -> Iterator[StreamEvent]:
        if self._consumed:
            raise ValueError(
                f"live stream {self.name!r} is single-shot: a pipe or socket "
                "cannot be replayed (serialize it to a file to re-run)"
            )
        self._consumed = True
        events = number_jobs(fill_input_sizes(self._reordered()))
        if self.pace is not None:
            events = paced_events(events, self.pace)
        return events

    def close(self) -> None:
        """Close the transport if this stream opened it.

        Caller-supplied handles and stdin are the caller's to close —
        closing our text/gzip view of them would close the underlying
        stream out from under its owner.
        """
        if self._owned:
            self._handle.close()

    def __enter__(self) -> "LiveStream":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
