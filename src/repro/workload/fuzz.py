"""Adversarial scenario fuzzing: search composed workloads for pathologies.

The tiering machinery's failure modes — downgrade thrash, per-tenant
starvation, preset mis-selection — rarely show up on the handful of
hand-written scenarios; they live in corners of composed-workload
parameter space nobody thought to write down.  This module drives
`hypothesis <https://hypothesis.readthedocs.io>`_ over the composition
algebra (:mod:`repro.workload.compose`) to *search* for them, scoring
each candidate composition from one (or a few) end-to-end simulation
runs under a deliberately memory-pressured system:

``churn``
    Migration churn per byte served: ``(bytes upgraded + bytes
    downgraded) / bytes read``.  High churn means the policies spend
    tier bandwidth shuffling data instead of serving it — the downgrade
    thrash signature.  When tracing is enabled the frozen case also
    carries :func:`repro.obs.summary.thrash_stats` evidence (which
    files ping-ponged).
``starvation``
    Per-tenant byte-hit-ratio spread on multi-tenant compositions: the
    best-served tenant's ratio minus the worst-served one's, measured
    through the scheduler's per-job metrics fanout keyed by the
    composition's tenant prefixes.  A large spread means shared tiers
    serve one tenant at another's expense.
``regret``
    Preset mis-selection: the hit ratio under the best candidate preset
    minus the hit ratio under the preset named after the composition's
    *first* leaf scenario (how the auto-selector would label the mix).
    Composition breaks name-keyed preset selection by construction;
    regret quantifies how much that costs.

Found cases are **frozen** as minimal replayable JSON specs (the
composition, the system, the metric, its threshold, and the observed
scores under both I/O models) under ``tests/regression_scenarios/``,
where a parametrized tier-1 test replays every one bit-deterministically
— the fuzzer turns search luck into a permanent regression corpus.
``repro fuzz`` is the CLI: ``--freeze-dir`` writes found cases,
``--check DIR`` gates CI (every pathology dimension a bounded search
can still hit must already be pinned by a frozen case).
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.common.units import GB, MB
from repro.workload.compose import (
    build_compose,
    canonical_spec,
    compose_name,
    spec_hash,
    tenant_prefixes,
)

#: The scoring dimensions, in search order.
DIMENSION_NAMES = ("churn", "starvation", "regret")

#: Default score thresholds: a composition scoring at or above the
#: threshold on its dimension counts as a pathology.  Calibrated
#: against the sampled score distribution of each search space under
#: the default :class:`FuzzSystem`: typical compositions score ~0.2–0.35
#: churn, ~0.02–0.1 starvation, and ~0 regret; the thresholds sit in
#: the extreme tail (top few percent), so crossing one is a genuine
#: outlier, not the median workload.
DEFAULT_THRESHOLDS: Mapping[str, float] = {
    "churn": 0.55,
    "starvation": 0.2,
    "regret": 0.05,
}

#: Scenarios the fuzzer composes, with the parameter ranges it may
#: explore for each (bounded so candidate runs stay sub-second).
#: Ranges are (low, high) over integers unless marked float.
FUZZ_SPACE: Mapping[str, Mapping[str, Tuple[float, float, bool]]] = {
    "flashcrowd": {
        "crowd_boost": (4, 16, False),
        "hot_files": (2, 12, False),
        "crowd_minutes": (10, 40, False),
        "skew": (0.3, 1.1, True),
    },
    "mlscan": {
        "shards": (16, 96, False),
        "shard_mb": (64, 512, False),
        "epochs": (4, 12, False),
    },
    "oscillating": {
        "hot_files": (8, 48, False),
        "phase_minutes": (10, 60, False),
        "hot_prob": (0.6, 0.97, True),
    },
    "static": {
        "hot_files": (8, 64, False),
        "scan_files": (64, 320, False),
        "hot_ratio": (0.3, 0.95, True),
    },
    "dynamic": {
        "hot_files": (8, 48, False),
        "phases": (4, 16, False),
        "hot_prob": (0.5, 0.95, True),
    },
    "phaseshift": {
        "sets": (2, 4, False),
        "set_files": (16, 64, False),
        "period_minutes": (8, 45, False),
        "focus": (0.8, 0.99, True),
    },
}

#: Leaf scale used by every fuzz candidate: long enough for the tiering
#: machinery to act, short enough that a candidate run stays sub-second.
FUZZ_SCALE = 0.1


@dataclass(frozen=True)
class FuzzSystem:
    """The deliberately memory-pressured system candidates run under.

    The working sets of the fuzz scenarios exceed ``memory_mb`` by
    design — pathologies like churn and starvation only manifest when
    tiers are contended.  All fields land in the frozen case, so a
    replay reconstructs the identical system.
    """

    workers: int = 3
    memory_mb: int = 512
    downgrade: str = "lru"
    upgrade: str = "osa"
    io_model: str = "snapshot"
    tiers: str = "default3"
    preset: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready canonical form (round-trips via :meth:`from_dict`)."""
        return {
            "workers": self.workers,
            "memory_mb": self.memory_mb,
            "downgrade": self.downgrade,
            "upgrade": self.upgrade,
            "io_model": self.io_model,
            "tiers": self.tiers,
            "preset": self.preset,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FuzzSystem":
        """Rebuild the system of a frozen case."""
        return cls(**dict(data))


@dataclass(frozen=True)
class Pathology:
    """One found case: a composition that crosses a pathology threshold."""

    dimension: str
    metric: str
    score: float
    threshold: float
    spec: Mapping[str, Any]
    system: FuzzSystem
    #: Dimension-specific evidence (per-tenant ratios, thrash stats,
    #: per-preset hit ratios) — context for whoever triages the case.
    details: Mapping[str, Any] = field(default_factory=dict)

    @property
    def case_id(self) -> str:
        """Stable identity: dimension plus the spec's content hash."""
        return f"{self.dimension}_{spec_hash(self.spec)}"


#: Human-readable metric name per dimension (recorded in frozen cases).
_METRICS = {
    "churn": "migration_bytes_per_byte_read",
    "starvation": "tenant_byte_hit_ratio_spread",
    "regret": "preset_oracle_hit_ratio_regret",
}


def _make_config(system: FuzzSystem, conf: Optional[Dict[str, Any]] = None):
    """Map a :class:`FuzzSystem` onto a runnable SystemConfig."""
    from repro.engine.runner import SystemConfig

    return SystemConfig(
        label="fuzz",
        downgrade=system.downgrade,
        upgrade=system.upgrade,
        workers=system.workers,
        tiers=system.tiers,
        io_model=system.io_model,
        memory_per_node=system.memory_mb * MB,
        preset=system.preset,
        conf=dict(conf or {}),
    )


def _run(
    spec: Mapping[str, Any],
    system: FuzzSystem,
    tenants: Optional[List[str]] = None,
    preset: Optional[str] = None,
    trace: bool = False,
):
    """One scored simulation of a composed spec.

    Returns ``(result, per-tenant metrics dict, tracer)``.  ``tenants``
    installs per-job metric collectors keyed by path prefix (the
    scheduler's fanout hook — pure projection, bit-identical run);
    ``preset`` overrides the system's preset for regret probes.
    """
    from repro.engine.metrics import MetricsCollector
    from repro.engine.runner import WorkloadRunner

    stream = build_compose(spec)
    fuzz_system = (
        system if preset is None else FuzzSystem(**{**system.to_dict(), "preset": preset})
    )
    config = _make_config(fuzz_system, conf={"obs.trace": True} if trace else None)
    runner = WorkloadRunner(stream, config)
    collectors: Dict[str, MetricsCollector] = {}
    if tenants:
        prefixes = sorted(tenants, key=len, reverse=True)

        def for_job(job):
            for prefix in prefixes:
                if job.input_paths and job.input_paths[0].startswith(prefix + "/"):
                    if prefix not in collectors:
                        collectors[prefix] = MetricsCollector(
                            hierarchy=runner.hierarchy
                        )
                    return collectors[prefix]
            return None

        runner.scheduler.metrics_for_job = for_job
    result = runner.run()
    return result, collectors, getattr(runner, "tracer", None)


def _migrated_bytes(result) -> int:
    """Total committed migration traffic, both directions, all tiers."""
    return sum(result.bytes_upgraded_by_tier.values()) + sum(
        result.bytes_downgraded_by_tier.values()
    )


def score_churn(
    spec: Mapping[str, Any], system: FuzzSystem, trace: bool = False
) -> Tuple[float, Dict[str, Any]]:
    """Migration churn per byte served (the downgrade-thrash score)."""
    result, _, tracer = _run(spec, system, trace=trace)
    bytes_read = result.metrics.bytes_read
    migrated = _migrated_bytes(result)
    score = migrated / max(bytes_read, 1)
    details: Dict[str, Any] = {
        "bytes_read_gb": round(bytes_read / GB, 3),
        "bytes_migrated_gb": round(migrated / GB, 3),
        "hit_ratio": round(result.metrics.hit_ratio(), 6),
    }
    if tracer is not None:
        from repro.obs.summary import thrash_stats

        details["thrash"] = thrash_stats(tracer.records)
    return score, details


def score_starvation(
    spec: Mapping[str, Any], system: FuzzSystem
) -> Tuple[float, Dict[str, Any]]:
    """Per-tenant byte-hit-ratio spread (best-served minus worst-served).

    Zero for compositions with fewer than two active tenants — the
    dimension only means something when tenants share the tiers.
    """
    tenants = tenant_prefixes(canonical_spec(spec))
    if len(tenants) < 2:
        return 0.0, {"tenants": {}}
    _, collectors, _ = _run(spec, system, tenants=tenants)
    ratios = {
        prefix: round(collector.byte_hit_ratio(), 6)
        for prefix, collector in sorted(collectors.items())
        if collector.bytes_read > 0
    }
    if len(ratios) < 2:
        return 0.0, {"tenants": ratios}
    score = max(ratios.values()) - min(ratios.values())
    return score, {"tenants": ratios}


def score_regret(
    spec: Mapping[str, Any], system: FuzzSystem
) -> Tuple[float, Dict[str, Any]]:
    """Preset-vs-oracle regret for a composed workload.

    The naive selector labels a composition by its first leaf scenario
    (the only name available to name-keyed preset selection); the
    oracle picks the best of every candidate preset plus no preset.
    Regret is the oracle's hit ratio minus the naive choice's.
    """
    from repro.core.presets import PRESETS

    leaves = _leaf_names(canonical_spec(spec))
    naive = next((name for name in leaves if name in PRESETS), None)
    candidates = [None] + sorted(set(PRESETS) & set(leaves))
    hit_by_preset: Dict[str, float] = {}
    for preset in candidates:
        result, _, _ = _run(spec, system, preset=preset)
        hit_by_preset[preset or "none"] = round(result.metrics.hit_ratio(), 6)
    naive_hit = hit_by_preset[naive or "none"]
    oracle_preset, oracle_hit = max(
        hit_by_preset.items(), key=lambda kv: (kv[1], kv[0])
    )
    return oracle_hit - naive_hit, {
        "naive_preset": naive or "none",
        "oracle_preset": oracle_preset,
        "hit_by_preset": hit_by_preset,
    }


def _leaf_names(spec: Mapping[str, Any]) -> List[str]:
    """Leaf scenario names in composition order (first = dominant)."""
    op = spec["op"]
    if op == "scenario":
        return [spec["name"]]
    if op in ("overlay", "concat"):
        names: List[str] = []
        for source in spec["sources"]:
            names.extend(_leaf_names(source))
        return names
    return _leaf_names(spec["source"])


#: Scorer registry: dimension -> callable(spec, system) -> (score, details).
SCORERS: Mapping[
    str, Callable[[Mapping[str, Any], FuzzSystem], Tuple[float, Dict[str, Any]]]
] = {
    "churn": score_churn,
    "starvation": score_starvation,
    "regret": score_regret,
}


# -- hypothesis search --------------------------------------------------------
def _leaf_strategy(names: Optional[List[str]] = None):
    """Strategy over scenario leaves: name, seed, bounded parameters."""
    from hypothesis import strategies as st

    pool = sorted(names or FUZZ_SPACE)

    @st.composite
    def leaf(draw):
        name = draw(st.sampled_from(pool))
        seed = draw(st.integers(min_value=0, max_value=7))
        params: Dict[str, float] = {}
        for key, (low, high, is_float) in sorted(FUZZ_SPACE[name].items()):
            if draw(st.booleans()):
                continue  # keep the registered default for this knob
            if is_float:
                value = draw(
                    st.floats(
                        min_value=low,
                        max_value=high,
                        allow_nan=False,
                        allow_infinity=False,
                    )
                )
                params[key] = round(float(value), 4)
            else:
                params[key] = float(draw(st.integers(int(low), int(high))))
        return canonical_spec(
            {
                "op": "scenario",
                "name": name,
                "seed": seed,
                "scale": FUZZ_SCALE,
                "params": params,
            }
        )

    return leaf()


def spec_strategy(dimension: str):
    """The composed-spec search space for one scoring dimension.

    ``churn``/``regret`` explore single leaves, two-source overlays, and
    time-compressed variants; ``starvation`` explores two- and
    three-tenant overlays (the dimension needs tenants to starve);
    ``regret`` additionally restricts leaves to preset-registered
    scenarios (a composition of preset-less leaves has no candidate
    presets, so its regret is trivially zero).
    """
    from hypothesis import strategies as st

    pool = None
    if dimension == "regret":
        from repro.core.presets import PRESETS

        pool = sorted(set(FUZZ_SPACE) & set(PRESETS))
    leaf = _leaf_strategy(pool)

    def overlay_of(n: int):
        return st.lists(leaf, min_size=n, max_size=n).map(
            lambda sources: canonical_spec(
                {"op": "overlay", "sources": sources}
            )
        )

    if dimension == "starvation":
        return st.one_of(overlay_of(2), overlay_of(3))
    base = st.one_of(leaf, overlay_of(2))
    compressed = st.tuples(
        base, st.sampled_from([0.25, 0.5, 2.0])
    ).map(
        lambda pair: canonical_spec(
            {"op": "timescale", "source": pair[0], "factor": pair[1]}
        )
    )
    return st.one_of(base, compressed)


def find_pathology(
    dimension: str,
    seed: int = 0,
    budget: int = 50,
    threshold: Optional[float] = None,
    system: Optional[FuzzSystem] = None,
) -> Optional[Pathology]:
    """Search one dimension; the minimal found case, or None.

    Runs ``hypothesis.find`` over :func:`spec_strategy` with a fixed
    ``random.Random(seed)`` and at most ``budget`` examples, so the
    search is deterministic for a given hypothesis version.  A found
    example is hypothesis-shrunk toward minimality before scoring is
    repeated for the frozen record.
    """
    from hypothesis import settings as hyp_settings
    from hypothesis.errors import NoSuchExample

    from hypothesis import find

    if dimension not in SCORERS:
        raise ValueError(
            f"unknown fuzz dimension {dimension!r}; "
            f"expected one of {list(DIMENSION_NAMES)}"
        )
    system = system or FuzzSystem()
    bar = DEFAULT_THRESHOLDS[dimension] if threshold is None else threshold
    scorer = SCORERS[dimension]

    def crosses(spec: Mapping[str, Any]) -> bool:
        score, _ = scorer(spec, system)
        return score >= bar

    try:
        spec = find(
            spec_strategy(dimension),
            crosses,
            settings=hyp_settings(
                max_examples=budget, deadline=None, database=None
            ),
            random=random.Random(seed),
        )
    except NoSuchExample:
        return None
    score, details = scorer(spec, system)
    return Pathology(
        dimension=dimension,
        metric=_METRICS[dimension],
        score=round(score, 6),
        threshold=bar,
        spec=canonical_spec(spec),
        system=system,
        details=details,
    )


# -- freezing and replay ------------------------------------------------------
def score_case(case: Mapping[str, Any], io_model: str) -> Tuple[float, Dict[str, Any]]:
    """Re-score a frozen case's spec under one I/O model.

    The single entry point the regression replay test uses: rebuilds
    the recorded system with ``io_model`` substituted and runs the
    recorded scorer on the recorded spec.
    """
    system = FuzzSystem.from_dict({**case["system"], "io_model": io_model})
    scorer = SCORERS[case["pathology"]]
    return scorer(case["spec"], system)


def freeze_case(pathology: Pathology, out_dir: str) -> str:
    """Write a found case as a frozen regression scenario; the path.

    The frozen JSON pins the composition spec, the pressured system,
    the threshold the case crosses, and the observed score under *both*
    I/O models (rounded to 6 decimals) — the replay test asserts exact
    equality, so any behaviour drift on these workloads is caught.
    """
    case: Dict[str, Any] = {
        "comment": (
            f"{pathology.dimension} pathology found by repro fuzz: "
            f"{compose_name(pathology.spec)} drives "
            f"{pathology.metric} to {pathology.score:g} "
            f"(threshold {pathology.threshold:g}) under a "
            f"{pathology.system.memory_mb} MB/node "
            f"{pathology.system.downgrade}:{pathology.system.upgrade} system"
        ),
        "pathology": pathology.dimension,
        "metric": pathology.metric,
        "threshold": pathology.threshold,
        "system": pathology.system.to_dict(),
        "spec": canonical_spec(pathology.spec),
        "details": dict(pathology.details),
        "observed": {},
    }
    for io_model in ("snapshot", "fairshare"):
        score, _ = score_case(case, io_model)
        case["observed"][io_model] = round(score, 6)
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"{pathology.case_id}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(case, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def load_cases(directory: str) -> List[Dict[str, Any]]:
    """Every frozen case under ``directory``, sorted by file name."""
    cases = []
    if not os.path.isdir(directory):
        return cases
    for name in sorted(os.listdir(directory)):
        if not name.endswith(".json"):
            continue
        with open(os.path.join(directory, name), "r", encoding="utf-8") as handle:
            case = json.load(handle)
        case["_file"] = name
        cases.append(case)
    return cases


def unfrozen(
    found: List[Pathology], directory: str
) -> List[Pathology]:
    """Found cases whose pathology dimension no frozen case pins yet.

    The CI gate: a bounded fixed-seed search may shrink to a different
    minimal spec across hypothesis versions, so coverage is judged by
    *dimension* — a hit on a dimension with no frozen case means the
    corpus has a hole (e.g. a new scoring dimension landed without
    freezing its cases).
    """
    frozen_dimensions = {case["pathology"] for case in load_cases(directory)}
    return [p for p in found if p.dimension not in frozen_dimensions]
