"""External trace ingestion: CSV/JSONL files behind the stream protocol.

Real cluster traces (HDFS audit logs, job-history dumps, cache-simulator
exports) can be replayed through the full system by converting them to
one of two formats and wrapping the file in
:class:`ExternalTraceStream`.  Ingestion is lazy — lines are decoded one
at a time — so trace length is bounded by disk, not memory.  Both
formats are transparently gzip-decompressed for ``*.gz`` paths.

The normative schemas live in ``docs/stream-protocol.md``:

* **JSONL** (``*.jsonl`` / ``*.jsonl.gz``) — one event object per line,
  the wire format of :func:`repro.workload.serialize.event_to_dict`,
  with an optional header and end-sentinel line;
* **CSV** (``*.csv`` / ``*.csv.gz``) — a header row naming the columns,
  one event per row, at most one output per job.

Conveniences applied during ingestion, for both formats (shared with
live replay, :mod:`repro.workload.live`):

* events must be time-ordered (a decreasing timestamp raises
  :class:`~repro.workload.streams.StreamOrderError` with the line context);
* job ids are assigned sequentially when omitted;
* a job's ``input_bytes``, when omitted or zero, is inferred from the
  sizes of previously created files it reads (O(files) state).
"""

from __future__ import annotations

import csv
import itertools
from typing import Dict, Iterator, Optional

from repro.workload.jobs import (
    FileCreation,
    FileDeletion,
    OutputSpec,
    StreamEvent,
    TraceJob,
)
from repro.workload.serialize import _open_text, iter_events, read_stream_header
from repro.workload.streams import (
    StreamStats,
    WorkloadStream,
    number_jobs,
    ordered,
)

#: Recognized extensions per format (longest match wins).
_FORMATS = {
    ".jsonl": "jsonl",
    ".jsonl.gz": "jsonl",
    ".csv": "csv",
    ".csv.gz": "csv",
}


def detect_format(path: str) -> str:
    """The trace format implied by ``path``'s extension."""
    for suffix, fmt in _FORMATS.items():
        if path.endswith(suffix):
            return fmt
    raise ValueError(
        f"cannot infer trace format from {path!r}; expected one of "
        f"{sorted(set(_FORMATS))} (or pass fmt= explicitly)"
    )


def iter_csv_events(path: str) -> Iterator[StreamEvent]:
    """Lazily decode the CSV trace schema (see module docstring)."""
    with _open_text(path, "r") as handle:
        reader = csv.DictReader(handle)
        for row_no, row in enumerate(reader, start=2):
            kind = (row.get("kind") or "").strip()
            try:
                time = float(row["time"])
                if kind == "create":
                    yield FileCreation(row["path"], int(float(row["bytes"])), time)
                elif kind == "delete":
                    yield FileDeletion(row["path"], time)
                elif kind == "job":
                    inputs = [
                        p.strip()
                        for p in (row.get("inputs") or "").split(";")
                        if p.strip()
                    ]
                    outputs = []
                    if (row.get("output_path") or "").strip():
                        outputs.append(
                            OutputSpec(
                                row["output_path"].strip(),
                                int(float(row.get("output_bytes") or 0)),
                            )
                        )
                    yield TraceJob(
                        job_id=-1,
                        submit_time=time,
                        input_paths=inputs,
                        input_size=int(float(row.get("bytes") or 0)),
                        outputs=outputs,
                        cpu_seconds_per_byte=float(
                            row.get("cpu_seconds_per_byte") or 0.0
                        ),
                    )
                else:
                    raise ValueError(f"unknown event kind {kind!r}")
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(f"{path}:{row_no}: bad trace row: {exc}") from exc


def fill_input_sizes(events: Iterator[StreamEvent]) -> Iterator[StreamEvent]:
    """Infer missing job input sizes from the files created so far.

    Shared by file ingestion and live replay
    (:class:`repro.workload.live.LiveStream`) so both apply identical
    conveniences to the same wire schema.
    """
    sizes: Dict[str, int] = {}
    for event in events:
        if isinstance(event, FileCreation):
            sizes[event.path] = event.size
        elif isinstance(event, TraceJob):
            for output in event.outputs:
                sizes[output.path] = output.size
            if event.input_size <= 0:
                event.input_size = sum(
                    sizes.get(path, 0) for path in event.input_paths
                )
        yield event


class ExternalTraceStream(WorkloadStream):
    """A CSV/JSONL trace file as a :class:`WorkloadStream`.

    ``fmt`` defaults to extension detection; ``name`` and ``duration``
    default to the JSONL header when present, then to the file stem and
    a one-pass scan for the last event time.  The scan is O(1) memory
    and **lazy** — it runs only when ``duration`` is first read (the
    runner needs it; a bounded ``stats(max_events=...)`` pass does not)
    — and is skipped entirely when ``duration`` is passed explicitly.

    The duration scan doubles as the statistics walk: whichever of
    ``duration``/``stats()`` runs first caches a full
    :class:`~repro.workload.streams.StreamStats`, so reading both costs
    one decode pass over the file, not two.
    """

    def __init__(
        self,
        path: str,
        fmt: Optional[str] = None,
        name: Optional[str] = None,
        duration: Optional[float] = None,
    ) -> None:
        self.path = path
        self.fmt = fmt or detect_format(path)
        if self.fmt not in ("jsonl", "csv"):
            raise ValueError(f"unknown trace format {self.fmt!r}")
        header = read_stream_header(path) if self.fmt == "jsonl" else {}
        if name is None:
            name = header.get("name") or _stem(path)
        self.name = name
        if duration is None and "duration" in header:
            duration = float(header["duration"])
        self._duration = None if duration is None else float(duration)
        #: Cached unbounded statistics pass (see class docstring).
        self._stats: Optional[StreamStats] = None

    @property
    def duration(self) -> float:
        if self._duration is None:
            # The duration scan has to decode every event anyway, so run
            # it as the full statistics walk and cache that too — a
            # later stats() call costs nothing extra.
            self._duration = self.stats().last_time
        return self._duration

    def _raw_events(self) -> Iterator[StreamEvent]:
        if self.fmt == "jsonl":
            return iter_events(self.path)
        return iter_csv_events(self.path)

    def events(self) -> Iterator[StreamEvent]:
        return number_jobs(
            fill_input_sizes(ordered(self._raw_events(), name=self.name))
        )

    def stats(self, max_events: Optional[int] = None) -> StreamStats:
        # Not via super(): the base implementation reads self.duration,
        # which would force the full-file scan a bounded pass avoids.
        if max_events is None and self._stats is not None:
            return self._stats
        stats = StreamStats(name=self.name, duration=self._duration or 0.0)
        for event in itertools.islice(self.events(), max_events):
            stats.add(event)
        if self._duration is None:
            # An unbounded pass visits every event, so its last time IS
            # the scan result — cache it and skip the separate read.
            if max_events is None:
                self._duration = stats.last_time
            stats.duration = stats.last_time
        if max_events is None:
            self._stats = stats
        return stats


def _stem(path: str) -> str:
    base = path.rsplit("/", 1)[-1]
    for suffix in sorted(_FORMATS, key=len, reverse=True):
        if base.endswith(suffix):
            return base[: -len(suffix)]
    return base


def load_stream(path: str, **kwargs) -> ExternalTraceStream:
    """Convenience alias: open an external trace as a stream."""
    return ExternalTraceStream(path, **kwargs)
