"""Lazy workload streams: seeded, time-ordered event generators.

A :class:`WorkloadStream` is the streaming counterpart of a materialized
:class:`~repro.workload.jobs.Trace`: instead of holding every event in
memory, it *generates* a time-ordered sequence of
:data:`~repro.workload.jobs.StreamEvent` (file creations, job
submissions, file deletions) on demand.  Streams are

* **lazy** — events come from an iterator, so a 100x-length workload
  replays in O(active-state) memory instead of O(events);
* **seeded** — iterating the same stream twice yields the identical
  event sequence (every random draw goes through one seeded generator);
* **time-ordered** — event times are non-decreasing, with the
  :func:`~repro.workload.jobs.event_sort_key` tie rule (creations before
  jobs before deletions at equal timestamps).

The scenario library (:mod:`repro.workload.scenarios`) builds named
streams; the external adapter (:mod:`repro.workload.external`) ingests
CSV/JSONL traces into the same protocol; and
:class:`~repro.engine.runner.WorkloadRunner` drives either a stream or a
materialized trace through the simulated storage system.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.workload.bins import BINS, bin_for_size
from repro.workload.jobs import (
    FileCreation,
    FileDeletion,
    StreamEvent,
    Trace,
    TraceJob,
    event_sort_key,
    event_time,
)
from repro.workload.profiles import WorkloadProfile, scaled_profile


class StreamOrderError(ValueError):
    """A stream yielded events with decreasing timestamps."""


# -- protocol ----------------------------------------------------------------
class WorkloadStream:
    """Base class of the stream protocol.

    Subclasses implement :meth:`events`; everything else (iteration,
    materialization, statistics) is generic.  ``name`` identifies the
    workload in results; ``duration`` is the nominal end of the
    submission window (the runner drains past it, exactly as for
    materialized traces).
    """

    name: str = "stream"
    duration: float = 0.0

    def events(self) -> Iterator[StreamEvent]:
        """Yield the workload's events in time order.

        Each call restarts the stream from the beginning; two iterations
        of the same stream object yield identical event sequences.
        """
        raise NotImplementedError

    def __iter__(self) -> Iterator[StreamEvent]:
        return self.events()

    def materialize(self) -> Trace:
        """Consume the stream into a :class:`Trace`.

        Raises :class:`ValueError` for streams containing file deletions
        — the materialized trace model has no deletion list, and
        silently dropping lifecycle events would change the workload.
        """
        trace = Trace(name=self.name, duration=self.duration)
        for event in self.events():
            if isinstance(event, FileCreation):
                trace.creations.append(event)
            elif isinstance(event, TraceJob):
                trace.jobs.append(event)
            else:
                raise ValueError(
                    f"stream {self.name!r} contains file deletions and "
                    "cannot be materialized into a Trace"
                )
        return trace

    def stats(self, max_events: Optional[int] = None) -> "StreamStats":
        """Single-pass summary statistics (bounded by ``max_events``)."""
        stats = StreamStats(name=self.name, duration=self.duration)
        for event in itertools.islice(self.events(), max_events):
            stats.add(event)
        return stats


@dataclass
class StreamStats:
    """Aggregates computed in one bounded pass over a stream."""

    name: str
    duration: float
    events: int = 0
    jobs: int = 0
    creations: int = 0
    deletions: int = 0
    bytes_created: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    first_time: float = 0.0
    last_time: float = 0.0
    jobs_per_bin: Dict[str, int] = field(
        default_factory=lambda: {b.name: 0 for b in BINS}
    )

    def add(self, event: StreamEvent) -> None:
        t = event_time(event)
        if self.events == 0:
            self.first_time = t
        self.events += 1
        self.last_time = max(self.last_time, t)
        if isinstance(event, FileCreation):
            self.creations += 1
            self.bytes_created += event.size
        elif isinstance(event, TraceJob):
            self.jobs += 1
            self.bytes_read += event.input_size
            self.bytes_written += event.output_size
            self.jobs_per_bin[bin_for_size(event.input_size).name] += 1
        else:
            self.deletions += 1


# -- adapters ----------------------------------------------------------------
class TraceStream(WorkloadStream):
    """Stream view of an already-materialized :class:`Trace`."""

    def __init__(self, trace: Trace) -> None:
        self.trace = trace
        self.name = trace.name
        self.duration = trace.duration

    def events(self) -> Iterator[StreamEvent]:
        return self.trace.events()


class SynthesizedStream(WorkloadStream):
    """Compat wrapper: the FB/CMU synthesizer behind the stream protocol.

    The synthesizer's global passes (cold-file top-up, drift rotation)
    need the whole trace, so this stream materializes internally on
    first iteration and caches it — it exists so the classic workloads
    plug into the scenario registry and the streaming drive path, where
    replay is verified bit-identical to the pre-stream behaviour.
    """

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int = 42,
        drift: bool = True,
        scale: float = 1.0,
    ) -> None:
        if scale != 1.0:
            profile = scaled_profile(profile, scale)
        self.profile = profile
        self.seed = seed
        self.drift = drift
        self.name = profile.name
        self.duration = profile.duration
        self._trace: Optional[Trace] = None

    def materialize(self) -> Trace:
        if self._trace is None:
            from repro.workload.synthesis import synthesize_trace

            self._trace = synthesize_trace(
                self.profile, seed=self.seed, drift=self.drift
            )
        return self._trace

    def events(self) -> Iterator[StreamEvent]:
        return self.materialize().events()


class GeneratedStream(WorkloadStream):
    """A fully lazy stream built from a generator factory.

    ``factory()`` returns a fresh event iterator (scenario closures
    capture their own parameters); the stream renumbers jobs
    sequentially in merged time order and enforces non-decreasing
    timestamps, so every scenario generator gets well-formed output for
    free.
    """

    def __init__(self, name: str, duration: float, factory) -> None:
        self.name = name
        self.duration = duration
        self._factory = factory

    def events(self) -> Iterator[StreamEvent]:
        return number_jobs(ordered(self._factory(), name=self.name))


# -- stream utilities --------------------------------------------------------
def ordered(
    events: Iterable[StreamEvent], name: str = "stream"
) -> Iterator[StreamEvent]:
    """Pass-through that enforces non-decreasing event times."""
    last = -float("inf")
    for event in events:
        t = event_time(event)
        if t < last:
            raise StreamOrderError(
                f"{name}: event at t={t} after t={last} "
                f"({type(event).__name__})"
            )
        last = t
        yield event


def number_jobs(events: Iterable[StreamEvent]) -> Iterator[StreamEvent]:
    """Assign sequential job ids in stream order (generators yield -1)."""
    next_id = 0
    for event in events:
        if isinstance(event, TraceJob):
            if event.job_id < 0:
                event.job_id = next_id
            next_id += 1
        yield event


def merge_events(*sources: Iterable[StreamEvent]) -> Iterator[StreamEvent]:
    """Merge time-ordered event iterators into one time-ordered stream.

    Stable: ties (equal :func:`event_sort_key`) resolve in source order,
    so the merge is deterministic.  Memory is O(len(sources)).
    """
    return heapq.merge(*sources, key=event_sort_key)


def merge_timed_sources(
    sources: Iterable[Tuple[float, Iterable[StreamEvent]]],
) -> Iterator[StreamEvent]:
    """Merge an *unbounded* sequence of event sources lazily.

    ``sources`` yields ``(start_time, events)`` pairs in non-decreasing
    ``start_time`` order, where every event of a source is at or after
    its start time.  Unlike :func:`merge_events`, sources are admitted
    into the merge only once the output clock reaches their start time,
    so workloads with unboundedly many short-lived sources (e.g. the
    ``pipeline`` dataset lifecycle) run with memory proportional to the
    number of *concurrently active* sources, not the total.
    """
    source_iter = iter(sources)
    # Heap of (sort_key, tiebreak, event, source) for the head event of
    # each admitted source; ``tiebreak`` preserves admission order.
    heap: List[tuple] = []
    counter = itertools.count()

    def admit(start: float, events: Iterable[StreamEvent]) -> None:
        it = iter(events)
        for event in it:
            if event_time(event) < start:
                raise StreamOrderError(
                    f"source starting at t={start} yielded an event at "
                    f"t={event_time(event)}"
                )
            heapq.heappush(heap, (event_sort_key(event), next(counter), event, it))
            return

    next_source = next(source_iter, None)
    if next_source is not None:
        admit(*next_source)
        next_source = next(source_iter, None)
    while heap or next_source is not None:
        # Admit every source that starts no later than the next event.
        while next_source is not None and (
            not heap or next_source[0] <= heap[0][0][0]
        ):
            admit(*next_source)
            next_source = next(source_iter, None)
        if not heap:
            continue
        _, _, event, it = heapq.heappop(heap)
        yield event
        follow = next(it, None)
        if follow is not None:
            heapq.heappush(heap, (event_sort_key(follow), next(counter), follow, it))


def clip(
    events: Iterable[StreamEvent], duration: float
) -> Iterator[StreamEvent]:
    """Drop events past ``duration`` (open-ended generators stop there)."""
    for event in events:
        if event_time(event) > duration:
            break
        yield event
