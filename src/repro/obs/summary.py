"""Trace post-processing: run summaries and per-file decision history.

Backs the ``repro trace summarize|explain`` CLI:

* :func:`summarize` folds a record list into per-type counts, byte
  totals, and the simulated time span;
* :func:`explain` extracts the chronological decision history of one
  file path — placement, upgrade/downgrade decisions, migrations,
  deletion — reconstructing *why* the file ended up where it did;
* :func:`thrash_stats` folds migration commits into per-file churn
  statistics (how concentrated migration traffic is, and how many
  files round-tripped between tiers) — the evidence the adversarial
  scenario fuzzer (:mod:`repro.workload.fuzz`) attaches to a frozen
  churn pathology.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping

#: Record types that carry a ``path`` payload key and therefore join
#: into a per-file history.
_PATH_EVENTS = (
    "file_create",
    "file_delete",
    "placement",
    "upgrade_decision",
    "downgrade_decision",
    "migration_start",
    "migration_commit",
)


def summarize(records: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Aggregate a trace into one JSON-safe summary dict."""
    counts: Dict[str, int] = {}
    bytes_by: Dict[str, int] = {}
    first_t: float = 0.0
    last_t: float = 0.0
    total = 0
    files: set = set()
    for record in records:
        ev = record["ev"]
        counts[ev] = counts.get(ev, 0) + 1
        if "bytes" in record:
            bytes_by[ev] = bytes_by.get(ev, 0) + int(record["bytes"])
        t = record["t"]
        if total == 0:
            first_t = t
        last_t = t
        total += 1
        path = record.get("path")
        if path:
            files.add(path)
    return {
        "records": total,
        "span_seconds": round(last_t - first_t, 6) if total else 0.0,
        "counts": dict(sorted(counts.items())),
        "bytes": dict(sorted(bytes_by.items())),
        "files_touched": len(files),
    }


def render_summary(summary: Mapping[str, Any]) -> str:
    """Human-readable rendering of :func:`summarize`'s output."""
    lines = [
        f"records: {summary['records']}  "
        f"span: {summary['span_seconds']:.0f}s sim  "
        f"files: {summary['files_touched']}",
        "",
        f"{'event':<20} {'count':>8} {'bytes':>16}",
    ]
    for ev, count in summary["counts"].items():
        size = summary["bytes"].get(ev, "")
        lines.append(f"{ev:<20} {count:>8} {size:>16}")
    return "\n".join(lines)


def explain(
    records: Iterable[Mapping[str, Any]], path: str
) -> List[Dict[str, Any]]:
    """The chronological decision history of one file path.

    Returns the subset of records whose ``path`` field equals ``path``,
    in emission order — creation/placement first, then every upgrade or
    downgrade decision and the migrations they caused.
    """
    return [
        dict(record)
        for record in records
        if record["ev"] in _PATH_EVENTS and record.get("path") == path
    ]


def thrash_stats(records: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Per-file migration-churn statistics from ``migration_commit``s.

    Counts committed up/down migrations per file path (``cache`` counts
    as an upgrade; ``repair`` traffic is excluded — it is fault
    recovery, not policy churn) and reports how concentrated the
    migration traffic is:

    ``files_migrated`` / ``migrations``
        Distinct paths with at least one committed migration, and the
        total commit count.
    ``max_migrations_per_file`` / ``mean_migrations_per_file``
        Concentration: a high max over a low mean means a few files are
        ping-ponging between tiers.
    ``round_trip_files``
        Files with both an upgrade and a downgrade commit — each one
        paid transfer cost in both directions (the thrash signature).
    ``top_paths``
        The five most-migrated paths, worst first.
    """
    up: Dict[str, int] = {}
    down: Dict[str, int] = {}
    for record in records:
        if record["ev"] != "migration_commit":
            continue
        kind = record.get("kind")
        path = record.get("path")
        if not path or kind == "repair":
            continue
        side = down if kind == "downgrade" else up
        side[path] = side.get(path, 0) + 1
    totals = {p: up.get(p, 0) + down.get(p, 0) for p in set(up) | set(down)}
    migrations = sum(totals.values())
    worst = sorted(totals.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
    return {
        "files_migrated": len(totals),
        "migrations": migrations,
        "max_migrations_per_file": max(totals.values()) if totals else 0,
        "mean_migrations_per_file": (
            round(migrations / len(totals), 3) if totals else 0.0
        ),
        "round_trip_files": sum(1 for p in totals if p in up and p in down),
        "top_paths": [{"path": p, "migrations": n} for p, n in worst],
    }


def _describe(record: Mapping[str, Any]) -> str:
    """One human-readable line for an explain record."""
    ev = record["ev"]
    if ev == "file_create":
        tiers = ",".join(record["tiers"])
        return f"created ({record['bytes']} bytes, tiers {tiers})"
    if ev == "file_delete":
        return "deleted"
    if ev == "placement":
        chosen = record["chosen"]
        best = record["candidates"][0] if record["candidates"] else None
        score = f" score={best['score']}" if best else ""
        return (
            f"replica {record['replica']} placed on "
            f"{chosen['node']}/{chosen['tier']}{score} "
            f"({len(record['candidates'])} candidates)"
        )
    if ev == "upgrade_decision":
        tiers = ",".join(record["tiers"])
        mode = "cache" if record.get("cache") else "move"
        return (
            f"upgrade toward {tiers} by {record['policy']} "
            f"({record['trigger']}, {mode}, {record['bytes']} bytes scheduled)"
        )
    if ev == "downgrade_decision":
        return (
            f"downgrade off {record['tier']} by {record['policy']} "
            f"(action {record['action']}, {record['bytes']} bytes scheduled)"
        )
    if ev == "migration_start":
        src, dst = record["src"], record["dst"]
        return (
            f"{record['kind']} b{record['block']} started "
            f"{src['node']}/{src['tier']} -> {dst['node']}/{dst['tier']}"
        )
    if ev == "migration_commit":
        return (
            f"{record['kind']} b{record['block']} committed on {record['tier']}"
        )
    return ev  # pragma: no cover - _PATH_EVENTS is closed


def render_explain(path: str, history: List[Dict[str, Any]]) -> str:
    """Human-readable rendering of :func:`explain`'s output."""
    if not history:
        return f"no trace records for {path!r}"
    lines = [f"history of {path} ({len(history)} records):"]
    for record in history:
        lines.append(f"  t={record['t']:>12.3f}  {_describe(record)}")
    return "\n".join(lines)
