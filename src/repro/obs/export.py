"""Trace and telemetry exporters: JSONL, Chrome tracing, Prometheus.

Three output formats share this module:

* **JSONL** — one compact, key-sorted JSON object per line (gzip when
  the path ends in ``.gz``).  Key sorting plus compact separators make
  the byte stream a pure function of the records, which is what lets
  the determinism tests compare whole files.
* **Chrome trace-event JSON** — the ``chrome://tracing`` /
  `Perfetto <https://ui.perfetto.dev>`_ format: jobs, tasks, and
  migrations become complete (``"ph": "X"``) events with durations;
  decisions become instants (``"ph": "i"``).  Timestamps are simulated
  microseconds.
* **Prometheus text exposition** — the service control plane's
  ``GET /metrics?format=prometheus`` body: engine counters plus
  per-tenant gauges labelled ``{tenant="t1", ...}``.

The JSONL encoder is also reused by the daemon's persistent results log
(``repro serve --results-log``).
"""

from __future__ import annotations

import gzip
import json
from typing import Any, Dict, Iterable, List, Mapping, Optional

#: Lane (Chrome ``tid``) per record family, so the trace viewer stacks
#: jobs, tasks, migrations, and decisions as separate named threads.
_CHROME_LANES = {
    "jobs": 1,
    "tasks": 2,
    "migrations": 3,
    "decisions": 4,
}


def trace_line(record: Mapping[str, Any]) -> str:
    """Canonical single-line JSON encoding of one record.

    Keys are sorted and separators compact so identical records always
    produce identical bytes (the determinism contract).
    """
    return json.dumps(record, sort_keys=True, separators=(",", ":"))


def _open_text(path: str, mode: str):
    """Open ``path`` for text I/O, transparently gzipped for ``.gz``."""
    if path.endswith(".gz"):
        return gzip.open(path, mode + "t", encoding="utf-8")
    return open(path, mode, encoding="utf-8")


def write_jsonl(records: Iterable[Mapping[str, Any]], path: str) -> int:
    """Write ``records`` to ``path`` as JSONL; returns the line count."""
    count = 0
    with _open_text(path, "w") as handle:
        for record in records:
            handle.write(trace_line(record))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL trace (or results log) back into a list of dicts."""
    records: List[Dict[str, Any]] = []
    with _open_text(path, "r") as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


# -- Chrome trace-event JSON ------------------------------------------------
def _us(seconds: float) -> int:
    """Simulated seconds to integer microseconds (Chrome's ``ts`` unit)."""
    return int(round(seconds * 1e6))


def to_chrome(records: Iterable[Mapping[str, Any]]) -> Dict[str, Any]:
    """Convert trace records to a Chrome trace-event document.

    Jobs and tasks carry their duration in the finish record, so they
    map directly to complete events anchored at ``t - duration``.
    Migrations are paired ``migration_start``/``migration_commit`` by
    block id (aborts become instants).  Everything else that marks a
    decision becomes an instant event on the decisions lane.
    """
    events: List[Dict[str, Any]] = [
        {
            "ph": "M",
            "pid": 1,
            "tid": tid,
            "name": "thread_name",
            "args": {"name": lane},
        }
        for lane, tid in _CHROME_LANES.items()
    ]
    open_migrations: Dict[int, Mapping[str, Any]] = {}
    for record in records:
        ev = record["ev"]
        t = record["t"]
        if ev == "job_finish":
            duration = record["completion"]
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": _CHROME_LANES["jobs"],
                    "name": f"job {record['job']}",
                    "cat": "job",
                    "ts": _us(t - duration),
                    "dur": _us(duration),
                    "args": {"task_seconds": record["task_seconds"]},
                }
            )
        elif ev == "task_read":
            duration = record["seconds"]
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": _CHROME_LANES["tasks"],
                    "name": f"read {record['tier']}",
                    "cat": "task",
                    "ts": _us(t - duration),
                    "dur": _us(duration),
                    "args": {"job": record["job"], "bytes": record["bytes"]},
                }
            )
        elif ev == "migration_start":
            open_migrations[record["block"]] = record
        elif ev == "migration_commit":
            start = open_migrations.pop(record["block"], None)
            begin = start["t"] if start is not None else t
            events.append(
                {
                    "ph": "X",
                    "pid": 1,
                    "tid": _CHROME_LANES["migrations"],
                    "name": f"{record['kind']} b{record['block']}",
                    "cat": "migration",
                    "ts": _us(begin),
                    "dur": _us(max(t - begin, 0.0)),
                    "args": {
                        "path": record["path"],
                        "bytes": record["bytes"],
                        "tier": record["tier"],
                    },
                }
            )
        elif ev in (
            "placement",
            "upgrade_decision",
            "downgrade_decision",
            "eviction",
            "migration_abort",
            "retrain",
            "file_create",
            "file_delete",
        ):
            args = {k: v for k, v in record.items() if k not in ("ev", "t", "seq")}
            events.append(
                {
                    "ph": "i",
                    "pid": 1,
                    "tid": _CHROME_LANES["decisions"],
                    "name": ev,
                    "cat": "decision",
                    "ts": _us(t),
                    "s": "t",
                    "args": args,
                }
            )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome(records: Iterable[Mapping[str, Any]], path: str) -> int:
    """Write the Chrome export of ``records``; returns the event count."""
    document = to_chrome(records)
    with _open_text(path, "w") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])


# -- Prometheus text exposition ---------------------------------------------
def _prom_label(value: Any) -> str:
    """Escape one label value per the text-exposition rules."""
    text = str(value)
    return (
        text.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


#: Per-tenant numeric fields exported as ``repro_tenant_<field>``.
_TENANT_METRICS = (
    ("jobs_submitted", "counter", "Jobs submitted by this tenant"),
    ("jobs_finished", "counter", "Jobs of this tenant that completed"),
    ("events_emitted", "counter", "Stream events emitted for this tenant"),
    ("hit_ratio", "gauge", "Tenant file-access memory hit ratio"),
    ("bytes_read", "counter", "Bytes read by this tenant's tasks"),
)


def prometheus_text(
    engine: Mapping[str, Any],
    tenants: Iterable[Mapping[str, Any]] = (),
    status: Optional[str] = None,
) -> str:
    """Render engine counters and per-tenant gauges as Prometheus text.

    ``engine`` is a flat mapping of scalar counters (the service's
    engine section); ``tenants`` are per-tenant dicts carrying at least
    ``id``/``name``/``state`` plus the :data:`_TENANT_METRICS` fields.
    """
    lines: List[str] = []
    if status is not None:
        lines.append("# HELP repro_service_up Service status (1 = serving).")
        lines.append("# TYPE repro_service_up gauge")
        lines.append(
            f'repro_service_up{{status="{_prom_label(status)}"}} '
            f"{1 if status == 'serving' else 0}"
        )
    for key in sorted(engine):
        value = engine[key]
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            continue
        name = f"repro_engine_{key}"
        lines.append(f"# HELP {name} Engine counter {key}.")
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {value}")
    tenants = list(tenants)
    for field, kind, help_text in _TENANT_METRICS:
        name = f"repro_tenant_{field}"
        lines.append(f"# HELP {name} {help_text}.")
        lines.append(f"# TYPE {name} {kind}")
        for tenant in tenants:
            labels = (
                f'tenant="{_prom_label(tenant.get("id"))}",'
                f'name="{_prom_label(tenant.get("name"))}",'
                f'state="{_prom_label(tenant.get("state"))}"'
            )
            value = tenant.get(field, 0)
            lines.append(f"{name}{{{labels}}} {value}")
    return "\n".join(lines) + "\n"
