"""The decision-trace event bus and its record schema.

A :class:`Tracer` collects structured records for the full tiering
lifecycle of one run.  Each record is a plain JSON-safe dict with three
schema-stable envelope keys —

``ev``
    the record type (one of :data:`EVENT_TYPES`),
``t``
    the simulated time the record was emitted (seconds, float),
``seq``
    a monotonically increasing integer, unique per tracer, breaking
    same-timestamp ties —

plus type-specific payload fields (tier and node *names*, file paths,
byte counts; never live objects).  Because records carry only simulated
time and a deterministic sequence number, two runs with the same seed
and configuration produce byte-identical JSONL exports (property-tested
in tests/test_trace_determinism.py).

Record types and their payload fields:

=====================  =====================================================
``job_submit``         ``job``, ``inputs``, ``maps``, ``outputs``
``job_finish``         ``job``, ``completion``, ``task_seconds``
``task_read``          ``job``, ``tier``, ``node``, ``bytes``, ``seconds``
``task_write``         ``job``, ``seconds``
``file_create``        ``path``, ``bytes``, ``replication``, ``tiers``
``file_delete``        ``path``
``placement``          ``path``, ``bytes``, ``replica``, ``chosen``,
                       ``candidates`` (per-candidate scores, best first)
``upgrade_decision``   ``policy``, ``trigger``, ``path``, ``tiers``,
                       ``bytes``, ``cache``
``downgrade_decision`` ``policy``, ``tier``, ``path``, ``action``, ``bytes``
``migration_start``    ``kind``, ``block``, ``path``, ``bytes``, ``src``,
                       ``dst``
``migration_commit``   ``kind``, ``block``, ``path``, ``bytes``, ``tier``
``migration_abort``    ``kind``, ``block``, ``bytes``
``eviction``           ``block``, ``tier``, ``node``, ``bytes``
``retrain``            ``sampled``, ``points``
=====================  =====================================================

``migration_start.kind`` is one of ``downgrade``/``upgrade``/``cache``/
``repair``; ``upgrade_decision.trigger`` is ``access`` or ``proactive``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

#: Every record type a :class:`Tracer` may emit (the stable schema
#: surface; ``tools/check_trace.py`` validates exports against it).
EVENT_TYPES = frozenset(
    {
        "job_submit",
        "job_finish",
        "task_read",
        "task_write",
        "file_create",
        "file_delete",
        "placement",
        "upgrade_decision",
        "downgrade_decision",
        "migration_start",
        "migration_commit",
        "migration_abort",
        "eviction",
        "retrain",
    }
)

#: Payload keys required per record type (envelope keys aside).
REQUIRED_FIELDS: Dict[str, tuple] = {
    "job_submit": ("job", "inputs", "maps", "outputs"),
    "job_finish": ("job", "completion", "task_seconds"),
    "task_read": ("job", "tier", "node", "bytes", "seconds"),
    "task_write": ("job", "seconds"),
    "file_create": ("path", "bytes", "replication", "tiers"),
    "file_delete": ("path",),
    "placement": ("path", "bytes", "replica", "chosen", "candidates"),
    "upgrade_decision": ("policy", "trigger", "path", "tiers", "bytes", "cache"),
    "downgrade_decision": ("policy", "tier", "path", "action", "bytes"),
    "migration_start": ("kind", "block", "path", "bytes", "src", "dst"),
    "migration_commit": ("kind", "block", "path", "bytes", "tier"),
    "migration_abort": ("kind", "block", "bytes"),
    "eviction": ("block", "tier", "node", "bytes"),
    "retrain": ("sampled", "points"),
}


class Tracer:
    """Collects decision records stamped with simulated time.

    The tracer is deliberately passive: :meth:`emit` appends to an
    in-memory list and schedules nothing on the simulator, so enabling
    tracing cannot perturb event order, RNG draws, or any simulated
    metric — the determinism contract the trace tests pin down.

    ``clock`` is any zero-argument callable returning the current
    simulated time (the runner wires ``sim.now``).
    """

    def __init__(self, clock: Callable[[], float]) -> None:
        self.clock = clock
        #: All records emitted so far, in emission order.
        self.records: List[Dict[str, Any]] = []
        #: File path the Master is currently placing blocks for; set
        #: around ``place_block`` calls so placement records can carry
        #: the path the policy itself never sees.
        self.file_context: Optional[str] = None
        self._seq = 0

    def emit(self, ev: str, **fields: Any) -> Dict[str, Any]:
        """Append one record of type ``ev`` and return it.

        Payload values must already be JSON-safe (names, paths,
        numbers); callers convert tiers and nodes to their names.
        """
        record: Dict[str, Any] = {"ev": ev, "t": self.clock(), "seq": self._seq}
        self._seq += 1
        record.update(fields)
        self.records.append(record)
        return record

    def __len__(self) -> int:
        return len(self.records)
