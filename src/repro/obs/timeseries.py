"""Simulated-time sampling of cluster gauges into columnar lists.

:class:`TimeseriesRecorder` rides a
:class:`~repro.sim.simulator.PeriodicTimer` to sample, every
``interval`` *simulated* seconds:

* per-tier occupancy (bytes used, against a static capacity column),
* per-tier cumulative I/O queue delay (both pricing models),
* in-flight I/O operations (fair-share flows, or snapshot streams),
* the rolling hit ratio (memory-read fraction *since the last sample*,
  from deltas of the run's :class:`~repro.engine.metrics.MetricsCollector`
  counters — ``None`` for windows with no reads),
* simulator backlog (live pending events).

Samples land in compact parallel lists (one float/int per sample per
column) rather than per-sample dicts, so hour-long runs at small
intervals stay cheap to hold and to serialize.

Sampling is read-only: the probe callbacks never mutate engine state or
consume RNG, so every *workload* metric of a sampled run is identical
to an unsampled one.  The sampler does schedule simulator events,
though, so pure simulator-side performance counters
(``events_processed``, heap peaks) legitimately differ — which is why
``--trace`` alone (no ``--timeseries``) schedules nothing at all.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.sim.simulator import PeriodicTimer


class TimeseriesRecorder:
    """Samples one runner's gauges on a fixed simulated-time interval.

    Construction takes a baseline sample immediately and schedules the
    next one ``interval`` simulated seconds later; the runner calls
    :meth:`stop` when the workload drains, which cancels the timer and
    appends one final sample of the end state.
    """

    def __init__(self, runner, interval: float) -> None:
        if interval <= 0:
            raise ValueError(f"sample interval must be positive, got {interval}")
        self.runner = runner
        self.interval = float(interval)
        #: Sample timestamps (simulated seconds).
        self.t: List[float] = []
        #: Static per-tier capacity in bytes (not a column).
        self.tier_capacity: Dict[str, int] = {
            tier.name: runner.master.tier_capacity(tier)
            for tier in runner.hierarchy
        }
        #: Per-tier occupancy columns (bytes used at each sample).
        self.tier_used: Dict[str, List[int]] = {
            tier.name: [] for tier in runner.hierarchy
        }
        #: Per-tier cumulative queue-delay columns (seconds).
        self.queue_delay: Dict[str, List[float]] = {
            tier.name: [] for tier in runner.hierarchy
        }
        #: In-flight I/O operations at each sample.
        self.inflight: List[int] = []
        #: Rolling hit ratio per sampling window (None = no reads).
        self.hit_ratio: List[Optional[float]] = []
        #: Live simulator events pending at each sample.
        self.pending: List[int] = []
        self._last_reads = 0
        self._last_memory_reads = 0
        self._stopped = False
        self._timer = PeriodicTimer(
            runner.sim, self.interval, self.sample, name="obs-sample"
        )
        self.sample()

    # -- probes ---------------------------------------------------------------
    def sample(self) -> None:
        """Append one sample of every column at the current sim time."""
        runner = self.runner
        self.t.append(runner.sim.now())
        master = runner.master
        delays = runner.iomodel.queue_delay_by_tier
        for tier in runner.hierarchy:
            self.tier_used[tier.name].append(master.tier_used(tier))
            self.queue_delay[tier.name].append(round(delays[tier.name], 6))
        self.inflight.append(runner.iomodel.active_operations())
        metrics = runner.metrics
        reads = metrics.task_reads
        memory_reads = metrics.task_reads_memory
        window_reads = reads - self._last_reads
        if window_reads > 0:
            self.hit_ratio.append(
                round((memory_reads - self._last_memory_reads) / window_reads, 6)
            )
        else:
            self.hit_ratio.append(None)
        self._last_reads = reads
        self._last_memory_reads = memory_reads
        self.pending.append(runner.sim.pending)

    def stop(self) -> None:
        """Cancel the sampling timer and record one final sample."""
        if self._stopped:
            return
        self._stopped = True
        self._timer.stop()
        self.sample()

    # -- views ----------------------------------------------------------------
    @property
    def samples(self) -> int:
        """Number of samples taken so far."""
        return len(self.t)

    def peak_utilization(self) -> Dict[str, float]:
        """Per-tier maximum observed occupancy as a capacity fraction."""
        peaks: Dict[str, float] = {}
        for name, used in self.tier_used.items():
            capacity = self.tier_capacity[name]
            peaks[name] = (
                round(max(used) / capacity, 6) if used and capacity else 0.0
            )
        return peaks

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe columnar view (the ``--timeseries FILE`` payload)."""
        return {
            "interval": self.interval,
            "t": list(self.t),
            "tier_capacity": dict(self.tier_capacity),
            "tier_used": {name: list(col) for name, col in self.tier_used.items()},
            "queue_delay": {
                name: list(col) for name, col in self.queue_delay.items()
            },
            "inflight": list(self.inflight),
            "hit_ratio": list(self.hit_ratio),
            "pending": list(self.pending),
        }
