"""Observability: decision tracing, simulated-time timeseries, exporters.

``repro.obs`` is the zero-overhead-when-off telemetry subsystem.  Every
instrumented component (scheduler, master, placement, manager, monitor,
trainer) carries a class-level ``tracer = None`` attribute; the runner
replaces it with a live :class:`~repro.obs.trace.Tracer` only when the
``obs.trace`` configuration key is set, so a run without tracing
executes exactly the pre-instrumentation code path (a single ``is not
None`` test per hook site, no events scheduled, no RNG consumed) and
stays bit-identical to the committed benchmark baselines.

The package splits into:

* :mod:`repro.obs.trace` — the :class:`Tracer` event bus and its record
  schema (simulated-time-stamped structured decision records);
* :mod:`repro.obs.timeseries` — the :class:`TimeseriesRecorder`
  sampling per-tier occupancy, queue delay, in-flight I/O, and rolling
  hit ratio on a simulated-time interval;
* :mod:`repro.obs.export` — JSONL, Chrome ``chrome://tracing``, and
  Prometheus text-exposition exporters;
* :mod:`repro.obs.summary` — trace post-processing for the
  ``repro trace summarize|explain`` CLI.

See docs/observability.md for the full record schema and cookbook.
"""

from repro.obs.trace import Tracer
from repro.obs.timeseries import TimeseriesRecorder

__all__ = ["Tracer", "TimeseriesRecorder"]
