"""Machine-learning substrate: gradient boosted trees built from scratch.

The paper uses XGBoost v0.60 (binary logistic objective, ``max_depth=20``,
``num_rounds=10``).  No XGBoost binding is available offline, so this
package implements the same algorithm family in pure numpy:

* :mod:`repro.ml.tree` — CART regression trees grown with XGBoost's
  second-order gain and sparsity-aware (missing-value) default directions;
* :mod:`repro.ml.gbt` — Newton boosting under logistic loss, with margin
  continuation for incremental learning;
* :mod:`repro.ml.features` — the Sec 4.1 feature pipeline (time deltas,
  normalization, missing-value encoding);
* :mod:`repro.ml.access_model` — the online file-access predictor with
  reference-time training-point generation and warm-up gating (Sec 4.2-4.4);
* :mod:`repro.ml.metrics` — ROC/AUC/accuracy used by the Sec 7.6 evaluation.
"""

from repro.ml.tree import RegressionTree, TreeParams
from repro.ml.gbt import GBTParams, GradientBoostedTrees
from repro.ml.features import FeatureSpec, build_feature_vector, feature_names
from repro.ml.access_model import FileAccessModel, LearningMode, TrainingPoint
from repro.ml.metrics import (
    accuracy,
    auc,
    confusion_matrix,
    log_loss,
    precision_recall,
    roc_curve,
)
from repro.ml.explain import Explanation, explain_prediction
from repro.ml.serialize import load_model, save_model

__all__ = [
    "TreeParams",
    "RegressionTree",
    "GBTParams",
    "GradientBoostedTrees",
    "FeatureSpec",
    "build_feature_vector",
    "feature_names",
    "FileAccessModel",
    "LearningMode",
    "TrainingPoint",
    "roc_curve",
    "auc",
    "accuracy",
    "precision_recall",
    "confusion_matrix",
    "log_loss",
    "Explanation",
    "explain_prediction",
    "save_model",
    "load_model",
]
