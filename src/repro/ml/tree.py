"""Regression trees grown with XGBoost-style second-order statistics.

Each tree fits gradient/hessian pairs: leaf weight ``-G / (H + lambda)``
and split gain ``1/2 [G_L^2/(H_L+l) + G_R^2/(H_R+l) - G^2/(H+l)] - gamma``
(Chen & Guestrin 2016, Eq. 6-7).  Missing feature values (NaN) are routed
through a learned *default direction* per split, exactly like XGBoost's
sparsity-aware algorithm: both directions are evaluated and the one with
higher gain wins.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass(frozen=True)
class TreeParams:
    """Growth hyperparameters (defaults match XGBoost's)."""

    max_depth: int = 6
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_child_weight: float = 1.0
    min_split_samples: int = 2


class _Node:
    """One tree node; leaves carry a weight, internal nodes a split."""

    __slots__ = (
        "feature",
        "threshold",
        "default_left",
        "left",
        "right",
        "value",
        "is_leaf",
    )

    def __init__(self) -> None:
        self.feature = -1
        self.threshold = 0.0
        self.default_left = True
        self.left: Optional["_Node"] = None
        self.right: Optional["_Node"] = None
        self.value = 0.0
        self.is_leaf = True


@dataclass
class _SplitResult:
    gain: float
    feature: int
    threshold: float
    default_left: bool


def _leaf_weight(grad_sum: float, hess_sum: float, reg_lambda: float) -> float:
    return -grad_sum / (hess_sum + reg_lambda)


def _score(grad_sum: float, hess_sum: float, reg_lambda: float) -> float:
    return grad_sum * grad_sum / (hess_sum + reg_lambda)


class RegressionTree:
    """A single CART tree fit to (gradient, hessian) targets."""

    def __init__(self, params: Optional[TreeParams] = None) -> None:
        self.params = params or TreeParams()
        self._root: Optional[_Node] = None
        self.n_features = 0
        self.node_count = 0

    # -- training ----------------------------------------------------------
    def fit(
        self, X: np.ndarray, grad: np.ndarray, hess: np.ndarray
    ) -> "RegressionTree":
        """Grow the tree on feature matrix ``X`` (NaN = missing)."""
        X = np.asarray(X, dtype=float)
        grad = np.asarray(grad, dtype=float)
        hess = np.asarray(hess, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if len(grad) != len(X) or len(hess) != len(X):
            raise ValueError("grad/hess length mismatch with X")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        self.n_features = X.shape[1]
        self.node_count = 0
        indices = np.arange(len(X))
        self._root = self._build(X, grad, hess, indices, depth=0)
        return self

    def _build(
        self,
        X: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        indices: np.ndarray,
        depth: int,
    ) -> _Node:
        node = _Node()
        self.node_count += 1
        g_sum = float(grad[indices].sum())
        h_sum = float(hess[indices].sum())
        node.value = _leaf_weight(g_sum, h_sum, self.params.reg_lambda)
        if (
            depth >= self.params.max_depth
            or len(indices) < self.params.min_split_samples
        ):
            return node
        split = self._best_split(X, grad, hess, indices, g_sum, h_sum)
        if split is None or split.gain <= 0.0:
            return node
        values = X[indices, split.feature]
        missing = np.isnan(values)
        goes_left = values < split.threshold
        if split.default_left:
            goes_left = goes_left | missing
        else:
            goes_left = goes_left & ~missing
        left_idx = indices[goes_left]
        right_idx = indices[~goes_left]
        if len(left_idx) == 0 or len(right_idx) == 0:
            return node
        node.is_leaf = False
        node.feature = split.feature
        node.threshold = split.threshold
        node.default_left = split.default_left
        node.left = self._build(X, grad, hess, left_idx, depth + 1)
        node.right = self._build(X, grad, hess, right_idx, depth + 1)
        return node

    def _best_split(
        self,
        X: np.ndarray,
        grad: np.ndarray,
        hess: np.ndarray,
        indices: np.ndarray,
        g_sum: float,
        h_sum: float,
    ) -> Optional[_SplitResult]:
        params = self.params
        parent_score = _score(g_sum, h_sum, params.reg_lambda)
        best: Optional[_SplitResult] = None
        g = grad[indices]
        h = hess[indices]
        for feature in range(self.n_features):
            values = X[indices, feature]
            present = ~np.isnan(values)
            n_present = int(present.sum())
            if n_present < 2:
                continue
            vals = values[present]
            order = np.argsort(vals, kind="stable")
            vals_sorted = vals[order]
            g_sorted = g[present][order]
            h_sorted = h[present][order]
            g_missing = float(g.sum() - g_sorted.sum())
            h_missing = float(h.sum() - h_sorted.sum())
            # Prefix sums: left split of position i contains samples [0, i).
            g_cum = np.cumsum(g_sorted)
            h_cum = np.cumsum(h_sorted)
            # Candidate boundaries between distinct consecutive values.
            distinct = vals_sorted[1:] != vals_sorted[:-1]
            positions = np.nonzero(distinct)[0] + 1
            if len(positions) == 0:
                continue
            g_left = g_cum[positions - 1]
            h_left = h_cum[positions - 1]
            g_right = g_cum[-1] - g_left
            h_right = h_cum[-1] - h_left
            thresholds = 0.5 * (vals_sorted[positions - 1] + vals_sorted[positions])
            lam = params.reg_lambda
            # Evaluate both default directions for the missing values.
            for default_left in (True, False):
                gl = g_left + (g_missing if default_left else 0.0)
                hl = h_left + (h_missing if default_left else 0.0)
                gr = g_right + (0.0 if default_left else g_missing)
                hr = h_right + (0.0 if default_left else h_missing)
                gains = (
                    0.5 * (gl * gl / (hl + lam) + gr * gr / (hr + lam) - parent_score)
                    - params.gamma
                )
                valid = (hl >= params.min_child_weight) & (
                    hr >= params.min_child_weight
                )
                if not valid.any():
                    continue
                gains = np.where(valid, gains, -np.inf)
                pick = int(np.argmax(gains))
                gain = float(gains[pick])
                if best is None or gain > best.gain:
                    best = _SplitResult(
                        gain=gain,
                        feature=feature,
                        threshold=float(thresholds[pick]),
                        default_left=default_left,
                    )
        return best

    # -- prediction -----------------------------------------------------------
    def predict(self, X: np.ndarray) -> np.ndarray:
        """Leaf weights for each row of ``X`` (vectorized traversal)."""
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        out = np.zeros(len(X))
        self._predict_into(self._root, X, np.arange(len(X)), out)
        return out

    def _predict_into(
        self, node: _Node, X: np.ndarray, indices: np.ndarray, out: np.ndarray
    ) -> None:
        if node.is_leaf:
            out[indices] = node.value
            return
        values = X[indices, node.feature]
        missing = np.isnan(values)
        goes_left = values < node.threshold
        if node.default_left:
            goes_left = goes_left | missing
        else:
            goes_left = goes_left & ~missing
        assert node.left is not None and node.right is not None
        left_idx = indices[goes_left]
        right_idx = indices[~goes_left]
        if len(left_idx):
            self._predict_into(node.left, X, left_idx, out)
        if len(right_idx):
            self._predict_into(node.right, X, right_idx, out)

    # -- introspection -----------------------------------------------------------
    @property
    def depth(self) -> int:
        """Actual depth of the grown tree (0 for a stump)."""

        def walk(node: Optional[_Node]) -> int:
            if node is None or node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def feature_usage(self) -> List[int]:
        """How many splits use each feature (crude importance measure)."""
        counts = [0] * self.n_features
        stack = [self._root] if self._root is not None else []
        while stack:
            node = stack.pop()
            if node is None or node.is_leaf:
                continue
            counts[node.feature] += 1
            stack.append(node.left)
            stack.append(node.right)
        return counts
