"""Feature engineering for file-access prediction (paper Sec 4.1).

A file's raw signal is its size, creation time, and last ``k`` access
timestamps.  Timestamps make poor features (they grow without bound), so
they are converted to *time deltas* relative to a **reference time**
``t_r`` separating the perceived past from the perceived future:

* ``t_r - creation_time``
* ``t_r - most_recent_access``          (missing if never accessed)
* ``oldest_tracked_access - creation``  (missing if never accessed)
* the ``k-1`` deltas between consecutive tracked accesses, ordered
  most-recent-first (missing-padded), so "the latest re-access gap"
  always sits at the same feature index regardless of how many
  accesses a file has — which is what makes periodic patterns
  splittable

plus the file size.  All deltas are normalized by a maximum interval and
clipped to [0, 1]; the size is normalized by a maximum file size.
Missing entries are encoded as NaN, which the tree learner routes through
learned default directions (as XGBoost does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.common.units import DAYS, GB


@dataclass(frozen=True)
class FeatureSpec:
    """Shape and normalization of the feature vector.

    ``k`` matches the paper's default of 12 tracked access times; the
    ablation of Fig 15 varies it to 6 and 18.  ``include_size`` /
    ``include_creation`` support the same ablation's "w/out filesize" and
    "w/out creation" variants.

    ``include_tier`` adds the file's current tier index as a feature,
    normalized by ``num_tiers`` (sized from the cluster's hierarchy via
    :meth:`for_hierarchy`).  It is off by default so the paper's
    feature set — and its experiments — stay bit-identical.
    """

    k: int = 12
    norm_interval: float = 2 * DAYS
    max_file_size: int = 4 * GB
    include_size: bool = True
    include_creation: bool = True
    include_tier: bool = False
    num_tiers: int = 3

    @classmethod
    def for_hierarchy(cls, hierarchy, **overrides) -> "FeatureSpec":
        """A spec with the tier feature sized from ``hierarchy``.

        ``hierarchy`` is a :class:`repro.cluster.hardware.TierHierarchy`
        (anything with ``len()``); extra keyword arguments override the
        remaining fields.
        """
        overrides.setdefault("include_tier", True)
        overrides.setdefault("num_tiers", len(hierarchy))
        return cls(**overrides)

    @property
    def num_features(self) -> int:
        n = 2 + (self.k - 1)  # ref-last, oldest-creation, consecutive deltas
        if self.include_size:
            n += 1
        if self.include_creation:
            n += 1
        if self.include_tier:
            n += 1
        return n


def feature_names(spec: FeatureSpec) -> List[str]:
    """Human-readable names aligned with :func:`build_feature_vector`."""
    names: List[str] = []
    if spec.include_size:
        names.append("size")
    if spec.include_creation:
        names.append("ref_minus_creation")
    if spec.include_tier:
        names.append("tier_level")
    names.append("ref_minus_last_access")
    names.append("oldest_access_minus_creation")
    # access_delta_1 is the most recent inter-access gap.
    names.extend(f"access_delta_{i}" for i in range(1, spec.k))
    return names


def build_feature_vector(
    spec: FeatureSpec,
    size: int,
    creation_time: float,
    access_times: Sequence[float],
    reference_time: float,
    tier_level: Optional[int] = None,
) -> np.ndarray:
    """Build the normalized feature vector at ``reference_time``.

    ``access_times`` may be unsorted and may include accesses after the
    reference time; only the last ``k`` accesses at or before it are
    used.  Raises ``ValueError`` if the reference time precedes creation.
    ``tier_level`` (the file's best tier's level, 0 = fastest) is only
    consumed when ``spec.include_tier`` is set; NaN when unknown.
    """
    if reference_time < creation_time:
        raise ValueError("reference time before file creation")
    past = sorted(t for t in access_times if t <= reference_time)
    past = past[-spec.k :]

    def norm(delta: float) -> float:
        return min(max(delta, 0.0) / spec.norm_interval, 1.0)

    values: List[float] = []
    if spec.include_size:
        values.append(min(size / spec.max_file_size, 1.0))
    if spec.include_creation:
        values.append(norm(reference_time - creation_time))
    if spec.include_tier:
        if tier_level is None:
            values.append(np.nan)
        else:
            # Normalize by the deepest level so 2- and 5-tier clusters
            # both map onto [0, 1].
            values.append(min(tier_level / max(spec.num_tiers - 1, 1), 1.0))
    if past:
        values.append(norm(reference_time - past[-1]))
        values.append(norm(past[0] - creation_time))
    else:
        values.append(np.nan)
        values.append(np.nan)
    deltas = [norm(b - a) for a, b in zip(past, past[1:])]
    deltas.reverse()  # most recent gap first
    padding = [np.nan] * ((spec.k - 1) - len(deltas))
    values.extend(deltas + padding)
    return np.asarray(values, dtype=float)


def label_for_window(
    access_times: Sequence[float], reference_time: float, window: float
) -> int:
    """Class label: 1 if the file is accessed in ``(t_r, t_r + window]``."""
    return int(any(reference_time < t <= reference_time + window for t in access_times))
