"""Model serialization: save/load boosted ensembles as JSON.

A deployed tiering system restarts; its access models should not have to
relearn from scratch (the paper's warm-up gate would block predictions
for the first portion of every run).  The format is a plain JSON
document — versioned, human-inspectable, and stable across platforms.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Any, Dict

from repro.ml.gbt import GBTParams, GradientBoostedTrees
from repro.ml.tree import RegressionTree, TreeParams, _Node

FORMAT_VERSION = 1


def _node_to_dict(node: _Node) -> Dict[str, Any]:
    if node.is_leaf:
        return {"leaf": node.value}
    assert node.left is not None and node.right is not None
    return {
        "feature": node.feature,
        "threshold": node.threshold,
        "default_left": node.default_left,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(data: Dict[str, Any]) -> _Node:
    node = _Node()
    if "leaf" in data:
        node.value = float(data["leaf"])
        return node
    node.is_leaf = False
    node.feature = int(data["feature"])
    node.threshold = float(data["threshold"])
    node.default_left = bool(data["default_left"])
    node.left = _node_from_dict(data["left"])
    node.right = _node_from_dict(data["right"])
    return node


def _count_nodes(data: Dict[str, Any]) -> int:
    if "leaf" in data:
        return 1
    return 1 + _count_nodes(data["left"]) + _count_nodes(data["right"])


def tree_to_dict(tree: RegressionTree) -> Dict[str, Any]:
    if tree._root is None:
        raise ValueError("cannot serialize an unfitted tree")
    return {
        "n_features": tree.n_features,
        "params": asdict(tree.params),
        "root": _node_to_dict(tree._root),
    }


def tree_from_dict(data: Dict[str, Any]) -> RegressionTree:
    tree = RegressionTree(TreeParams(**data["params"]))
    tree.n_features = int(data["n_features"])
    tree._root = _node_from_dict(data["root"])
    tree.node_count = _count_nodes(data["root"])
    return tree


def model_to_dict(model: GradientBoostedTrees) -> Dict[str, Any]:
    """Serialize an ensemble (metadata + all trees)."""
    return {
        "format_version": FORMAT_VERSION,
        "params": asdict(model.params),
        "trees": [tree_to_dict(t) for t in model.trees],
    }


def model_from_dict(data: Dict[str, Any]) -> GradientBoostedTrees:
    """Rebuild an ensemble serialized by :func:`model_to_dict`."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported model format version: {version!r}")
    params = GBTParams(**data["params"])
    model = GradientBoostedTrees(params=params)
    model.trees = [tree_from_dict(t) for t in data["trees"]]
    return model


def save_model(model: GradientBoostedTrees, path: str) -> None:
    """Write the model to ``path`` as JSON."""
    with open(path, "w") as handle:
        json.dump(model_to_dict(model), handle)


def load_model(path: str) -> GradientBoostedTrees:
    """Load a model previously written by :func:`save_model`."""
    with open(path) as handle:
        return model_from_dict(json.load(handle))
