"""Per-prediction explanations via tree-path attribution.

The paper (Sec 4.3) notes ensembles are harder to interpret and points
at feature-importance / per-prediction explanation methods.  This module
implements Saabas-style path attribution, the tree-native version of
those ideas: walking a sample down each tree, every split's change in
expected leaf value is credited to the split feature.  Contributions sum
exactly to ``margin - bias``, so explanations are faithful by
construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.ml.gbt import GradientBoostedTrees, sigmoid
from repro.ml.tree import RegressionTree, _Node


def _mean_value(node: _Node) -> float:
    """Expected leaf value of the subtree (unweighted leaf average).

    An unweighted average over leaves is a standard approximation when
    training-sample counts are not stored per node; attribution still
    telescopes exactly because both child and parent use the same
    definition.
    """
    if node.is_leaf:
        return node.value
    assert node.left is not None and node.right is not None
    return 0.5 * (_mean_value(node.left) + _mean_value(node.right))


def tree_contributions(tree: RegressionTree, x: np.ndarray) -> Dict[int, float]:
    """Per-feature margin contributions of one tree for sample ``x``."""
    contributions: Dict[int, float] = {}
    node = tree._root
    if node is None:
        raise ValueError("tree is not fitted")
    current = _mean_value(node)
    while not node.is_leaf:
        value = x[node.feature]
        missing = np.isnan(value)
        goes_left = (value < node.threshold) or (missing and node.default_left)
        if missing and not node.default_left:
            goes_left = False
        child = node.left if goes_left else node.right
        assert child is not None
        child_value = _mean_value(child)
        contributions[node.feature] = (
            contributions.get(node.feature, 0.0) + child_value - current
        )
        current = child_value
        node = child
    return contributions


@dataclass
class Explanation:
    """One explained prediction."""

    probability: float
    bias: float  # margin before any feature contribution
    contributions: Dict[int, float]  # feature index -> margin delta

    def top_features(
        self, names: Optional[Sequence[str]] = None, limit: int = 5
    ) -> List[tuple]:
        """(name, contribution) pairs sorted by |contribution|."""
        items = sorted(
            self.contributions.items(), key=lambda kv: -abs(kv[1])
        )[:limit]
        if names is None:
            return [(f"f{index}", value) for index, value in items]
        return [(names[index], value) for index, value in items]


def explain_prediction(
    model: GradientBoostedTrees, x: np.ndarray
) -> Explanation:
    """Decompose one prediction into per-feature margin contributions.

    The invariant ``bias + sum(contributions) == margin`` holds exactly
    (up to float error); the probability is ``sigmoid(margin)``.
    """
    x = np.asarray(x, dtype=float).reshape(-1)
    bias = model.base_margin
    total: Dict[int, float] = {}
    lr = model.params.learning_rate
    for tree in model.trees:
        root_mean = _mean_value(tree._root)
        bias += lr * root_mean
        for feature, value in tree_contributions(tree, x).items():
            total[feature] = total.get(feature, 0.0) + lr * value
    margin = bias + sum(total.values())
    return Explanation(
        probability=float(sigmoid(np.array([margin]))[0]),
        bias=bias,
        contributions=total,
    )
