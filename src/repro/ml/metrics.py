"""Binary-classification metrics: ROC/AUC, accuracy, and friends.

Implemented from scratch (no sklearn offline) and used by the Sec 7.6
model evaluation benchmarks.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np


def _validate(y_true: np.ndarray, y_score: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true, dtype=float)
    y_score = np.asarray(y_score, dtype=float)
    if y_true.shape != y_score.shape:
        raise ValueError("y_true and y_score must have the same shape")
    if len(y_true) == 0:
        raise ValueError("empty input")
    if not np.all((y_true == 0) | (y_true == 1)):
        raise ValueError("y_true must be binary (0/1)")
    return y_true, y_score


def roc_curve(
    y_true: np.ndarray, y_score: np.ndarray
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """ROC curve points: (fpr, tpr, thresholds), thresholds decreasing.

    Standard construction: sort by score descending and sweep the
    discrimination threshold across distinct score values.
    """
    y_true, y_score = _validate(y_true, y_score)
    order = np.argsort(-y_score, kind="stable")
    y_sorted = y_true[order]
    scores_sorted = y_score[order]
    tps = np.cumsum(y_sorted)
    fps = np.cumsum(1.0 - y_sorted)
    # Keep only the last index of each run of equal scores.
    distinct = np.r_[scores_sorted[1:] != scores_sorted[:-1], True]
    tps = tps[distinct]
    fps = fps[distinct]
    thresholds = scores_sorted[distinct]
    total_pos = y_true.sum()
    total_neg = len(y_true) - total_pos
    tpr = tps / total_pos if total_pos > 0 else np.zeros_like(tps)
    fpr = fps / total_neg if total_neg > 0 else np.zeros_like(fps)
    # Prepend the (0, 0) origin.
    fpr = np.r_[0.0, fpr]
    tpr = np.r_[0.0, tpr]
    thresholds = np.r_[np.inf, thresholds]
    return fpr, tpr, thresholds


def auc(y_true: np.ndarray, y_score: np.ndarray) -> float:
    """Area under the ROC curve (trapezoidal rule)."""
    fpr, tpr, _ = roc_curve(y_true, y_score)
    return float(np.trapezoid(tpr, fpr))


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    if len(y_true) == 0:
        raise ValueError("empty input")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(
    y_true: np.ndarray, y_pred: np.ndarray
) -> Tuple[int, int, int, int]:
    """Return (tn, fp, fn, tp)."""
    y_true = np.asarray(y_true).astype(bool)
    y_pred = np.asarray(y_pred).astype(bool)
    tp = int(np.sum(y_true & y_pred))
    tn = int(np.sum(~y_true & ~y_pred))
    fp = int(np.sum(~y_true & y_pred))
    fn = int(np.sum(y_true & ~y_pred))
    return tn, fp, fn, tp


def precision_recall(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[float, float]:
    """(precision, recall); 0.0 when undefined."""
    _, fp, fn, tp = confusion_matrix(y_true, y_pred)
    precision = tp / (tp + fp) if (tp + fp) > 0 else 0.0
    recall = tp / (tp + fn) if (tp + fn) > 0 else 0.0
    return precision, recall


def log_loss(y_true: np.ndarray, y_prob: np.ndarray, eps: float = 1e-12) -> float:
    """Mean negative log-likelihood of binary predictions."""
    y_true, y_prob = _validate(y_true, y_prob)
    p = np.clip(y_prob, eps, 1.0 - eps)
    return float(-np.mean(y_true * np.log(p) + (1 - y_true) * np.log(1 - p)))
