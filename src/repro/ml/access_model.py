"""The online file-access predictor (paper Secs 4.2-4.4).

:class:`FileAccessModel` owns a gradient-boosted-tree classifier for one
class-window size ``w`` (30 minutes for the upgrade model, 6 hours for
the downgrade model) and handles:

* **training-point generation** — at time ``t_c``, set the reference time
  ``t_r = t_c - w``, build features from accesses at or before ``t_r``,
  and label by whether the file was accessed in ``(t_r, t_c]``;
* **incremental learning** — batches of new points extend the ensemble
  via margin continuation (optionally mixed with a replay reservoir of
  older points for stability);
* **warm-up gating** — every ``eval_every``-th point is first used to
  *evaluate* the current model (predict, compare, record) and only then
  for training; predictions are served only once the rolling error rate
  drops below a threshold (Sec 4.4);
* **accuracy history** — the timestamped evaluation outcomes behind the
  Fig 16/17 learning-mode and adaptation studies.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Sequence, Tuple

import numpy as np

from repro.ml.features import FeatureSpec, build_feature_vector, label_for_window
from repro.ml.gbt import GBTParams, GradientBoostedTrees


class LearningMode(enum.Enum):
    """How the model consumes new training data over time (Fig 16)."""

    #: Extend the ensemble with new rounds on every full batch.
    INCREMENTAL = "incremental"
    #: Accumulate data; refit only when :meth:`FileAccessModel.retrain`
    #: is called (the paper retrains hourly).
    RETRAIN = "retrain"
    #: Fit once on the data seen so far (:meth:`train_now`), never again.
    ONESHOT = "oneshot"


@dataclass(frozen=True)
class TrainingPoint:
    """One (features, label) pair stamped with its generation time."""

    features: np.ndarray
    label: int
    timestamp: float


#: GBT hyperparameters the paper selected by grid search (Sec 4.3).
PAPER_GBT_PARAMS = GBTParams(num_rounds=10, max_depth=20, max_trees=120)


class FileAccessModel:
    """Predicts whether a file will be accessed within the next ``window``."""

    def __init__(
        self,
        window: float,
        spec: Optional[FeatureSpec] = None,
        gbt_params: Optional[GBTParams] = None,
        mode: LearningMode = LearningMode.INCREMENTAL,
        batch_size: int = 64,
        eval_every: int = 10,
        eval_window: int = 200,
        # The paper gates on an error rate of e.g. 0.01 (Sec 4.4), which
        # its production traces support; the synthetic workloads here
        # carry more irreducible label noise, so the default gate only
        # rejects models that are useless for *ranking* files.
        ready_error_threshold: float = 0.2,
        min_eval_points: int = 20,
        replay_size: int = 2000,
        replay_ratio: float = 1.0,
        seed: Optional[int] = 7,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        self.window = float(window)
        self.spec = spec or FeatureSpec()
        self.model = GradientBoostedTrees(params=gbt_params or PAPER_GBT_PARAMS)
        self.mode = mode
        self.batch_size = batch_size
        self.eval_every = eval_every
        self.ready_error_threshold = ready_error_threshold
        self.min_eval_points = min_eval_points
        self.replay_ratio = replay_ratio
        self._rng = np.random.default_rng(seed)
        self._batch: List[TrainingPoint] = []
        self._history: List[TrainingPoint] = []
        self._replay: Deque[TrainingPoint] = deque(maxlen=replay_size)
        self._recent_evals: Deque[bool] = deque(maxlen=eval_window)
        self.accuracy_history: List[Tuple[float, bool]] = []
        self.points_seen = 0
        self.trainings = 0

    # -- training-point generation (Sec 4.2) ---------------------------------
    def make_training_point(
        self,
        size: int,
        creation_time: float,
        access_times: Sequence[float],
        now: float,
        tier_level: Optional[int] = None,
    ) -> Optional[TrainingPoint]:
        """Generate a point with reference time ``now - window``.

        Returns None when the file did not exist at the reference time
        (no past to featurize).  ``tier_level`` feeds the optional tier
        feature (ignored unless ``spec.include_tier``).
        """
        reference = now - self.window
        if reference < creation_time:
            return None
        features = build_feature_vector(
            self.spec, size, creation_time, access_times, reference,
            tier_level=tier_level,
        )
        label = label_for_window(access_times, reference, self.window)
        return TrainingPoint(features=features, label=label, timestamp=now)

    # -- data ingestion ---------------------------------------------------------
    def add_observation(
        self,
        size: int,
        creation_time: float,
        access_times: Sequence[float],
        now: float,
        tier_level: Optional[int] = None,
    ) -> Optional[TrainingPoint]:
        """Generate and ingest a training point for one file at ``now``."""
        point = self.make_training_point(
            size, creation_time, access_times, now, tier_level=tier_level
        )
        if point is not None:
            self.add_point(point)
        return point

    def add_point(self, point: TrainingPoint) -> None:
        """Ingest a pre-built training point (evaluation-first, then train)."""
        self.points_seen += 1
        if self.model.is_fitted and self.points_seen % self.eval_every == 0:
            prob = self.model.predict_one(point.features)
            correct = (prob >= 0.5) == bool(point.label)
            self._recent_evals.append(correct)
            self.accuracy_history.append((point.timestamp, correct))
        self._batch.append(point)
        self._history.append(point)
        if (
            self.mode is LearningMode.INCREMENTAL
            and len(self._batch) >= self.batch_size
        ):
            self._train_incremental_batch()

    def _train_incremental_batch(self) -> None:
        batch = list(self._batch)
        self._batch.clear()
        replay_count = int(len(batch) * self.replay_ratio)
        if replay_count and len(self._replay):
            picks = self._rng.choice(
                len(self._replay),
                size=min(replay_count, len(self._replay)),
                replace=False,
            )
            batch.extend(self._replay[int(i)] for i in picks)
        X = np.vstack([p.features for p in batch])
        y = np.array([p.label for p in batch])
        if self.model.is_fitted:
            self.model.fit_increment(X, y)
        else:
            if len(np.unique(y)) < 2:
                # Can't bootstrap a classifier from a single class; wait.
                self._batch = batch[: self.batch_size]
                return
            self.model.fit(X, y)
        self.trainings += 1
        for point in batch[: self.batch_size]:
            self._replay.append(point)
        if self.model.needs_compaction:
            self._compact()

    def _compact(self) -> None:
        """Refit from scratch on the replay reservoir.

        Bounds the ensemble size (prediction latency and the ~200KB
        memory footprint of Sec 7.7) without corrupting the additive
        model the way dropping trees would.
        """
        if not self._replay:
            return
        X = np.vstack([p.features for p in self._replay])
        y = np.array([p.label for p in self._replay])
        if len(np.unique(y)) < 2:
            return
        # A handful of extra rounds: the reservoir holds much more data
        # than one batch, so a single fit recovers the accumulated model.
        self.model.fit(X, y)
        self.model.fit_increment(X, y, num_rounds=self.model.params.num_rounds)

    # -- explicit training (RETRAIN / ONESHOT modes) -----------------------------
    def train_now(self) -> bool:
        """Fit from scratch on everything seen so far.

        Returns False when the history is still degenerate (single class).
        """
        if not self._history:
            return False
        y = np.array([p.label for p in self._history])
        if len(np.unique(y)) < 2:
            return False
        X = np.vstack([p.features for p in self._history])
        self.model.fit(X, y)
        self.trainings += 1
        self._batch.clear()
        return True

    def retrain(self) -> bool:
        """Alias for :meth:`train_now` (the hourly-retrain baseline)."""
        return self.train_now()

    # -- prediction (Sec 4.4) ------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        return self.model.is_fitted

    @property
    def rolling_error_rate(self) -> float:
        """Error rate over the recent evaluation window (1.0 if no evals)."""
        if not self._recent_evals:
            return 1.0
        return 1.0 - (sum(self._recent_evals) / len(self._recent_evals))

    @property
    def ready(self) -> bool:
        """True once warm-up completed: fitted, evaluated, low error."""
        return (
            self.model.is_fitted
            and len(self._recent_evals) >= self.min_eval_points
            and self.rolling_error_rate <= self.ready_error_threshold
        )

    def predict_probability(
        self,
        size: int,
        creation_time: float,
        access_times: Sequence[float],
        now: float,
        tier_level: Optional[int] = None,
    ) -> Optional[float]:
        """P(accessed within ``window`` after ``now``), or None if not ready.

        The reference time equals ``now`` for predictions (Sec 4.4).
        """
        if not self.ready:
            return None
        features = build_feature_vector(
            self.spec, size, creation_time, access_times, now,
            tier_level=tier_level,
        )
        return self.model.predict_one(features)

    # -- dataset export (for offline evaluation experiments) -------------------------
    def dataset(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """All points seen so far as (X, y, timestamps) arrays."""
        if not self._history:
            raise ValueError("no training points collected")
        X = np.vstack([p.features for p in self._history])
        y = np.array([p.label for p in self._history])
        t = np.array([p.timestamp for p in self._history])
        return X, y, t
