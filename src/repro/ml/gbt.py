"""Gradient boosted trees with logistic loss and incremental continuation.

Implements the training loop of XGBoost for binary classification:
per round, compute first/second-order gradients of the logistic loss at
the current margin, fit a :class:`RegressionTree` to them, and add the
tree scaled by the learning rate.

Incremental learning (paper Sec 4.2) is supported through
:meth:`GradientBoostedTrees.fit_increment`: new boosting rounds are
trained on a fresh batch, using the existing ensemble's margin as the
starting point — the standard "continue training from a model" mode of
XGBoost.  ``max_trees`` only *reports* when the ensemble has outgrown the
target size (``needs_compaction``); dropping trees from a boosted
ensemble would corrupt it (later trees correct the margins of earlier
ones), so the owning :class:`~repro.ml.access_model.FileAccessModel`
compacts by refitting on its replay reservoir instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from repro.ml.tree import RegressionTree, TreeParams


def sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=float)
    pos = x >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-x[pos]))
    ex = np.exp(x[~pos])
    out[~pos] = ex / (1.0 + ex)
    return out


@dataclass(frozen=True)
class GBTParams:
    """Boosting hyperparameters.

    The paper's grid search (Sec 4.3) selected ``max_depth=20`` and
    ``num_rounds=10`` for both workloads; those are the defaults used by
    the access models.  The class defaults here are XGBoost's generic
    defaults so the substrate is reusable.
    """

    num_rounds: int = 10
    learning_rate: float = 0.3
    max_depth: int = 6
    reg_lambda: float = 1.0
    gamma: float = 0.0
    min_child_weight: float = 1.0
    base_score: float = 0.5
    max_trees: Optional[int] = None

    def tree_params(self) -> TreeParams:
        return TreeParams(
            max_depth=self.max_depth,
            reg_lambda=self.reg_lambda,
            gamma=self.gamma,
            min_child_weight=self.min_child_weight,
        )


@dataclass
class GradientBoostedTrees:
    """An additive ensemble of regression trees for binary classification."""

    params: GBTParams = field(default_factory=GBTParams)
    trees: List[RegressionTree] = field(default_factory=list)

    # -- training ----------------------------------------------------------
    def fit(self, X: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        """Train from scratch, replacing any existing trees."""
        self.trees = []
        return self.fit_increment(X, y, num_rounds=self.params.num_rounds)

    def fit_increment(
        self, X: np.ndarray, y: np.ndarray, num_rounds: Optional[int] = None
    ) -> "GradientBoostedTrees":
        """Add ``num_rounds`` boosting rounds trained on ``(X, y)``.

        The existing ensemble provides the starting margin, so new trees
        correct the current model on the new data — incremental learning
        in the sense of Sec 4.2.
        """
        X = np.asarray(X, dtype=float)
        y = np.asarray(y, dtype=float)
        if X.ndim != 2:
            raise ValueError("X must be 2-dimensional")
        if len(X) != len(y):
            raise ValueError("X and y length mismatch")
        if len(X) == 0:
            raise ValueError("cannot fit on empty data")
        if not np.all((y == 0) | (y == 1)):
            raise ValueError("labels must be binary (0/1)")
        rounds = self.params.num_rounds if num_rounds is None else num_rounds
        margin = self.predict_margin(X)
        tree_params = self.params.tree_params()
        for _ in range(rounds):
            prob = sigmoid(margin)
            grad = prob - y
            hess = np.maximum(prob * (1.0 - prob), 1e-16)
            tree = RegressionTree(tree_params).fit(X, grad, hess)
            self.trees.append(tree)
            margin = margin + self.params.learning_rate * tree.predict(X)
        return self

    @property
    def needs_compaction(self) -> bool:
        """True when the ensemble exceeds its target size (see module doc)."""
        cap = self.params.max_trees
        return cap is not None and len(self.trees) > cap

    # -- prediction -----------------------------------------------------------
    @property
    def base_margin(self) -> float:
        p = self.params.base_score
        return float(np.log(p / (1.0 - p)))

    def predict_margin(self, X: np.ndarray) -> np.ndarray:
        """Raw additive score (log-odds) for each row."""
        X = np.asarray(X, dtype=float)
        if X.ndim == 1:
            X = X.reshape(1, -1)
        margin = np.full(len(X), self.base_margin)
        for tree in self.trees:
            margin += self.params.learning_rate * tree.predict(X)
        return margin

    def predict_proba(self, X: np.ndarray) -> np.ndarray:
        """P(y=1) for each row."""
        return sigmoid(self.predict_margin(X))

    def predict_one(self, x: np.ndarray) -> float:
        """P(y=1) for a single feature vector."""
        return float(self.predict_proba(np.asarray(x).reshape(1, -1))[0])

    def predict(self, X: np.ndarray, threshold: float = 0.5) -> np.ndarray:
        """Hard labels at the given discrimination threshold."""
        return (self.predict_proba(X) >= threshold).astype(int)

    # -- introspection -----------------------------------------------------------
    @property
    def num_trees(self) -> int:
        return len(self.trees)

    @property
    def is_fitted(self) -> bool:
        return bool(self.trees)

    def feature_usage(self) -> List[int]:
        """Aggregate split counts per feature across all trees."""
        if not self.trees:
            return []
        counts = [0] * self.trees[0].n_features
        for tree in self.trees:
            for i, c in enumerate(tree.feature_usage()):
                counts[i] += c
        return counts

    def approx_size_bytes(self) -> int:
        """Rough in-memory footprint: nodes x 5 fields x 8 bytes."""
        nodes = sum(t.node_count for t in self.trees)
        return nodes * 5 * 8
