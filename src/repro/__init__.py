"""Octopus++ reproduction: automated tiered storage management.

A from-scratch Python implementation of the system described in
"Automating Distributed Tiered Storage Management in Cluster Computing"
(Herodotou & Kakoulli, VLDB 2019): a simulated tiered distributed file
system (OctopusFS-style), the pluggable downgrade/upgrade policy
framework, gradient-boosted-tree access prediction, the FB/CMU workload
synthesizers, and the benchmark harness reproducing every table and
figure of the paper's evaluation.

Quick start::

    from repro.workload import synthesize_trace, FB_PROFILE
    from repro.engine import SystemConfig, run_workload

    trace = synthesize_trace(FB_PROFILE, seed=42)
    result = run_workload(
        trace,
        SystemConfig(label="XGB", placement="octopus",
                     downgrade="xgb", upgrade="xgb"),
    )
    print(result.summary())
"""

__version__ = "1.0.0"
