"""Sec 4.3: the offline hyperparameter grid search.

The paper reports that only two XGBoost knobs noticeably affect
performance — the maximum tree depth ``d`` and the number of boosting
rounds ``r`` — and that a grid search over training data from both
workload traces selected ``d = 20`` and ``r = 10``.  This harness
regenerates that search: for every (d, r) cell it trains on the first
four hours of a trace-derived observation stream, evaluates AUC and
accuracy on the last hour, and records the training cost.

The selection rule mirrors the paper's: the cheapest cell whose mean AUC
across both workloads is within half a point of the grid's best.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.common.units import HOURS
from repro.ml.gbt import GBTParams, GradientBoostedTrees
from repro.ml.metrics import accuracy, auc
from repro.experiments.common import (
    ExperimentScale,
    FULL_SCALE,
    format_table,
    make_trace,
)
from repro.experiments.datasets import (
    generate_observation_stream,
    split_by_time,
    to_arrays,
)
from repro.experiments.model_eval import DOWNGRADE_WINDOW

#: The paper's chosen operating point.
PAPER_DEPTH = 20
PAPER_ROUNDS = 10

DEFAULT_DEPTHS = (4, 8, 12, 20)
DEFAULT_ROUNDS = (5, 10, 20)


@dataclass(frozen=True)
class GridCell:
    """One (depth, rounds) evaluation on one workload."""

    workload: str
    max_depth: int
    num_rounds: int
    auc: float
    accuracy: float
    train_seconds: float
    trees_nodes: int


@dataclass
class TuningResult:
    cells: List[GridCell] = field(default_factory=list)
    #: (depth, rounds) selected by the paper's rule.
    selected: Tuple[int, int] = (0, 0)

    def mean_auc(self) -> Dict[Tuple[int, int], float]:
        by_key: Dict[Tuple[int, int], List[float]] = {}
        for cell in self.cells:
            by_key.setdefault((cell.max_depth, cell.num_rounds), []).append(cell.auc)
        return {k: float(np.mean(v)) for k, v in by_key.items()}

    def mean_cost(self) -> Dict[Tuple[int, int], float]:
        by_key: Dict[Tuple[int, int], List[float]] = {}
        for cell in self.cells:
            by_key.setdefault((cell.max_depth, cell.num_rounds), []).append(
                cell.train_seconds
            )
        return {k: float(np.mean(v)) for k, v in by_key.items()}


def run_tuning(
    depths: Sequence[int] = DEFAULT_DEPTHS,
    rounds: Sequence[int] = DEFAULT_ROUNDS,
    scale: ExperimentScale = FULL_SCALE,
) -> TuningResult:
    """Run the grid over both workloads and apply the selection rule."""
    result = TuningResult()
    datasets = {}
    for workload in ("FB", "CMU"):
        trace = make_trace(workload, scale, drift=False)
        points = generate_observation_stream(trace, window=DOWNGRADE_WINDOW)
        train, _val, test = split_by_time(points, boundaries=(4 * HOURS, 5 * HOURS))
        datasets[workload] = (to_arrays(train), to_arrays(test))
    for workload, ((X_train, y_train), (X_test, y_test)) in datasets.items():
        for depth in depths:
            for num_rounds in rounds:
                params = GBTParams(num_rounds=num_rounds, max_depth=depth)
                start = time.perf_counter()
                model = GradientBoostedTrees(params).fit(X_train, y_train)
                elapsed = time.perf_counter() - start
                probs = model.predict_proba(X_test)
                result.cells.append(
                    GridCell(
                        workload=workload,
                        max_depth=depth,
                        num_rounds=num_rounds,
                        auc=auc(y_test, probs),
                        accuracy=accuracy(y_test, (probs >= 0.5).astype(int)),
                        train_seconds=elapsed,
                        trees_nodes=sum(t.node_count for t in model.trees),
                    )
                )
    result.selected = select_operating_point(result)
    return result


def select_operating_point(
    result: TuningResult, tolerance: float = 0.005
) -> Tuple[int, int]:
    """The cheapest cell within ``tolerance`` AUC of the grid's best."""
    mean_auc = result.mean_auc()
    mean_cost = result.mean_cost()
    best_auc = max(mean_auc.values())
    eligible = [k for k, v in mean_auc.items() if v >= best_auc - tolerance]
    return min(eligible, key=lambda k: (mean_cost[k], k))


def render_tuning(result: TuningResult) -> str:
    mean_auc = result.mean_auc()
    rows = []
    for cell in result.cells:
        key = (cell.max_depth, cell.num_rounds)
        rows.append(
            [
                cell.workload,
                cell.max_depth,
                cell.num_rounds,
                f"{cell.auc:.4f}",
                f"{100 * cell.accuracy:.1f}%",
                f"{cell.train_seconds:.2f}s",
                f"{mean_auc[key]:.4f}",
                "<-- selected" if key == result.selected else "",
            ]
        )
    return format_table(
        ["Workload", "depth d", "rounds r", "AUC", "Acc@0.5", "Train", "Mean AUC", ""],
        rows,
        title=(
            "Sec 4.3: grid search over max depth and boosting rounds "
            f"(selected d={result.selected[0]}, r={result.selected[1]})"
        ),
    )
