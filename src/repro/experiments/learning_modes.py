"""Figs 16-17: incremental learning and workload adaptation (Sec 7.6).

Fig 16 compares three learners over the FB stream:

* **incremental** — extend the ensemble batch-by-batch (the system's
  default);
* **retrain hourly** — refit from scratch on everything seen, once an
  hour;
* **one-shot** — train once on the first hour, never again.

Fig 17 feeds the incremental downgrade model an alternating FB/CMU
stream (switching every 6h / 3h / 1.5h) and tracks prediction accuracy
around the switches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.common.units import HOURS
from repro.ml.access_model import FileAccessModel, LearningMode, TrainingPoint
from repro.ml.gbt import GBTParams
from repro.experiments.common import (
    ExperimentScale,
    FULL_SCALE,
    format_table,
    make_trace,
)
from repro.experiments.datasets import generate_observation_stream
from repro.experiments.model_eval import DOWNGRADE_WINDOW, UPGRADE_WINDOW

#: Slightly lighter trees than the paper grid (the replay streams are
#: smaller than production traces); accuracy is insensitive to this.
REPLAY_GBT = GBTParams(num_rounds=10, max_depth=12, max_trees=150)


def _replay(
    points: List[TrainingPoint],
    mode: LearningMode,
    retrain_interval: float = 1 * HOURS,
    oneshot_after: float = 1 * HOURS,
) -> FileAccessModel:
    """Feed a point stream through a model under the given mode.

    The one-shot learner trains on the first ``oneshot_after`` of *data*
    (anchored at the first point, since a stream with class window ``w``
    cannot produce points before ``w``), and keeps trying until the
    accumulated batch contains both classes — "train once" means one
    successful fit, not one attempt.
    """
    model = FileAccessModel(
        window=1.0,  # unused during replay: points are pre-built
        mode=mode,
        gbt_params=REPLAY_GBT,
        eval_every=5,
    )
    if not points:
        return model
    start = points[0].timestamp
    next_action = start + (
        retrain_interval if mode is LearningMode.RETRAIN else oneshot_after
    )
    fired = False
    for point in points:
        if mode is LearningMode.RETRAIN and point.timestamp >= next_action:
            model.retrain()
            next_action += retrain_interval
        elif (
            mode is LearningMode.ONESHOT
            and not fired
            and point.timestamp >= next_action
        ):
            fired = model.train_now()
        model.add_point(point)
    return model


def hourly_accuracy(
    history: List[Tuple[float, bool]], horizon: float
) -> List[float]:
    """Mean prediction accuracy per hour bucket (NaN-free: skips empties)."""
    buckets: Dict[int, List[bool]] = {}
    for timestamp, correct in history:
        buckets.setdefault(int(timestamp // HOURS), []).append(correct)
    hours = int(np.ceil(horizon / HOURS))
    out = []
    for hour in range(hours):
        values = buckets.get(hour, [])
        out.append(100.0 * float(np.mean(values)) if values else float("nan"))
    return out


@dataclass
class Fig16Result:
    #: (learning mode, model kind) -> accuracy per hour.
    accuracy: Dict[Tuple[str, str], List[float]] = field(default_factory=dict)
    horizon: float = 6 * HOURS


def run_fig16(scale: ExperimentScale = FULL_SCALE) -> Fig16Result:
    trace = make_trace("FB", scale)
    result = Fig16Result(horizon=trace.duration)
    for kind, window in (("downgrade", DOWNGRADE_WINDOW), ("upgrade", UPGRADE_WINDOW)):
        points = generate_observation_stream(trace, window=window)
        for mode in LearningMode:
            model = _replay(points, mode)
            result.accuracy[(mode.value, kind)] = hourly_accuracy(
                model.accuracy_history, trace.duration
            )
    return result


def render_fig16(result: Fig16Result) -> str:
    hours = len(next(iter(result.accuracy.values())))
    rows = []
    for (mode, kind), series in result.accuracy.items():
        rows.append(
            [f"{mode}, {kind}"]
            + [f"{v:.0f}" if not np.isnan(v) else "-" for v in series]
        )
    return format_table(
        ["Learner"] + [f"h{i + 1}" for i in range(hours)],
        rows,
        title="Fig 16: prediction accuracy (%) per hour by learning mode",
    )


@dataclass
class Fig17Result:
    #: switch interval label -> accuracy per hour over 12 hours.
    accuracy: Dict[str, List[float]] = field(default_factory=dict)


def _alternating_stream(
    fb_points: List[TrainingPoint],
    cmu_points: List[TrainingPoint],
    switch_interval: float,
    horizon: float,
) -> List[TrainingPoint]:
    """Interleave segments of the two streams on a shared clock.

    Segment i covers [i*s, (i+1)*s) and draws from FB when i is even,
    CMU when odd; source timestamps are folded modulo their 6h span so
    every segment has data.
    """
    out: List[TrainingPoint] = []
    span = 6 * HOURS
    t = 0.0
    index = 0
    while t < horizon:
        source = fb_points if index % 2 == 0 else cmu_points
        offset = t - (t % span)
        segment = [
            TrainingPoint(p.features, p.label, p.timestamp + offset)
            for p in source
            if t <= p.timestamp + offset < min(t + switch_interval, horizon)
        ]
        out.extend(segment)
        t += switch_interval
        index += 1
    out.sort(key=lambda p: p.timestamp)
    return out


def run_fig17(scale: ExperimentScale = FULL_SCALE) -> Fig17Result:
    fb_points = generate_observation_stream(
        make_trace("FB", scale), window=DOWNGRADE_WINDOW
    )
    cmu_points = generate_observation_stream(
        make_trace("CMU", scale), window=DOWNGRADE_WINDOW, seed=13
    )
    horizon = 12 * HOURS
    result = Fig17Result()
    for label, interval in (
        ("switch 6h", 6 * HOURS),
        ("switch 3h", 3 * HOURS),
        ("switch 1.5h", 1.5 * HOURS),
    ):
        stream = _alternating_stream(fb_points, cmu_points, interval, horizon)
        model = _replay(stream, LearningMode.INCREMENTAL)
        result.accuracy[label] = hourly_accuracy(model.accuracy_history, horizon)
    return result


def render_fig17(result: Fig17Result) -> str:
    hours = len(next(iter(result.accuracy.values())))
    rows = [
        [label] + [f"{v:.0f}" if not np.isnan(v) else "-" for v in series]
        for label, series in result.accuracy.items()
    ]
    return format_table(
        ["Schedule"] + [f"h{i + 1}" for i in range(hours)],
        rows,
        title="Fig 17: accuracy (%) while alternating FB and CMU workloads",
    )
