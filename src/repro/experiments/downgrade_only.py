"""Figs 10-11: downgrade policies in isolation (Sec 7.3).

All seven downgrade policies of Table 1 run with upgrades disabled over
the FB workload; per-bin completion gains plus HR/BHR.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.core.registry import DOWNGRADE_POLICY_NAMES
from repro.engine.metrics import completion_reduction, efficiency_improvement
from repro.engine.runner import RunResult, SystemConfig, run_workload
from repro.experiments.common import (
    ExperimentScale,
    FULL_SCALE,
    format_table,
    make_trace,
)
from repro.workload.bins import BIN_NAMES

#: Display labels matching the paper's Table 1 acronyms.
LABELS = {
    "lru": "LRU",
    "lfu": "LFU",
    "lrfu": "LRFU",
    "life": "LIFE",
    "lfu-f": "LFU-F",
    "exd": "EXD",
    "xgb": "XGB",
}


@dataclass
class DowngradeOnlyResult:
    workload: str
    runs: Dict[str, RunResult] = field(default_factory=dict)
    completion_reduction: Dict[str, Dict[str, float]] = field(default_factory=dict)
    efficiency_improvement: Dict[str, Dict[str, float]] = field(default_factory=dict)


def run_downgrade_only(
    workload: str = "FB",
    scale: ExperimentScale = FULL_SCALE,
    workers: int = 11,
) -> DowngradeOnlyResult:
    trace = make_trace(workload, scale)
    result = DowngradeOnlyResult(workload=workload)
    baseline = run_workload(
        trace, SystemConfig(label="HDFS", placement="hdfs", workers=workers)
    )
    result.runs["HDFS"] = baseline
    result.runs["OctopusFS"] = run_workload(
        trace, SystemConfig(label="OctopusFS", placement="octopus", workers=workers)
    )
    result.completion_reduction["OctopusFS"] = completion_reduction(
        baseline.metrics, result.runs["OctopusFS"].metrics
    )
    result.efficiency_improvement["OctopusFS"] = efficiency_improvement(
        baseline.metrics, result.runs["OctopusFS"].metrics
    )
    for name in DOWNGRADE_POLICY_NAMES:
        label = LABELS[name]
        run = run_workload(
            trace,
            SystemConfig(
                label=label,
                placement="octopus",
                downgrade=name,
                upgrade=None,
                workers=workers,
            ),
        )
        result.runs[label] = run
        result.completion_reduction[label] = completion_reduction(
            baseline.metrics, run.metrics
        )
        result.efficiency_improvement[label] = efficiency_improvement(
            baseline.metrics, run.metrics
        )
    return result


def render_fig10(result: DowngradeOnlyResult) -> str:
    rows = [
        [label] + [f"{reduction[b]:.1f}" for b in BIN_NAMES]
        for label, reduction in result.completion_reduction.items()
    ]
    return format_table(
        ["Policy"] + BIN_NAMES,
        rows,
        title=(
            f"Fig 10 ({result.workload}): % completion-time reduction, "
            "downgrade policies only"
        ),
    )


def render_fig11(result: DowngradeOnlyResult) -> str:
    rows = []
    for label, run in result.runs.items():
        if label == "HDFS":
            continue
        rows.append(
            [
                label,
                f"{100 * run.metrics.hit_ratio():.1f}",
                f"{100 * run.metrics.byte_hit_ratio():.1f}",
            ]
        )
    return format_table(
        ["Policy", "HR", "BHR"],
        rows,
        title=f"Fig 11 ({result.workload}): hit ratios, downgrade policies only",
    )
