"""Sec 7.7: system overheads of the ML machinery.

Micro-measurements matching the paper's accounting: per-sample training
cost, per-prediction cost, model memory footprint, and per-file metadata
bytes.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


from repro.core.stats import StatisticsRegistry
from repro.experiments.common import (
    ExperimentScale,
    FULL_SCALE,
    format_table,
    make_trace,
)
from repro.experiments.datasets import generate_observation_stream, to_arrays
from repro.experiments.model_eval import DOWNGRADE_WINDOW
from repro.ml.access_model import PAPER_GBT_PARAMS
from repro.ml.gbt import GradientBoostedTrees


@dataclass
class OverheadResult:
    train_ms_per_sample: float
    predict_us_per_sample: float
    model_size_kb: float
    metadata_bytes_per_file: int
    total_train_seconds: float
    n_samples: int


def run_overheads(scale: ExperimentScale = FULL_SCALE) -> OverheadResult:
    trace = make_trace("FB", scale)
    points = generate_observation_stream(trace, window=DOWNGRADE_WINDOW)
    X, y = to_arrays(points)
    model = GradientBoostedTrees(PAPER_GBT_PARAMS)
    start = time.perf_counter()
    model.fit(X, y)
    train_seconds = time.perf_counter() - start
    # Predictions: amortized batch cost per sample.
    reps = max(1, 200_000 // len(X))
    start = time.perf_counter()
    for _ in range(reps):
        model.predict_proba(X)
    predict_seconds = (time.perf_counter() - start) / (reps * len(X))
    registry = StatisticsRegistry(k=12)
    return OverheadResult(
        train_ms_per_sample=1000.0 * train_seconds / len(X),
        predict_us_per_sample=1e6 * predict_seconds,
        model_size_kb=model.approx_size_bytes() / 1024.0,
        metadata_bytes_per_file=registry.estimated_bytes_per_file(),
        total_train_seconds=train_seconds,
        n_samples=len(X),
    )


def render_overheads(result: OverheadResult) -> str:
    rows = [
        ["Training cost per sample", f"{result.train_ms_per_sample:.3f} ms"],
        ["Prediction cost per sample", f"{result.predict_us_per_sample:.2f} us"],
        ["Model memory footprint", f"{result.model_size_kb:.0f} KB"],
        ["Metadata per file", f"{result.metadata_bytes_per_file} bytes"],
        ["Total training time", f"{result.total_train_seconds:.2f} s"],
        ["Training samples", str(result.n_samples)],
    ]
    return format_table(["Overhead", "Measured"], rows, title="Sec 7.7: overheads")
