"""Scenario sweep: adaptive tiering across every registered load shape.

The paper evaluates on two production-derived traces; this experiment
drives the full scenario library (:mod:`repro.workload.scenarios`)
through three system configurations — static OctopusFS, the classic
LRU+OSA pair, and the learned XGB pair — and reports per-scenario hit
ratios and task hours.  It is the quickest way to see where recency
heuristics hold up (fb, flashcrowd) and where they fall over (mlscan's
epoch-scale cyclic re-reads, oscillating's phase shifts).
"""

from __future__ import annotations

from typing import Dict, List

from repro.engine.runner import RunResult, SystemConfig, WorkloadRunner
from repro.experiments.common import format_table, run_labelled_cells
from repro.workload.scenarios import build_scenario, scenario_names

#: Replay scale per scenario kind: the classic traces are dense, the
#: generators are sized by duration — both land in the few-hundred-job
#: range so the sweep stays interactive.
CLASSIC_SCALE = 0.15
GENERATED_SCALE = 0.3

CONFIGS = (
    ("OctopusFS", None, None),
    ("LRU-OSA", "lru", "osa"),
    ("XGB", "xgb", "xgb"),
)


def _scenario_scale(name: str, scale: float) -> float:
    base = CLASSIC_SCALE if name in ("fb", "cmu") else GENERATED_SCALE
    return base * scale


def run_scenarios(
    scale: float = 1.0,
    io_model: str = "snapshot",
    seed: int = 42,
    workers: int = 11,
    jobs: int = 1,
) -> Dict[str, List[RunResult]]:
    """Replay every registered scenario under each policy configuration.

    ``jobs > 1`` fans the (scenario × configuration) matrix across
    worker processes through the sweep orchestrator; the table values
    are identical to the serial run (the simulated metrics are
    deterministic per cell).
    """
    if jobs != 1:
        return _run_scenarios_parallel(scale, io_model, seed, workers, jobs)
    results: Dict[str, List[RunResult]] = {}
    for name in scenario_names():
        rows: List[RunResult] = []
        for label, downgrade, upgrade in CONFIGS:
            stream = build_scenario(
                name, seed=seed, scale=_scenario_scale(name, scale)
            )
            config = SystemConfig(
                label=label,
                placement="octopus",
                downgrade=downgrade,
                upgrade=upgrade,
                workers=workers,
                io_model=io_model,
            )
            rows.append(WorkloadRunner(stream, config).run())
        results[name] = rows
    return results


def _run_scenarios_parallel(
    scale: float, io_model: str, seed: int, workers: int, jobs: int
) -> Dict[str, List]:
    """The ``jobs > 1`` path: one sweep cell per (scenario, config)."""
    from repro.sweep import make_cell

    names = scenario_names()
    labelled = [
        (
            label,
            make_cell(
                kind="scenario",
                workload=name,
                scale=_scenario_scale(name, scale),
                seed=seed,
                downgrade=downgrade,
                upgrade=upgrade,
                workers=workers,
                io_model=io_model,
            ),
        )
        for name in names
        for label, downgrade, upgrade in CONFIGS
    ]
    rows = run_labelled_cells(labelled, jobs)
    per_config = len(CONFIGS)
    return {
        name: rows[i * per_config : (i + 1) * per_config]
        for i, name in enumerate(names)
    }


def render_scenarios(results: Dict[str, List[RunResult]]) -> str:
    rows = []
    for name, runs in results.items():
        for result in runs:
            rows.append(
                [
                    name,
                    result.label,
                    f"{result.jobs_finished}/{result.jobs_submitted}",
                    f"{result.metrics.hit_ratio():.3f}",
                    f"{result.metrics.byte_hit_ratio():.3f}",
                    f"{result.metrics.total_task_seconds() / 3600:.2f}",
                    result.transfers_committed,
                    result.deletions_applied,
                ]
            )
    return format_table(
        ["scenario", "config", "jobs", "hit", "byte-hit", "task-h", "xfers", "dels"],
        rows,
        title="Scenario sweep (streaming replay, per-scenario scale)",
    )
