"""Figs 6-9: the end-to-end policy comparison (Sec 7.2).

Runs each workload over HDFS, OctopusFS, and the four Octopus++ policy
pairs, producing per-bin completion-time reductions (Fig 6), cluster
efficiency improvements (Fig 7), tier access distributions (Fig 8), and
hit / byte-hit ratios by accesses and by locations (Fig 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.engine.metrics import completion_reduction, efficiency_improvement
from repro.engine.runner import RunResult, run_workload
from repro.experiments.common import (
    ExperimentScale,
    FULL_SCALE,
    format_table,
    make_trace,
    standard_configs,
)
from repro.workload.bins import BIN_NAMES


@dataclass
class EndToEndResult:
    workload: str
    runs: Dict[str, RunResult] = field(default_factory=dict)
    completion_reduction: Dict[str, Dict[str, float]] = field(default_factory=dict)
    efficiency_improvement: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def policy_labels(self) -> List[str]:
        return [label for label in self.runs if label != "HDFS"]


def run_endtoend(
    workload: str,
    scale: ExperimentScale = FULL_SCALE,
    workers: int = 11,
    io_model: str = "snapshot",
) -> EndToEndResult:
    trace = make_trace(workload, scale)
    result = EndToEndResult(workload=workload)
    baseline = None
    for config in standard_configs(workers, io_model=io_model):
        run = run_workload(trace, config)
        result.runs[config.label] = run
        if config.label == "HDFS":
            baseline = run
        else:
            assert baseline is not None
            result.completion_reduction[config.label] = completion_reduction(
                baseline.metrics, run.metrics
            )
            result.efficiency_improvement[config.label] = efficiency_improvement(
                baseline.metrics, run.metrics
            )
    return result


def render_fig06(result: EndToEndResult) -> str:
    rows = [
        [label] + [f"{result.completion_reduction[label][b]:.1f}" for b in BIN_NAMES]
        for label in result.policy_labels
    ]
    return format_table(
        ["Policy"] + BIN_NAMES,
        rows,
        title=(
            f"Fig 6 ({result.workload}): % reduction in completion time vs HDFS"
        ),
    )


def render_fig07(result: EndToEndResult) -> str:
    rows = [
        [label] + [f"{result.efficiency_improvement[label][b]:.1f}" for b in BIN_NAMES]
        for label in result.policy_labels
    ]
    return format_table(
        ["Policy"] + BIN_NAMES,
        rows,
        title=(
            f"Fig 7 ({result.workload}): % improvement in cluster efficiency vs HDFS"
        ),
    )


def render_fig08(result: EndToEndResult) -> str:
    rows = []
    tiers = None
    for label, run in result.runs.items():
        dist = run.metrics.tier_access_distribution()
        if tiers is None:
            tiers = list(run.metrics.hierarchy)
        for bin_name in BIN_NAMES:
            rows.append(
                [label, bin_name]
                + [f"{100 * dist[bin_name][t]:.0f}" for t in tiers]
            )
    headers = ["System", "Bin"] + [f"{t.name}%" for t in (tiers or [])]
    return format_table(
        headers,
        rows,
        title=f"Fig 8 ({result.workload}): storage tier access distribution",
    )


def render_fig09(result: EndToEndResult) -> str:
    rows = []
    for label, run in result.runs.items():
        if label == "HDFS":
            continue
        metrics = run.metrics
        rows.append(
            [
                label,
                f"{100 * metrics.hit_ratio():.1f}",
                f"{100 * metrics.byte_hit_ratio():.1f}",
                f"{100 * metrics.location_hit_ratio():.1f}",
                f"{100 * metrics.location_byte_hit_ratio():.1f}",
            ]
        )
    return format_table(
        ["System", "HR(acc)", "BHR(acc)", "HR(loc)", "BHR(loc)"],
        rows,
        title=(
            f"Fig 9 ({result.workload}): hit ratios by accesses and by locations"
        ),
    )
