"""AutoCache: the framework driving the HDFS centralized cache (Sec 3.3).

The paper's Replication Manager/Monitor generalize AutoCache, the
authors' earlier framework for *admitting and evicting files from the
HDFS cache* (their [25]).  This experiment exercises that mode: data
lives on HDDs (plain HDFS placement), upgrades create extra cached
memory replicas, and downgrades delete cached replicas — Definitions
1(ii) and 2(ii) rather than the move variants.

Configurations compared on one workload:

* **HDFS** — no cache at all (the baseline);
* **HDFS+Cache** — the static centralized cache: each new file gets a
  cached replica while memory lasts, then caching silently stops;
* **AutoCache(LRU-OSA)** — cache admission on access, LRU eviction;
* **AutoCache(XGB)** — the ML policies driving admission and eviction.

The paper's Fig 2 shows the static cache flatlining once memory fills;
the automated variants keep the cache populated with the files that are
actually re-read.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.common.units import GB
from repro.engine.metrics import completion_reduction
from repro.engine.runner import RunResult, SystemConfig, run_workload
from repro.experiments.common import (
    ExperimentScale,
    FULL_SCALE,
    format_table,
    make_trace,
)
from repro.workload.bins import BIN_NAMES


def autocache_configs(workers: int = 11) -> List[SystemConfig]:
    """The AutoCache comparison set."""
    return [
        SystemConfig(label="HDFS", placement="hdfs", workers=workers),
        SystemConfig(label="HDFS+Cache", placement="hdfs-cache", workers=workers),
        SystemConfig(
            label="AutoCache(LRU-OSA)",
            placement="hdfs",
            downgrade="lru",
            upgrade="osa",
            cache_mode=True,
            workers=workers,
        ),
        SystemConfig(
            label="AutoCache(XGB)",
            placement="hdfs",
            downgrade="xgb",
            upgrade="xgb",
            cache_mode=True,
            workers=workers,
        ),
    ]


@dataclass
class AutoCacheResult:
    workload: str
    runs: Dict[str, RunResult] = field(default_factory=dict)
    completion_reduction: Dict[str, Dict[str, float]] = field(default_factory=dict)

    @property
    def cache_labels(self) -> List[str]:
        return [label for label in self.runs if label != "HDFS"]


def run_autocache(
    workload: str = "FB",
    scale: ExperimentScale = FULL_SCALE,
    workers: int = 11,
) -> AutoCacheResult:
    trace = make_trace(workload, scale)
    result = AutoCacheResult(workload=workload)
    baseline = None
    for config in autocache_configs(workers):
        run = run_workload(trace, config)
        result.runs[config.label] = run
        if config.label == "HDFS":
            baseline = run
        else:
            assert baseline is not None
            result.completion_reduction[config.label] = completion_reduction(
                baseline.metrics, run.metrics
            )
    return result


def render_autocache(result: AutoCacheResult) -> str:
    rows = []
    for label in result.cache_labels:
        run = result.runs[label]
        metrics = run.metrics
        rows.append(
            [
                label,
                f"{100 * metrics.hit_ratio():.1f}",
                f"{100 * metrics.byte_hit_ratio():.1f}",
                f"{run.bytes_upgraded_memory / GB:.2f}",
                f"{metrics.total_task_seconds() / 3600.0:.2f}",
            ]
            + [f"{result.completion_reduction[label][b]:.1f}" for b in BIN_NAMES]
        )
    return format_table(
        ["System", "HR%", "BHR%", "GB cached", "Task hours"]
        + [f"Δ{b}%" for b in BIN_NAMES],
        rows,
        title=(
            f"AutoCache ({result.workload}): automated HDFS cache management "
            "(completion-time reduction vs HDFS per bin)"
        ),
    )
