"""Preset tuning sweep: scenario-aware presets vs the paper defaults.

For every scenario with a registered preset
(:mod:`repro.core.presets`), replay the identical stream twice — once
under the default configuration and once under the preset — and record
the figure-level deltas (hit ratio, byte hit ratio, task hours, data
moved).  This is the evidence behind the preset registry: workload-
sensitive tuning moves the figures, and the table shows by how much and
in which direction per load shape.

Run it with ``python -m repro experiment tuning-presets``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.presets import PRESETS, preset_for_scenario
from repro.engine.runner import RunResult, SystemConfig, WorkloadRunner
from repro.experiments.common import format_table, run_labelled_cells
from repro.workload.scenarios import build_scenario

#: Replay scale per scenario kind (mirrors the ``scenarios`` sweep).
CLASSIC_SCALE = 0.15
GENERATED_SCALE = 0.3


@dataclass
class PresetDelta:
    """Default-vs-preset figures for one scenario."""

    scenario: str
    default: RunResult
    preset: RunResult
    conf: Dict[str, object]

    @property
    def hit_delta(self) -> float:
        return self.preset.metrics.hit_ratio() - self.default.metrics.hit_ratio()

    @property
    def task_hours_delta(self) -> float:
        return (
            self.preset.metrics.total_task_seconds()
            - self.default.metrics.total_task_seconds()
        ) / 3600.0


def _scenario_scale(name: str, scale: float) -> float:
    base = CLASSIC_SCALE if name in ("fb", "cmu") else GENERATED_SCALE
    return base * scale


def _run_once(
    name: str,
    preset: Optional[str],
    policies: Tuple[str, str],
    scale: float,
    seed: int,
    workers: int,
) -> RunResult:
    downgrade, upgrade = policies
    stream = build_scenario(name, seed=seed, scale=_scenario_scale(name, scale))
    config = SystemConfig(
        label=f"{name}/{preset or 'default'}",
        placement="octopus",
        downgrade=downgrade,
        upgrade=upgrade,
        workers=workers,
        scenario=name,
        preset=preset,
    )
    return WorkloadRunner(stream, config).run()


def run_preset_tuning(
    scale: float = 1.0,
    seed: int = 42,
    workers: int = 11,
    policies: Tuple[str, str] = ("lru", "osa"),
    scenarios: Optional[List[str]] = None,
    jobs: int = 1,
) -> List[PresetDelta]:
    """Replay each preset-carrying scenario under default and preset conf.

    ``jobs > 1`` runs both legs of every scenario concurrently through
    the sweep orchestrator (identical figures; the legs are independent
    simulations).
    """
    names = scenarios if scenarios is not None else sorted(PRESETS)
    names = [n for n in names if preset_for_scenario(n) is not None]
    if jobs != 1:
        return _run_preset_tuning_parallel(
            names, policies, scale, seed, workers, jobs
        )
    deltas: List[PresetDelta] = []
    for name in names:
        preset = preset_for_scenario(name)
        default = _run_once(name, None, policies, scale, seed, workers)
        tuned = _run_once(name, name, policies, scale, seed, workers)
        deltas.append(
            PresetDelta(
                scenario=name,
                default=default,
                preset=tuned,
                conf=dict(preset.conf),
            )
        )
    return deltas


def _run_preset_tuning_parallel(
    names: List[str],
    policies: Tuple[str, str],
    scale: float,
    seed: int,
    workers: int,
    jobs: int,
) -> List[PresetDelta]:
    """The ``jobs > 1`` path: default and tuned legs as sweep cells."""
    from repro.sweep import make_cell

    downgrade, upgrade = policies
    labelled = [
        (
            f"{name}/{preset or 'default'}",
            make_cell(
                kind="scenario",
                workload=name,
                scale=_scenario_scale(name, scale),
                seed=seed,
                downgrade=downgrade,
                upgrade=upgrade,
                workers=workers,
                preset=preset,
            ),
        )
        for name in names
        for preset in (None, name)
    ]
    rows = run_labelled_cells(labelled, jobs)
    return [
        PresetDelta(
            scenario=name,
            default=rows[2 * i],
            preset=rows[2 * i + 1],
            conf=dict(preset_for_scenario(name).conf),
        )
        for i, name in enumerate(names)
    ]


def render_preset_tuning(deltas: List[PresetDelta]) -> str:
    rows = []
    for d in deltas:
        rows.append(
            [
                d.scenario,
                f"{d.default.metrics.hit_ratio():.3f}",
                f"{d.preset.metrics.hit_ratio():.3f}",
                f"{d.hit_delta:+.3f}",
                f"{d.default.metrics.total_task_seconds() / 3600:.2f}",
                f"{d.preset.metrics.total_task_seconds() / 3600:.2f}",
                f"{d.task_hours_delta:+.2f}",
                f"{d.preset.transfers_committed - d.default.transfers_committed:+d}",
                " ".join(
                    f"{k.split('.', 1)[1]}={v:g}" for k, v in sorted(d.conf.items())
                ),
            ]
        )
    return format_table(
        [
            "scenario",
            "hit(def)",
            "hit(pre)",
            "Δhit",
            "task-h(def)",
            "task-h(pre)",
            "Δtask-h",
            "Δxfers",
            "preset keys",
        ],
        rows,
        title="Scenario presets vs paper defaults (identical streams)",
    )
