"""Fault tolerance under tiering: node outages during a managed workload.

Replication exists to survive disk and node failures (Sec 3), and the
Replication Monitor doubles as the component that re-replicates blocks
after a loss (Sec 3.3).  This experiment injects worker outages into a
policy-managed FB run and measures:

* whether the workload still completes (no job loss, bounded slowdown);
* how much data the failures destroyed and the monitor restored;
* how long blocks stayed under-replicated (exposure to a second fault).

The paper does not publish a failure study — this is the ablation that
backs its fault-tolerance design claims.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.common.units import HOURS
from repro.dfs.faults import FaultInjector
from repro.engine.runner import RunResult, SystemConfig, WorkloadRunner
from repro.experiments.common import (
    ExperimentScale,
    FULL_SCALE,
    format_table,
    make_trace,
)


@dataclass
class FaultRunResult:
    """One (possibly fault-injected) workload run."""

    label: str
    run: RunResult
    failures: int = 0
    recoveries: int = 0
    replicas_lost: int = 0
    blocks_lost: int = 0
    replicas_repaired: int = 0
    under_replicated_at_end: int = 0


@dataclass
class FaultToleranceResult:
    workload: str
    runs: Dict[str, FaultRunResult] = field(default_factory=dict)


def _run_one(
    trace,
    label: str,
    outages: int,
    downtime: float,
    workers: int,
) -> FaultRunResult:
    config = SystemConfig(
        label=label,
        placement="octopus",
        downgrade="xgb",
        upgrade="xgb",
        workers=workers,
        conf={"monitor.health_checks_enabled": True},
    )
    runner = WorkloadRunner(trace, config)
    injector: Optional[FaultInjector] = None
    if outages:
        injector = FaultInjector(runner.sim, runner.master, runner.scheduler)
        injector.schedule_random_outages(
            count=outages,
            start=0.15 * trace.duration,
            end=0.75 * trace.duration,
            downtime=downtime,
            seed=29,
        )
    run = runner.run()
    result = FaultRunResult(label=label, run=run)
    result.replicas_repaired = runner.manager.monitor.replicas_repaired
    if injector is not None:
        result.failures = injector.stats.failures
        result.recoveries = injector.stats.recoveries
        result.replicas_lost = injector.stats.replicas_lost
        result.blocks_lost = injector.stats.blocks_lost
        result.under_replicated_at_end = injector.under_replicated_blocks()
    return result


def run_fault_tolerance(
    workload: str = "FB",
    scale: ExperimentScale = FULL_SCALE,
    workers: int = 11,
    downtime: float = 0.5 * HOURS,
) -> FaultToleranceResult:
    trace = make_trace(workload, scale)
    result = FaultToleranceResult(workload=workload)
    for label, outages in (
        ("no failures", 0),
        ("1 outage", 1),
        ("3 outages", 3),
    ):
        result.runs[label] = _run_one(trace, label, outages, downtime, workers)
    return result


def render_fault_tolerance(result: FaultToleranceResult) -> str:
    rows = []
    for label, fr in result.runs.items():
        metrics = fr.run.metrics
        rows.append(
            [
                label,
                fr.run.jobs_finished,
                fr.replicas_lost,
                fr.blocks_lost,
                fr.replicas_repaired,
                fr.under_replicated_at_end,
                f"{metrics.total_task_seconds() / 3600.0:.2f}",
                f"{100 * metrics.byte_hit_ratio():.1f}",
            ]
        )
    return format_table(
        [
            "Scenario",
            "Jobs done",
            "Replicas lost",
            "Blocks lost",
            "Repaired",
            "Under-rep at end",
            "Task hours",
            "BHR%",
        ],
        rows,
        title=(
            f"Fault tolerance ({result.workload}): worker outages under "
            "XGB tiering with health scans"
        ),
    )
