"""Fig 12 / Table 4: upgrade policies in isolation (Sec 7.4).

All file replicas start on the HDD tier (single-tier placement) and only
the upgrade policies may move data up.  Reports per-bin completion gains
(Fig 12) and the byte accuracy / byte coverage statistics (Table 4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.common.units import GB
from repro.core.registry import UPGRADE_POLICY_NAMES
from repro.engine.metrics import completion_reduction
from repro.engine.runner import RunResult, SystemConfig, run_workload
from repro.experiments.common import (
    ExperimentScale,
    FULL_SCALE,
    format_table,
    make_trace,
)
from repro.workload.bins import BIN_NAMES

LABELS = {"osa": "OSA", "lrfu": "LRFU", "exd": "EXD", "xgb": "XGB"}


@dataclass
class UpgradeStats:
    gb_read_from_memory: float
    gb_upgraded_to_memory: float

    @property
    def byte_accuracy(self) -> float:
        """Data read from memory / data upgraded (Table 4 BAc)."""
        if self.gb_upgraded_to_memory == 0:
            return 0.0
        return self.gb_read_from_memory / self.gb_upgraded_to_memory


@dataclass
class UpgradeOnlyResult:
    workload: str
    runs: Dict[str, RunResult] = field(default_factory=dict)
    completion_reduction: Dict[str, Dict[str, float]] = field(default_factory=dict)
    stats: Dict[str, UpgradeStats] = field(default_factory=dict)
    byte_coverage: Dict[str, float] = field(default_factory=dict)


def run_upgrade_only(
    workload: str = "FB",
    scale: ExperimentScale = FULL_SCALE,
    workers: int = 11,
) -> UpgradeOnlyResult:
    trace = make_trace(workload, scale)
    result = UpgradeOnlyResult(workload=workload)
    baseline = run_workload(
        trace,
        SystemConfig(label="HDD-only", placement="single-hdd", workers=workers),
    )
    result.runs["HDD-only"] = baseline
    for name in UPGRADE_POLICY_NAMES:
        label = LABELS[name]
        run = run_workload(
            trace,
            SystemConfig(
                label=label,
                placement="single-hdd",
                downgrade=None,
                upgrade=name,
                workers=workers,
            ),
        )
        result.runs[label] = run
        result.completion_reduction[label] = completion_reduction(
            baseline.metrics, run.metrics
        )
        read_memory = run.metrics.bytes_read_memory / GB
        upgraded = run.bytes_upgraded_memory / GB
        result.stats[label] = UpgradeStats(
            gb_read_from_memory=read_memory, gb_upgraded_to_memory=upgraded
        )
        total_read = run.metrics.bytes_read / GB
        result.byte_coverage[label] = (
            read_memory / total_read if total_read else 0.0
        )
    return result


def render_fig12(result: UpgradeOnlyResult) -> str:
    rows = [
        [label] + [f"{reduction[b]:.1f}" for b in BIN_NAMES]
        for label, reduction in result.completion_reduction.items()
    ]
    return format_table(
        ["Policy"] + BIN_NAMES,
        rows,
        title=(
            f"Fig 12 ({result.workload}): % completion-time reduction, "
            "upgrade policies only (all data starts on HDD)"
        ),
    )


def render_table04(result: UpgradeOnlyResult) -> str:
    rows = []
    for label, stats in result.stats.items():
        rows.append(
            [
                label,
                f"{stats.gb_read_from_memory:.2f}",
                f"{stats.gb_upgraded_to_memory:.2f}",
                f"{stats.byte_accuracy:.2f}",
                f"{result.byte_coverage[label]:.2f}",
            ]
        )
    return format_table(
        ["Policy", "GB read from mem", "GB upgraded to mem", "BAc", "BCo"],
        rows,
        title=f"Table 4 ({result.workload}): upgrade policy statistics",
    )
