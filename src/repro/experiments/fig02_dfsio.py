"""Fig 2: DFSIO write/read throughput for the four storage systems.

Writes then reads 84GB on the 12-node cluster under original HDFS,
HDFS-with-cache, OctopusFS, and Octopus++ (OctopusFS plus the default
policy pair), reporting average per-node throughput in ~6GB windows so
the memory-exhaustion knee (~44GB aggregate) is visible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.common.units import GB
from repro.engine.dfsio import DfsioRunner
from repro.engine.runner import SystemConfig
from repro.experiments.common import format_table
from repro.workload.dfsio import DfsioSpec


@dataclass
class DfsioExperimentResult:
    """Throughput curves per system: label -> [(GB, MB/s per node)]."""

    write_curves: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)
    read_curves: Dict[str, List[Tuple[float, float]]] = field(default_factory=dict)


def dfsio_configs(workers: int = 11) -> List[SystemConfig]:
    return [
        SystemConfig(label="Original HDFS", placement="hdfs", workers=workers),
        SystemConfig(label="HDFS with Cache", placement="hdfs-cache", workers=workers),
        SystemConfig(label="OctopusFS", placement="octopus", workers=workers),
        SystemConfig(
            label="Octopus++",
            placement="octopus",
            downgrade="xgb",
            upgrade="xgb",
            workers=workers,
        ),
    ]


def run_fig02(
    total_bytes: int = 84 * GB,
    workers: int = 11,
) -> DfsioExperimentResult:
    """Run all four DFSIO scenarios."""
    result = DfsioExperimentResult()
    spec = DfsioSpec(total_bytes=total_bytes)
    for config in dfsio_configs(workers):
        runner = DfsioRunner(config, spec)
        phase = runner.run()
        result.write_curves[config.label] = phase.write_curve(workers)
        result.read_curves[config.label] = phase.read_curve(workers)
    return result


def render_fig02(result: DfsioExperimentResult) -> str:
    """Paper-style series: per system, throughput at each data volume."""
    sections = []
    for title, curves in (
        ("Fig 2(a): average WRITE throughput per node (MB/s)", result.write_curves),
        ("Fig 2(b): average READ throughput per node (MB/s)", result.read_curves),
    ):
        labels = list(curves)
        # Align rows on the union of measurement points.
        volumes = sorted({round(v, 1) for c in curves.values() for v, _ in c})
        rows = []
        for volume in volumes:
            row = [f"{volume:.0f}GB"]
            for label in labels:
                match = [t for v, t in curves[label] if round(v, 1) == volume]
                row.append(f"{match[0]:.0f}" if match else "-")
            rows.append(row)
        sections.append(format_table(["Data"] + labels, rows, title=title))
    return "\n\n".join(sections)
