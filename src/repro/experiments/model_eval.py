"""Figs 14-15: XGB model quality (Sec 7.6).

Fig 14: ROC curves / AUC for the downgrade and upgrade models on both
workloads, with the paper's temporal split (train on the first 4 hours,
validate on the 5th, test on the 6th).

Fig 15: feature ablations on the FB downgrade model — drop file size,
drop creation time, and vary the number of tracked access times
(6 / 12 / 18).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.common.units import HOURS, MINUTES
from repro.ml.access_model import PAPER_GBT_PARAMS
from repro.ml.features import FeatureSpec
from repro.ml.gbt import GradientBoostedTrees
from repro.ml.metrics import accuracy, auc, roc_curve
from repro.experiments.common import (
    ExperimentScale,
    FULL_SCALE,
    format_table,
    make_trace,
)
from repro.experiments.datasets import (
    generate_observation_stream,
    split_by_time,
    to_arrays,
)

#: Class windows at trace scale: 30min (upgrade), 1h (downgrade).
UPGRADE_WINDOW = 30 * MINUTES
DOWNGRADE_WINDOW = 1 * HOURS


@dataclass
class RocResult:
    """One trained/evaluated model."""

    label: str
    auc: float
    accuracy: float
    fpr: np.ndarray
    tpr: np.ndarray
    n_train: int
    n_test: int


def _train_and_eval(
    label: str,
    trace,
    window: float,
    spec: FeatureSpec,
    k_track: int = 12,
) -> RocResult:
    points = generate_observation_stream(
        trace, window=window, spec=spec, k_track=k_track
    )
    train, _validation, test = split_by_time(
        points, boundaries=(4 * HOURS, 5 * HOURS)
    )
    X_train, y_train = to_arrays(train)
    X_test, y_test = to_arrays(test)
    model = GradientBoostedTrees(PAPER_GBT_PARAMS).fit(X_train, y_train)
    probs = model.predict_proba(X_test)
    fpr, tpr, _thresholds = roc_curve(y_test, probs)
    return RocResult(
        label=label,
        auc=auc(y_test, probs),
        accuracy=accuracy(y_test, (probs >= 0.5).astype(int)),
        fpr=fpr,
        tpr=tpr,
        n_train=len(train),
        n_test=len(test),
    )


@dataclass
class Fig14Result:
    models: List[RocResult] = field(default_factory=list)


def run_fig14(scale: ExperimentScale = FULL_SCALE) -> Fig14Result:
    result = Fig14Result()
    for workload in ("FB", "CMU"):
        # Stationary traces: Fig 14 measures model capacity under the
        # paper's 4h-train/1h-validate/1h-test split; adaptation to
        # drifting workloads is Fig 16's subject.
        trace = make_trace(workload, scale, drift=False)
        result.models.append(
            _train_and_eval(
                f"XGB Downgrade - {workload}", trace, DOWNGRADE_WINDOW, FeatureSpec()
            )
        )
        result.models.append(
            _train_and_eval(
                f"XGB Upgrade - {workload}", trace, UPGRADE_WINDOW, FeatureSpec()
            )
        )
    return result


def render_fig14(result: Fig14Result) -> str:
    rows = [
        [m.label, f"{m.auc:.4f}", f"{100 * m.accuracy:.1f}%", m.n_train, m.n_test]
        for m in result.models
    ]
    return format_table(
        ["Model", "AUC", "Accuracy@0.5", "Train pts", "Test pts"],
        rows,
        title="Fig 14: ROC AUC for the XGB downgrade/upgrade models",
    )


#: The Fig 15 feature variants: label -> (spec, tracked access times).
FIG15_VARIANTS: Dict[str, Tuple[FeatureSpec, int]] = {
    "With 12 Accesses (Def)": (FeatureSpec(k=12), 12),
    "W/out Filesize": (FeatureSpec(k=12, include_size=False), 12),
    "W/out Creation": (FeatureSpec(k=12, include_creation=False), 12),
    "With 6 Accesses": (FeatureSpec(k=6), 6),
    "With 18 Accesses": (FeatureSpec(k=18), 18),
}


@dataclass
class Fig15Result:
    models: List[RocResult] = field(default_factory=list)


def run_fig15(scale: ExperimentScale = FULL_SCALE) -> Fig15Result:
    trace = make_trace("FB", scale, drift=False)
    result = Fig15Result()
    for label, (spec, k_track) in FIG15_VARIANTS.items():
        result.models.append(
            _train_and_eval(label, trace, DOWNGRADE_WINDOW, spec, k_track=k_track)
        )
    return result


def render_fig15(result: Fig15Result) -> str:
    rows = [
        [m.label, f"{m.auc:.4f}", f"{100 * m.accuracy:.1f}%"] for m in result.models
    ]
    return format_table(
        ["Feature set", "AUC", "Accuracy@0.5"],
        rows,
        title="Fig 15: FB downgrade model under feature ablations",
    )
