"""Fig 13: scale-out study (Sec 7.5).

Scales workers 11 → 88 while growing the workload proportionally, runs
HDFS and XGB-managed Octopus++ at each size, and reports per-bin
completion and efficiency gains.  The paper's two insights —
efficiency gains grow with cluster size; large-job completion gains
shrink because 3x-replicated output I/O grows disproportionally — fall
out of the same mechanism here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.engine.metrics import completion_reduction, efficiency_improvement
from repro.engine.runner import SystemConfig, run_workload
from repro.experiments.common import format_table
from repro.workload.bins import BIN_NAMES
from repro.workload.profiles import FB_PROFILE, scaled_profile
from repro.workload.synthesis import synthesize_trace

DEFAULT_WORKER_COUNTS = (11, 22, 44, 88)


@dataclass
class ScalabilityResult:
    worker_counts: Sequence[int]
    completion_reduction: Dict[int, Dict[str, float]] = field(default_factory=dict)
    efficiency_improvement: Dict[int, Dict[str, float]] = field(default_factory=dict)


def run_fig13(
    worker_counts: Sequence[int] = DEFAULT_WORKER_COUNTS,
    base_workers: int = 11,
    seed: int = 42,
    workload_scale: float = 1.0,
) -> ScalabilityResult:
    result = ScalabilityResult(worker_counts=worker_counts)
    for workers in worker_counts:
        scale = workload_scale * workers / base_workers
        profile = scaled_profile(FB_PROFILE, scale)
        trace = synthesize_trace(profile, seed=seed)
        baseline = run_workload(
            trace, SystemConfig(label="HDFS", placement="hdfs", workers=workers)
        )
        managed = run_workload(
            trace,
            SystemConfig(
                label="XGB",
                placement="octopus",
                downgrade="xgb",
                upgrade="xgb",
                workers=workers,
            ),
        )
        result.completion_reduction[workers] = completion_reduction(
            baseline.metrics, managed.metrics
        )
        result.efficiency_improvement[workers] = efficiency_improvement(
            baseline.metrics, managed.metrics
        )
    return result


def render_fig13(result: ScalabilityResult) -> str:
    sections = []
    for title, data in (
        ("Fig 13(a): % completion-time reduction (XGB vs HDFS)",
         result.completion_reduction),
        ("Fig 13(b): % efficiency improvement (XGB vs HDFS)",
         result.efficiency_improvement),
    ):
        rows = [
            [f"{workers} workers"] + [f"{data[workers][b]:.1f}" for b in BIN_NAMES]
            for workers in result.worker_counts
        ]
        sections.append(format_table(["Cluster"] + BIN_NAMES, rows, title=title))
    return "\n\n".join(sections)
