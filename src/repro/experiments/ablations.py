"""Design-choice ablations beyond the paper's own figures.

DESIGN.md calls out several constants the paper fixes by fiat; these
sweeps quantify their effect on the FB workload:

* the proactive downgrade thresholds (start 90% / stop 85%, Sec 5.1/5.4);
* the XGB candidate-scan width k (200, Sec 5.2);
* the XGB upgrade scheduling budget (1GB, Sec 6.4).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from repro.common.units import GB
from repro.engine.runner import SystemConfig, run_workload
from repro.experiments.common import (
    ExperimentScale,
    FULL_SCALE,
    format_table,
    make_trace,
)


@dataclass
class AblationResult:
    #: variant label -> (hit ratio, byte hit ratio, total task hours).
    rows: Dict[str, Tuple[float, float, float]] = field(default_factory=dict)


def _measure(trace, config: SystemConfig) -> Tuple[float, float, float]:
    run = run_workload(trace, config)
    return (
        run.metrics.hit_ratio(),
        run.metrics.byte_hit_ratio(),
        run.metrics.total_task_seconds() / 3600.0,
    )


def run_threshold_sweep(
    pairs: Sequence[Tuple[float, float]] = ((0.95, 0.90), (0.90, 0.85), (0.80, 0.70)),
    scale: ExperimentScale = FULL_SCALE,
) -> AblationResult:
    """Sweep the (start, stop) downgrade thresholds under LRU-OSA."""
    trace = make_trace("FB", scale)
    result = AblationResult()
    for start, stop in pairs:
        config = SystemConfig(
            label=f"start={start:.2f}/stop={stop:.2f}",
            placement="octopus",
            downgrade="lru",
            upgrade="osa",
            conf={
                "downgrade.start_threshold": start,
                "downgrade.stop_threshold": stop,
            },
        )
        result.rows[config.label] = _measure(trace, config)
    return result


def run_candidate_sweep(
    ks: Sequence[int] = (25, 100, 200, 400),
    scale: ExperimentScale = FULL_SCALE,
) -> AblationResult:
    """Sweep the XGB policies' candidate-scan width."""
    trace = make_trace("FB", scale)
    result = AblationResult()
    for k in ks:
        config = SystemConfig(
            label=f"k={k}",
            placement="octopus",
            downgrade="xgb",
            upgrade="xgb",
            conf={"xgb.candidates": k},
        )
        result.rows[config.label] = _measure(trace, config)
    return result


def run_scheduler_awareness(
    scale: ExperimentScale = FULL_SCALE,
) -> AblationResult:
    """Tier-aware vs tier-unaware task placement (the paper's future work).

    The paper observes that stock schedulers ignore tiers, leaving a
    15-20% HR gap between where data *is* and where tasks *read from*
    (Fig 9); this ablation quantifies how much a tier-aware scheduler
    recovers under the XGB policies.
    """
    trace = make_trace("FB", scale)
    result = AblationResult()
    for tier_aware in (True, False):
        label = "tier-aware" if tier_aware else "tier-unaware (stock)"
        config = SystemConfig(
            label=label,
            placement="octopus",
            downgrade="xgb",
            upgrade="xgb",
            tier_aware_scheduler=tier_aware,
        )
        result.rows[label] = _measure(trace, config)
    return result


def run_budget_sweep(
    budgets: Sequence[int] = (256 * 2**20, 1 * GB, 4 * GB),
    scale: ExperimentScale = FULL_SCALE,
) -> AblationResult:
    """Sweep the XGB upgrade scheduling budget."""
    trace = make_trace("FB", scale)
    result = AblationResult()
    for budget in budgets:
        config = SystemConfig(
            label=f"budget={budget // 2**20}MB",
            placement="octopus",
            downgrade="xgb",
            upgrade="xgb",
            conf={"xgb.upgrade_budget": budget},
        )
        result.rows[config.label] = _measure(trace, config)
    return result


def render_ablation(result: AblationResult, title: str) -> str:
    rows = [
        [label, f"{hr:.3f}", f"{bhr:.3f}", f"{hours:.2f}"]
        for label, (hr, bhr, hours) in result.rows.items()
    ]
    return format_table(
        ["Variant", "HR", "BHR", "Task hours"], rows, title=title
    )
