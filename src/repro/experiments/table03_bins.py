"""Table 3: job size distributions of the FB and CMU workloads.

Bins jobs by input size and reports, per bin: % of jobs, % of resources
(aggregate task time share), % of I/O, and total task time in minutes —
measured by running each workload once over the HDFS baseline (resource
usage is placement-independent at this granularity).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.engine.runner import SystemConfig, run_workload
from repro.experiments.common import (
    ExperimentScale,
    FULL_SCALE,
    format_table,
    make_trace,
)
from repro.workload.bins import BIN_NAMES, BINS


@dataclass
class BinRow:
    name: str
    data_range: str
    pct_jobs: float
    pct_resources: float
    pct_io: float
    task_minutes: float


@dataclass
class Table03Result:
    rows: Dict[str, List[BinRow]] = field(default_factory=dict)  # workload -> rows


def _span(bin_) -> str:
    mb = 1024 * 1024
    low = bin_.low // mb
    high = bin_.high // mb
    if high >= 1024:
        if low >= 1024:
            return f"{low / 1024:.0f}-{high / 1024:.0f}GB"
        return f"{low}MB-{high / 1024:.0f}GB"
    return f"{low}-{high}MB"


def run_table03(scale: ExperimentScale = FULL_SCALE) -> Table03Result:
    result = Table03Result()
    for workload in ("FB", "CMU"):
        trace = make_trace(workload, scale)
        run = run_workload(
            trace, SystemConfig(label="HDFS", placement="hdfs")
        )
        total_jobs = len(trace.jobs)
        io = trace.io_per_bin()
        total_io = sum(io.values()) or 1
        total_task = run.metrics.total_task_seconds() or 1.0
        jobs = trace.jobs_per_bin()
        rows = []
        for bin_ in BINS:
            task_seconds = run.metrics.bins[bin_.name].task_seconds
            rows.append(
                BinRow(
                    name=bin_.name,
                    data_range=_span(bin_),
                    pct_jobs=100.0 * jobs[bin_.name] / total_jobs,
                    pct_resources=100.0 * task_seconds / total_task,
                    pct_io=100.0 * io[bin_.name] / total_io,
                    task_minutes=task_seconds / 60.0,
                )
            )
        result.rows[workload] = rows
    return result


def render_table03(result: Table03Result) -> str:
    headers = ["Bin", "Data size"]
    for metric in ("% Jobs", "% Resources", "% I/O", "Task min"):
        for workload in result.rows:
            headers.append(f"{metric} {workload}")
    table_rows = []
    for i, name in enumerate(BIN_NAMES):
        row = [name, result.rows["FB"][i].data_range]
        for attr in ("pct_jobs", "pct_resources", "pct_io", "task_minutes"):
            for workload in result.rows:
                row.append(f"{getattr(result.rows[workload][i], attr):.1f}")
        table_rows.append(row)
    return format_table(headers, table_rows, title="Table 3: job size distributions")
