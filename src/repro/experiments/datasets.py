"""Offline training-data generation straight from a trace.

The model-evaluation experiments (Figs 14-17) need timestamped
(feature, label) streams.  Rather than running the full cluster
simulation, this module replays the *trace* alone — every file's creation
and access times are known — and mimics the online trainer: one
observation per access (positive by construction) plus periodic sampling
over all live files.  The result is identical in distribution to what the
live :class:`~repro.core.training.AccessModelTrainer` produces, at a
fraction of the cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.common.rng import make_rng
from repro.common.units import MINUTES
from repro.ml.access_model import TrainingPoint
from repro.ml.features import FeatureSpec, build_feature_vector, label_for_window
from repro.workload.jobs import Trace


@dataclass
class _FileHistory:
    size: int
    creation_time: float
    access_times: List[float]


def _collect_histories(trace: Trace) -> Dict[str, _FileHistory]:
    histories: Dict[str, _FileHistory] = {}
    for creation in trace.creations:
        histories[creation.path] = _FileHistory(
            creation.size, max(creation.time, 0.0), []
        )
    for job in sorted(trace.jobs, key=lambda j: j.submit_time):
        for output in job.outputs:
            histories[output.path] = _FileHistory(
                output.size, job.submit_time, []
            )
    for job in sorted(trace.jobs, key=lambda j: j.submit_time):
        for path in job.input_paths:
            history = histories.get(path)
            if history is not None and job.submit_time >= history.creation_time:
                history.access_times.append(job.submit_time)
    return histories


def generate_observation_stream(
    trace: Trace,
    window: float,
    spec: Optional[FeatureSpec] = None,
    sample_interval: float = 5 * MINUTES,
    sample_size: int = 100,
    seed: int = 11,
    k_track: int = 12,
) -> List[TrainingPoint]:
    """Produce the time-ordered training points a live trainer would see.

    ``window`` is the class window (30min for the upgrade model, 1h for
    the downgrade model at trace scale).  Points are generated:

    * right after every file access (reference = access time − window);
    * every ``sample_interval`` for ``sample_size`` random live files.
    """
    spec = spec or FeatureSpec()
    rng = make_rng(seed)
    histories = _collect_histories(trace)
    events: List[Tuple[float, str]] = []
    for path, history in histories.items():
        for t in history.access_times:
            events.append((t, path))
    t = sample_interval
    end = trace.duration
    paths = sorted(histories)
    while t < end:
        live = [p for p in paths if histories[p].creation_time <= t]
        if live:
            count = min(sample_size, len(live))
            picks = rng.choice(len(live), size=count, replace=False)
            for i in picks:
                events.append((t, live[int(i)]))
        t += sample_interval
    events.sort(key=lambda e: e[0])

    points: List[TrainingPoint] = []
    for now, path in events:
        history = histories[path]
        reference = now - window
        if reference < history.creation_time:
            continue
        past = [a for a in history.access_times if a <= reference][-k_track:]
        features = build_feature_vector(
            spec, history.size, history.creation_time, past, reference
        )
        label = label_for_window(history.access_times, reference, window)
        points.append(TrainingPoint(features=features, label=label, timestamp=now))
    return points


def split_by_time(
    points: List[TrainingPoint],
    boundaries: Tuple[float, ...],
) -> List[List[TrainingPoint]]:
    """Partition a stream at absolute time boundaries (paper: 4h/1h/1h)."""
    segments: List[List[TrainingPoint]] = [[] for _ in range(len(boundaries) + 1)]
    for point in points:
        index = sum(point.timestamp >= b for b in boundaries)
        segments[index].append(point)
    return segments


def to_arrays(points: List[TrainingPoint]) -> Tuple[np.ndarray, np.ndarray]:
    """Stack a point list into (X, y) arrays."""
    if not points:
        raise ValueError("empty point list")
    X = np.vstack([p.features for p in points])
    y = np.array([p.label for p in points])
    return X, y


def shift_timestamps(
    points: List[TrainingPoint], offset: float
) -> List[TrainingPoint]:
    """Return a copy of the stream moved by ``offset`` seconds."""
    return [
        TrainingPoint(p.features, p.label, p.timestamp + offset) for p in points
    ]
