"""Extension: the related-work eviction policies under the framework.

The paper demonstrates the framework's generality with 11 policies
(Sec 8); this repo adds seven more from the related-work discussion —
RANDOM, SIZE, ARC, Marker-with-oracle (Sec 2.3's [36]), SLRU-K (Big
SQL's second algorithm, Sec 2.1), Greedy-Dual-Size, and LeCaR ([51]) —
and runs them in the downgrade-only harness next to LRU and XGB.

The expected shape: RANDOM and SIZE trail everything (no recency or
frequency signal at all); the adaptive schemes (ARC, LeCaR) track LRU on
a temporally-local workload; the learned policies stay on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence

from repro.core.registry import EXTRA_DOWNGRADE_POLICY_NAMES
from repro.engine.metrics import completion_reduction
from repro.engine.runner import RunResult, SystemConfig, run_workload
from repro.experiments.common import (
    ExperimentScale,
    FULL_SCALE,
    format_table,
    make_trace,
)
from repro.workload.bins import BIN_NAMES

LABELS = {
    "random": "RANDOM",
    "size": "SIZE",
    "arc": "ARC",
    "marker": "MARKER+ML",
    "slru-k": "SLRU-K",
    "gds": "GDS",
    "lecar": "LeCaR",
}

#: Table 1 anchors the comparison.
REFERENCE_POLICIES = ("lru", "xgb")


@dataclass
class ExtendedPoliciesResult:
    workload: str
    runs: Dict[str, RunResult] = field(default_factory=dict)
    completion_reduction: Dict[str, Dict[str, float]] = field(default_factory=dict)


def run_extended_policies(
    workload: str = "FB",
    scale: ExperimentScale = FULL_SCALE,
    workers: int = 11,
    policies: Sequence[str] = EXTRA_DOWNGRADE_POLICY_NAMES,
) -> ExtendedPoliciesResult:
    trace = make_trace(workload, scale)
    result = ExtendedPoliciesResult(workload=workload)
    baseline = run_workload(
        trace, SystemConfig(label="HDFS", placement="hdfs", workers=workers)
    )
    result.runs["HDFS"] = baseline
    for name in tuple(REFERENCE_POLICIES) + tuple(policies):
        label = LABELS.get(name, name.upper())
        run = run_workload(
            trace,
            SystemConfig(
                label=label,
                placement="octopus",
                downgrade=name,
                upgrade=None,
                workers=workers,
            ),
        )
        result.runs[label] = run
        result.completion_reduction[label] = completion_reduction(
            baseline.metrics, run.metrics
        )
    return result


def render_extended_policies(result: ExtendedPoliciesResult) -> str:
    rows = []
    for label, run in result.runs.items():
        if label == "HDFS":
            continue
        metrics = run.metrics
        rows.append(
            [
                label,
                f"{100 * metrics.hit_ratio():.1f}",
                f"{100 * metrics.byte_hit_ratio():.1f}",
                f"{metrics.total_task_seconds() / 3600.0:.2f}",
            ]
            + [f"{result.completion_reduction[label][b]:.1f}" for b in BIN_NAMES]
        )
    return format_table(
        ["Policy", "HR%", "BHR%", "Task hours"] + [f"Δ{b}%" for b in BIN_NAMES],
        rows,
        title=(
            f"Extension ({result.workload}): related-work eviction policies "
            "under the downgrade-only harness"
        ),
    )
