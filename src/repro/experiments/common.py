"""Shared experiment plumbing: scales, configurations, table rendering.

The paper's full workloads (1000/800 jobs over 6 hours) run in tens of
seconds in this simulator; ``ExperimentScale`` lets the benchmark harness
trade fidelity for speed (CI runs use ``scale < 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.engine.runner import SystemConfig
from repro.workload.jobs import Trace
from repro.workload.profiles import PROFILES, WorkloadProfile, scaled_profile
from repro.workload.synthesis import synthesize_trace


@dataclass(frozen=True)
class ExperimentScale:
    """Knobs that shrink experiments for quick runs."""

    workload_scale: float = 1.0
    seed: int = 42

    def profile(self, name: str) -> WorkloadProfile:
        profile = PROFILES[name]
        if self.workload_scale != 1.0:
            profile = scaled_profile(profile, self.workload_scale)
        return profile


#: Default scale used by the benchmark harness: the paper's full
#: workloads (they complete in well under a minute per configuration).
FULL_SCALE = ExperimentScale(workload_scale=1.0)

#: Reduced scale for smoke runs.
SMOKE_SCALE = ExperimentScale(workload_scale=0.15)


def make_trace(
    workload: str,
    scale: ExperimentScale = FULL_SCALE,
    drift: bool = True,
) -> Trace:
    """Synthesize the named workload ("FB" or "CMU") at ``scale``.

    ``drift=False`` produces a stationary variant (no popularity rotation
    or period stretch) for experiments that isolate model capacity from
    workload evolution (Figs 14-15).
    """
    return synthesize_trace(scale.profile(workload), seed=scale.seed, drift=drift)


def standard_configs(
    workers: int = 11, io_model: str = "snapshot"
) -> List[SystemConfig]:
    """The Sec 7.2 comparison set: baselines plus the four policy pairs."""
    return [
        SystemConfig(
            label="HDFS", placement="hdfs", workers=workers, io_model=io_model
        ),
        SystemConfig(
            label="OctopusFS", placement="octopus", workers=workers,
            io_model=io_model,
        ),
        SystemConfig(
            label="LRU-OSA", placement="octopus", downgrade="lru",
            upgrade="osa", workers=workers, io_model=io_model,
        ),
        SystemConfig(
            label="LRFU", placement="octopus", downgrade="lrfu",
            upgrade="lrfu", workers=workers, io_model=io_model,
        ),
        SystemConfig(
            label="EXD", placement="octopus", downgrade="exd",
            upgrade="exd", workers=workers, io_model=io_model,
        ),
        SystemConfig(
            label="XGB", placement="octopus", downgrade="xgb",
            upgrade="xgb", workers=workers, io_model=io_model,
        ),
    ]


class RowMetrics:
    """The :class:`~repro.engine.metrics.MetricsCollector` read surface
    the experiment renderers use, backed by a sweep worker row."""

    def __init__(self, row: Dict[str, object]):
        self._row = row

    def hit_ratio(self) -> float:
        return float(self._row["hit_ratio"])

    def byte_hit_ratio(self) -> float:
        return float(self._row["byte_hit_ratio"])

    def total_task_seconds(self) -> float:
        return float(self._row["task_hours"]) * 3600.0


class RowResult:
    """RunResult-shaped view over a sweep worker row.

    Lets experiments fan their runs across the sweep orchestrator
    (``--jobs N``) while keeping their renderers unchanged: the row's
    deterministic metrics are bit-identical to an in-process run (only
    ratio/task-hour rounding in the row — finer than any renderer's
    display precision — differs).
    """

    def __init__(self, row: Dict[str, object], label: str):
        self.row = dict(row)
        self.label = label
        self.jobs_submitted = row["jobs_submitted"]
        self.jobs_finished = row["jobs_finished"]
        self.deletions_applied = row["deletions_applied"]
        self.transfers_committed = row["transfers_committed"]
        self.metrics = RowMetrics(self.row)


def run_labelled_cells(labelled_cells, jobs: int):
    """Run ``(label, cell)`` pairs through the sweep orchestrator.

    Returns one :class:`RowResult` per pair, in order.  Raises
    ``RuntimeError`` naming every failed cell (after the orchestrator's
    bounded retry) so experiments fail loudly rather than render a
    partial table.
    """
    import tempfile

    from repro.sweep import SweepStore, run_cells

    cells = [cell for _, cell in labelled_cells]
    with tempfile.TemporaryDirectory(prefix="experiment-sweep-") as tmp:
        payloads = run_cells(cells, SweepStore(tmp, "experiment"), jobs=jobs)
    bad = [p for p in payloads if p["status"] != "ok"]
    if bad:
        raise RuntimeError(
            f"{len(bad)} experiment cell(s) failed: "
            + "; ".join(f"{p['cell_id']}: {p['error']}" for p in bad)
        )
    return [
        RowResult(payload["row"], label)
        for (label, _), payload in zip(labelled_cells, payloads)
    ]


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render an aligned text table (the harness prints these)."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def percent(value: float) -> str:
    return f"{value:.1f}%"


def percent_map(values: Dict[str, float]) -> List[str]:
    return [percent(values[name]) for name in sorted(values)]
