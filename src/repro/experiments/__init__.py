"""Experiment runners: one module per table/figure of the paper.

Each module exposes a ``run_*`` function returning plain dataclasses/
dicts, plus a ``render_*`` helper that formats them as the text rows the
paper reports.  The benchmark harness under ``benchmarks/`` is a thin
pytest-benchmark wrapper over these runners; the modules can equally be
driven from a notebook or script.

=====================  ====================================================
Experiment             Module
=====================  ====================================================
Fig 2                  :mod:`repro.experiments.fig02_dfsio`
Table 3                :mod:`repro.experiments.table03_bins`
Fig 5                  :mod:`repro.experiments.fig05_cdfs`
Figs 6-9               :mod:`repro.experiments.endtoend`
Figs 10-11             :mod:`repro.experiments.downgrade_only`
Fig 12 / Table 4       :mod:`repro.experiments.upgrade_only`
Fig 13                 :mod:`repro.experiments.scalability`
Figs 14-15             :mod:`repro.experiments.model_eval`
Figs 16-17             :mod:`repro.experiments.learning_modes`
Sec 4.3                :mod:`repro.experiments.tuning`
Sec 7.7                :mod:`repro.experiments.overheads`
AutoCache (Sec 3.3)    :mod:`repro.experiments.autocache`
Fault tolerance        :mod:`repro.experiments.fault_tolerance`
Ablations (extension)  :mod:`repro.experiments.ablations`
=====================  ====================================================
"""

from repro.experiments.common import (
    ExperimentScale,
    format_table,
    make_trace,
    standard_configs,
)

__all__ = [
    "ExperimentScale",
    "make_trace",
    "standard_configs",
    "format_table",
]
