"""Fig 5: CDFs of job data size, file size, and access frequency."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from repro.common.units import MB
from repro.experiments.common import (
    ExperimentScale,
    FULL_SCALE,
    format_table,
    make_trace,
)
from repro.workload.jobs import Trace


@dataclass
class CdfResult:
    """Per workload: the three CDFs as (value, cumulative prob) pairs."""

    job_sizes: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    file_sizes: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)
    frequencies: Dict[str, Tuple[np.ndarray, np.ndarray]] = field(default_factory=dict)


def run_fig05(scale: ExperimentScale = FULL_SCALE) -> CdfResult:
    result = CdfResult()
    for workload in ("FB", "CMU"):
        trace = make_trace(workload, scale)
        result.job_sizes[workload] = Trace.cdf(trace.job_sizes())
        result.file_sizes[workload] = Trace.cdf(trace.file_sizes())
        counts = [c for c in trace.access_counts().values() if c > 0]
        result.frequencies[workload] = Trace.cdf(counts)
    return result


def _quantiles(values: np.ndarray, probs: np.ndarray, marks) -> List[str]:
    out = []
    for mark in marks:
        index = np.searchsorted(probs, mark)
        index = min(index, len(values) - 1)
        out.append(f"{values[index]:.3g}")
    return out


def render_fig05(result: CdfResult) -> str:
    marks = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
    sections = []
    for title, data, unit in (
        ("Fig 5(a): job data size CDF (MB)", result.job_sizes, MB),
        ("Fig 5(b): file size CDF (MB)", result.file_sizes, MB),
        ("Fig 5(c): access frequency CDF (count)", result.frequencies, 1),
    ):
        rows = []
        for workload, (values, probs) in data.items():
            scaled = values / unit
            rows.append([workload] + _quantiles(scaled, probs, marks))
        headers = ["Workload"] + [f"p{int(m * 100)}" for m in marks]
        sections.append(format_table(headers, rows, title=title))
    return "\n\n".join(sections)
