"""Execution engine: contention-aware I/O, scheduling, and metrics.

This is the simulated equivalent of Hadoop running over the DFS: jobs
become map tasks (one per input block) and output-writer tasks scheduled
onto per-node slots, with I/O durations priced by the shared-stream
bandwidth model of :mod:`repro.engine.iomodel`.
"""

from repro.engine.flows import FairShareEngine, Flow, Resource, compute_max_min_rates
from repro.engine.iomodel import IO_MODEL_NAMES, IoModel, WriteLeg
from repro.engine.metrics import (
    BinMetrics,
    MetricsCollector,
    completion_reduction,
    efficiency_improvement,
)
from repro.engine.scheduler import JobExecution, TaskScheduler
from repro.engine.runner import (
    PLACEMENT_NAMES,
    RunResult,
    SystemConfig,
    WorkloadRunner,
    make_placement,
    run_workload,
)
from repro.engine.dfsio import DfsioResult, DfsioRunner

__all__ = [
    "IoModel",
    "IO_MODEL_NAMES",
    "WriteLeg",
    "FairShareEngine",
    "Flow",
    "Resource",
    "compute_max_min_rates",
    "MetricsCollector",
    "BinMetrics",
    "completion_reduction",
    "efficiency_improvement",
    "TaskScheduler",
    "JobExecution",
    "SystemConfig",
    "RunResult",
    "WorkloadRunner",
    "run_workload",
    "make_placement",
    "PLACEMENT_NAMES",
    "DfsioResult",
    "DfsioRunner",
]
