"""DFSIO benchmark runner (paper Sec 3.1, Fig 2).

One sequential writer per worker node writes 1GB files round-robin until
the total volume is reached, then one reader per node reads them back.
Per-file completion records yield the throughput-vs-data-volume curves:
average per-node throughput within consecutive data windows, exposing the
drop when the memory tier fills (~42-44GB aggregate).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.common.errors import InsufficientSpaceError
from repro.common.units import GB
from repro.engine.iomodel import WriteLeg
from repro.engine.runner import SystemConfig, WorkloadRunner
from repro.workload.dfsio import DfsioSpec
from repro.workload.jobs import Trace


@dataclass
class DfsioResult:
    """Per-file I/O records of one DFSIO phase."""

    label: str
    #: (cumulative bytes at completion, file bytes, duration seconds)
    write_records: List[Tuple[int, int, float]] = field(default_factory=list)
    read_records: List[Tuple[int, int, float]] = field(default_factory=list)

    def throughput_curve(
        self,
        records: List[Tuple[int, int, float]],
        num_nodes: int,
        window: int = 6 * GB,
    ) -> List[Tuple[float, float]]:
        """Windowed average throughput per node: (GB so far, MB/s/node)."""
        curve: List[Tuple[float, float]] = []
        window_bytes = 0
        window_time = 0.0
        cumulative = 0
        for _, size, duration in records:
            cumulative += size
            window_bytes += size
            window_time += duration
            if window_bytes >= window:
                # Writers run in parallel: per-node rate is a single
                # writer's rate, which equals bytes/duration of its files.
                mbps = window_bytes / window_time / (1024 * 1024)
                curve.append((cumulative / GB, mbps))
                window_bytes = 0
                window_time = 0.0
        if window_bytes > 0 and window_time > 0:
            mbps = window_bytes / window_time / (1024 * 1024)
            curve.append((cumulative / GB, mbps))
        return curve

    def write_curve(self, num_nodes: int) -> List[Tuple[float, float]]:
        return self.throughput_curve(self.write_records, num_nodes)

    def read_curve(self, num_nodes: int) -> List[Tuple[float, float]]:
        return self.throughput_curve(self.read_records, num_nodes)


class DfsioRunner:
    """Drives the write and read phases on a :class:`WorkloadRunner` stack."""

    def __init__(
        self,
        config: SystemConfig,
        spec: Optional[DfsioSpec] = None,
    ) -> None:
        self.spec = spec or DfsioSpec()
        # Reuse the runner's system assembly with an empty trace.
        self.runner = WorkloadRunner(
            Trace(name="dfsio", duration=0.0), config
        )
        self.result = DfsioResult(label=config.label)

    # -- write phase ------------------------------------------------------------
    def run(self) -> DfsioResult:
        self._run_writes()
        self._run_reads()
        if self.runner.manager is not None:
            self.runner.manager.stop()
        return self.result

    def _drain(self, active: List[int]) -> None:
        """Step the simulator until the phase's workers all finish.

        ``sim.run()`` cannot be used: the tiering framework's periodic
        timers reschedule forever, so the loop is bounded by the phase's
        own completion counter instead.
        """
        sim = self.runner.sim
        guard = 0
        while active[0] > 0 and sim.step():
            guard += 1
            if guard > 50_000_000:  # pragma: no cover - safety valve
                raise RuntimeError("DFSIO phase failed to converge")

    def _run_writes(self) -> None:
        sim = self.runner.sim
        nodes = [n.node_id for n in self.runner.topology.nodes]
        paths = self.spec.file_paths()
        cumulative = [0]  # closed over; bytes completed so far
        assignments: List[List[str]] = [[] for _ in nodes]
        for i, path in enumerate(paths):
            assignments[i % len(nodes)].append(path)
        active = [sum(1 for queue in assignments if queue)]

        def start_writer(node_id: str, queue: List[str]) -> None:
            if not queue:
                active[0] -= 1
                return
            path = queue.pop(0)
            start = sim.now()
            try:
                file = self.runner.master.create_file(
                    path, self.spec.file_size, writer_node=node_id
                )
            except InsufficientSpaceError:
                active[0] -= 1
                return
            legs = []
            size = 0
            for block in self.runner.master.blocks.blocks_of(file):
                size += block.size
                for replica in block.replica_list():
                    legs.append(
                        WriteLeg(
                            device=self.runner.iomodel.device(replica.device_id),
                            remote=replica.node_id != node_id,
                            node_id=replica.node_id,
                        )
                    )
            def finish() -> None:
                cumulative[0] += size
                self.result.write_records.append(
                    (cumulative[0], size, sim.now() - start)
                )
                start_writer(node_id, queue)

            if self.runner.iomodel.fairshare:
                self.runner.iomodel.write(
                    size,
                    legs,
                    writer_node=node_id,
                    on_complete=finish,
                    name=f"dfsio-write-{path}",
                )
                return
            duration, release = self.runner.iomodel.start_write(
                size, legs, writer_node=node_id
            )

            def finish_snapshot() -> None:
                release()
                finish()

            sim.after(duration, finish_snapshot, name=f"dfsio-write-{path}")

        for node_id, queue in zip(nodes, assignments):
            if queue:
                start_writer(node_id, queue)
        self._drain(active)

    # -- read phase --------------------------------------------------------------
    def _run_reads(self) -> None:
        sim = self.runner.sim
        nodes = [n.node_id for n in self.runner.topology.nodes]
        paths = [p for p in self.spec.file_paths() if self.runner.master.exists(p)]
        cumulative = [0]
        assignments: List[List[str]] = [[] for _ in nodes]
        for i, path in enumerate(paths):
            assignments[i % len(nodes)].append(path)
        active = [sum(1 for queue in assignments if queue)]

        def start_reader(node_id: str, queue: List[str]) -> None:
            if not queue:
                active[0] -= 1
                return
            path = queue.pop(0)
            start = sim.now()
            plan = self.runner.master.read_file(path, reader_node=node_id)
            remaining = [len(plan.reads)]
            size = plan.total_bytes

            def block_done() -> None:
                remaining[0] -= 1
                if remaining[0] == 0:
                    cumulative[0] += size
                    self.result.read_records.append(
                        (cumulative[0], size, sim.now() - start)
                    )
                    start_reader(node_id, queue)

            if not plan.reads:
                start_reader(node_id, queue)
                return
            if self.runner.iomodel.fairshare:
                # Blocks are read strictly one after another: each flow
                # starts when the previous one drains, so the client
                # only ever contends with one in-flight block.
                def start_block(index: int) -> None:
                    read = plan.reads[index]
                    remote = read.replica.node_id != node_id

                    def done() -> None:
                        block_done()
                        if index + 1 < len(plan.reads):
                            start_block(index + 1)

                    self.runner.iomodel.read(
                        read.block.size,
                        read.replica.device_id,
                        remote,
                        node_id,
                        read.replica.node_id,
                        on_complete=done,
                        name=f"dfsio-read-{path}",
                    )

                start_block(0)
                return
            # Blocks of one file are read sequentially by the client.
            delay = 0.0
            for read in plan.reads:
                remote = read.replica.node_id != node_id
                duration, release = self.runner.iomodel.start_read(
                    read.block.size,
                    read.replica.device_id,
                    remote,
                    node_id,
                    read.replica.node_id,
                )
                delay += duration

                def make_finish(rel):
                    def finish() -> None:
                        rel()
                        block_done()

                    return finish

                sim.after(delay, make_finish(release), name=f"dfsio-read-{path}")

        for node_id, queue in zip(nodes, assignments):
            if queue:
                start_reader(node_id, queue)
        self._drain(active)
