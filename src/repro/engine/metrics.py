"""Workload metrics: everything the evaluation figures report.

One :class:`MetricsCollector` instance accumulates, per job-size bin:

* job completion times (Figs 6, 10, 12, 13);
* aggregate task execution time = cluster efficiency numerator (Fig 7);
* bytes read per storage tier (Fig 8);
* hit ratio / byte hit ratio, both *access*-based (which tier actually
  served each task) and *location*-based (was the file fully in memory
  right before the access) — Figs 9 and 11;
* bytes read from memory and total (Table 4's byte accuracy/coverage,
  combined with the monitor's upgraded-bytes counter).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cluster.hardware import DEFAULT_HIERARCHY, TierHierarchy, TierSpec
from repro.workload.bins import BIN_NAMES


@dataclass
class BinMetrics:
    """Accumulators for one job-size bin."""

    jobs_completed: int = 0
    completion_time_sum: float = 0.0
    task_seconds: float = 0.0
    # Lazily keyed by TierSpec so the same accumulator works for any
    # hierarchy depth; readers zero-fill from the collector's hierarchy.
    bytes_by_tier: Dict[TierSpec, int] = field(default_factory=dict)

    @property
    def mean_completion_time(self) -> float:
        if self.jobs_completed == 0:
            return 0.0
        return self.completion_time_sum / self.jobs_completed


@dataclass
class MetricsCollector:
    """Aggregates run metrics, mostly keyed by bin."""

    bins: Dict[str, BinMetrics] = field(
        default_factory=lambda: {name: BinMetrics() for name in BIN_NAMES}
    )
    #: The tier hierarchy of the run (controls per-tier breakdowns and
    #: which tier counts as the "memory" hit target: the highest).
    hierarchy: TierHierarchy = field(default_factory=lambda: DEFAULT_HIERARCHY)
    # Access-based hits: which tier served each task read.
    task_reads: int = 0
    task_reads_memory: int = 0
    bytes_read: int = 0
    bytes_read_memory: int = 0
    # Location-based hits: was the whole file memory-resident at access.
    file_accesses: int = 0
    file_accesses_memory_located: int = 0
    location_bytes: int = 0
    location_bytes_memory: int = 0
    # Output side.
    bytes_written: int = 0
    jobs_completed: int = 0

    # -- recording ----------------------------------------------------------
    def record_task_read(
        self, bin_name: str, tier: TierSpec, num_bytes: int
    ) -> None:
        self.task_reads += 1
        self.bytes_read += num_bytes
        by_tier = self.bins[bin_name].bytes_by_tier
        by_tier[tier] = by_tier.get(tier, 0) + num_bytes
        if tier.is_highest:
            self.task_reads_memory += 1
            self.bytes_read_memory += num_bytes

    def record_file_access(self, memory_located: bool, num_bytes: int) -> None:
        self.file_accesses += 1
        self.location_bytes += num_bytes
        if memory_located:
            self.file_accesses_memory_located += 1
            self.location_bytes_memory += num_bytes

    def record_task_time(self, bin_name: str, seconds: float) -> None:
        self.bins[bin_name].task_seconds += seconds

    def record_job_completion(self, bin_name: str, seconds: float) -> None:
        self.jobs_completed += 1
        bin_metrics = self.bins[bin_name]
        bin_metrics.jobs_completed += 1
        bin_metrics.completion_time_sum += seconds

    def record_write(self, num_bytes: int) -> None:
        self.bytes_written += num_bytes

    # -- derived metrics ---------------------------------------------------------
    def hit_ratio(self) -> float:
        """Access-based HR: fraction of task reads served from memory."""
        if self.task_reads == 0:
            return 0.0
        return self.task_reads_memory / self.task_reads

    def byte_hit_ratio(self) -> float:
        """Access-based BHR: fraction of bytes served from memory."""
        if self.bytes_read == 0:
            return 0.0
        return self.bytes_read_memory / self.bytes_read

    def location_hit_ratio(self) -> float:
        """Location-based HR: file fully memory-resident at access time."""
        if self.file_accesses == 0:
            return 0.0
        return self.file_accesses_memory_located / self.file_accesses

    def location_byte_hit_ratio(self) -> float:
        if self.location_bytes == 0:
            return 0.0
        return self.location_bytes_memory / self.location_bytes

    def total_task_seconds(self) -> float:
        return sum(b.task_seconds for b in self.bins.values())

    def mean_completion_times(self) -> Dict[str, float]:
        return {name: b.mean_completion_time for name, b in self.bins.items()}

    def tier_access_distribution(self) -> Dict[str, Dict[TierSpec, float]]:
        """Per-bin fraction of bytes served from each tier (Fig 8)."""
        result: Dict[str, Dict[TierSpec, float]] = {}
        for name, bin_metrics in self.bins.items():
            total = sum(bin_metrics.bytes_by_tier.values())
            result[name] = {
                t: (bin_metrics.bytes_by_tier.get(t, 0) / total if total else 0.0)
                for t in self.hierarchy
            }
        return result


def completion_reduction(
    baseline: MetricsCollector, candidate: MetricsCollector
) -> Dict[str, float]:
    """Per-bin % reduction in mean completion time vs a baseline (Fig 6)."""
    result = {}
    for name in BIN_NAMES:
        base = baseline.bins[name].mean_completion_time
        cand = candidate.bins[name].mean_completion_time
        result[name] = 0.0 if base <= 0 else (base - cand) / base * 100.0
    return result


def efficiency_improvement(
    baseline: MetricsCollector, candidate: MetricsCollector
) -> Dict[str, float]:
    """Per-bin % reduction in aggregate task time vs a baseline (Fig 7)."""
    result = {}
    for name in BIN_NAMES:
        base = baseline.bins[name].task_seconds
        cand = candidate.bins[name].task_seconds
        result[name] = 0.0 if base <= 0 else (base - cand) / base * 100.0
    return result
