"""Contention-aware I/O timing: snapshot pricing or fair-share flows.

Two pricing models share this facade, selected per run with
``SystemConfig.io_model`` / ``--io-model``:

``snapshot`` (default, the pre-flow behaviour, bit-identical)
    Durations are computed when an operation starts, using the stream
    counts at that instant (a snapshot approximation of processor
    sharing): a device serving ``n`` concurrent streams gives each
    ``bw / n``; cross-node traffic is additionally capped by the
    per-node network bandwidth shared the same way.  This is what makes
    the DFSIO experiment (Fig 2) come out paper-shaped: writing 3 HDD
    replicas per block triples the HDD stream load and collapses
    per-node throughput relative to tiered placement.

``fairshare``
    Every operation becomes a flow with bytes remaining traversing a
    resource graph (devices, per-node NICs, shared resources); rates are
    re-solved max-min fair whenever any flow starts or finishes, and
    completion events are rescheduled (:mod:`repro.engine.flows`).  Two
    *shared* resources exist only here: a cluster-wide endpoint cap in
    front of every remote tier (so ``remote5`` cold-tier throughput no
    longer scales with worker count) and optional per-rack uplinks
    (``Rack.uplink_bandwidth`` / ``io.rack_uplink_bandwidth``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.cluster.hardware import (
    DEFAULT_NETWORK_BANDWIDTH,
    DEFAULT_REMOTE_ENDPOINT_BANDWIDTH,
    StorageDevice,
    TierSpec,
)
from repro.cluster.topology import ClusterTopology
from repro.common.config import Configuration
from repro.engine.flows import FairShareEngine, Flow, Resource
from repro.sim.simulator import Simulator

IO_MODEL_NAMES = ("snapshot", "fairshare")


@dataclass(frozen=True)
class WriteLeg:
    """One replica destination of a pipelined block write."""

    device: StorageDevice
    remote: bool
    node_id: str


def _bottleneck_leg(legs: List[WriteLeg]) -> WriteLeg:
    """The write leg queue delay is attributed to: the slowest medium
    in the replica pipeline (shared by both pricing models so the
    attribution cannot drift between them)."""
    return min(legs, key=lambda leg: leg.device.profile.write_bw)


class IoModel:
    """Tracks active streams/flows and prices read/write/transfer ops."""

    def __init__(
        self,
        topology: ClusterTopology,
        network_bandwidth: float = DEFAULT_NETWORK_BANDWIDTH,
        sim: Optional[Simulator] = None,
        pricing: str = "snapshot",
        conf: Optional[Configuration] = None,
    ) -> None:
        if pricing not in IO_MODEL_NAMES:
            raise ValueError(
                f"unknown io model {pricing!r}; choose from {IO_MODEL_NAMES}"
            )
        self.topology = topology
        conf = conf if conf is not None else Configuration()
        self.network_bandwidth = conf.get_float(
            "io.network_bandwidth", network_bandwidth
        )
        self.pricing = pricing
        self.sim = sim
        self._device_streams: Dict[str, int] = {}
        self._net_streams: Dict[str, int] = {}
        self._devices: Dict[str, StorageDevice] = {}
        for node in topology.nodes:
            self._net_streams[node.node_id] = 0
            for device in node.devices():
                self._devices[device.device_id] = device
                self._device_streams[device.device_id] = 0
        # Snapshot-mode contention accounting (pure bookkeeping).
        self._ops_priced = 0
        self._priced_seconds = 0.0
        self._ideal_seconds = 0.0
        #: Queue-delay accounting, both models: simulation seconds each
        #: operation spent beyond its uncontended ideal, attributed to
        #: the tier of the bottleneck device (reads/transfers: the
        #: device served; writes: the slowest replica leg).  Pure
        #: bookkeeping — never feeds back into pricing.
        self.queue_delay_by_tier: Dict[str, float] = {
            tier.name: 0.0 for tier in topology.hierarchy
        }
        # -- fair-share resource graph --------------------------------------
        self.engine: Optional[FairShareEngine] = None
        self._dev_resource: Dict[str, Resource] = {}
        self._dev_write_weight: Dict[str, float] = {}
        self._nic_resource: Dict[str, Resource] = {}
        self._endpoint_resource: Dict[TierSpec, Resource] = {}
        self._uplink_resource: Dict[str, Resource] = {}
        if pricing == "fairshare":
            if sim is None:
                raise ValueError("fairshare pricing needs the simulator")
            self.engine = FairShareEngine(sim)
            self.engine.vector_threshold = conf.get_int(
                "io.vector_threshold", FairShareEngine.vector_threshold
            )
            endpoint_bw = conf.get_float(
                "io.remote_endpoint_bandwidth", DEFAULT_REMOTE_ENDPOINT_BANDWIDTH
            )
            for device_id, device in self._devices.items():
                profile = device.profile
                self._dev_resource[device_id] = Resource(
                    f"dev:{device_id}", profile.read_bw
                )
                self._dev_write_weight[device_id] = (
                    profile.read_bw / profile.write_bw
                )
            for node in topology.nodes:
                self._nic_resource[node.node_id] = Resource(
                    f"nic:{node.node_id}", self.network_bandwidth
                )
            for tier in topology.hierarchy:
                if tier.remote:
                    self._endpoint_resource[tier] = Resource(
                        f"endpoint:{tier.name}", endpoint_bw
                    )
            uplink_default = conf.get_float("io.rack_uplink_bandwidth", 0.0)
            for rack in topology.racks:
                uplink = (
                    rack.uplink_bandwidth
                    if rack.uplink_bandwidth is not None
                    else uplink_default
                )
                if uplink and uplink > 0:
                    self._uplink_resource[rack.name] = Resource(
                        f"uplink:{rack.name}", uplink
                    )

    @property
    def fairshare(self) -> bool:
        return self.pricing == "fairshare"

    def device(self, device_id: str) -> StorageDevice:
        return self._devices[device_id]

    # -- snapshot internals --------------------------------------------------
    def _device_share(self, device: StorageDevice, write: bool) -> float:
        streams = self._device_streams[device.device_id] + 1
        bw = device.profile.write_bw if write else device.profile.read_bw
        return bw / streams

    def _net_share(self, node_id: str) -> float:
        streams = self._net_streams[node_id] + 1
        return self.network_bandwidth / streams

    def _acquire(
        self, device_ids: List[str], net_nodes: List[str]
    ) -> Callable[[], None]:
        for device_id in device_ids:
            self._device_streams[device_id] += 1
        for node_id in net_nodes:
            self._net_streams[node_id] += 1
        released = [False]

        def release() -> None:
            if released[0]:
                raise RuntimeError("stream released twice")
            released[0] = True
            for device_id in device_ids:
                self._device_streams[device_id] -= 1
            for node_id in net_nodes:
                self._net_streams[node_id] -= 1

        return release

    def _require_snapshot(self) -> None:
        if self.pricing != "snapshot":
            raise RuntimeError(
                "start_read/start_write price a whole operation up front and "
                "only exist under the snapshot model; use read()/write()/"
                "transfer() with an on_complete callback under fairshare"
            )

    # -- reads (snapshot) ----------------------------------------------------
    def start_read(
        self,
        size: int,
        device_id: str,
        remote: bool,
        reader_node: str,
        source_node: str,
    ) -> Tuple[float, Callable[[], None]]:
        """Begin a block read; returns (duration, release callback).

        The caller must invoke the release callback when the read ends
        (i.e. schedule it on the simulator at start + duration).
        """
        self._require_snapshot()
        device = self._devices[device_id]
        bandwidth = self._device_share(device, write=False)
        ideal = device.profile.read_bw
        net_nodes: List[str] = []
        if remote:
            bandwidth = min(
                bandwidth, self._net_share(source_node), self._net_share(reader_node)
            )
            ideal = min(ideal, self.network_bandwidth)
            net_nodes = (
                [source_node, reader_node]
                if source_node != reader_node
                else [source_node]
            )
        duration = device.profile.seek_latency + size / bandwidth
        self._ops_priced += 1
        self._priced_seconds += duration
        ideal_duration = device.profile.seek_latency + size / ideal
        self._ideal_seconds += ideal_duration
        self.queue_delay_by_tier[device.tier.name] += duration - ideal_duration
        release = self._acquire([device_id], net_nodes)
        return duration, release

    # -- writes (snapshot) ---------------------------------------------------
    def start_write(
        self, size: int, legs: List[WriteLeg], writer_node: Optional[str]
    ) -> Tuple[float, Callable[[], None]]:
        """Begin a pipelined block write to all replica legs.

        The pipeline streams at the minimum effective bandwidth across
        legs (slowest medium or the network for remote legs).
        """
        self._require_snapshot()
        if not legs:
            raise ValueError("write needs at least one leg")
        bandwidth = float("inf")
        ideal = float("inf")
        latency = 0.0
        device_ids = []
        net_nodes = set()
        for leg in legs:
            bandwidth = min(bandwidth, self._device_share(leg.device, write=True))
            ideal = min(ideal, leg.device.profile.write_bw)
            latency = max(latency, leg.device.profile.seek_latency)
            device_ids.append(leg.device.device_id)
            if leg.remote:
                bandwidth = min(bandwidth, self._net_share(leg.node_id))
                ideal = min(ideal, self.network_bandwidth)
                net_nodes.add(leg.node_id)
                if writer_node is not None:
                    bandwidth = min(bandwidth, self._net_share(writer_node))
                    net_nodes.add(writer_node)
        duration = latency + size / bandwidth
        self._ops_priced += 1
        self._priced_seconds += duration
        ideal_duration = latency + size / ideal
        self._ideal_seconds += ideal_duration
        self.queue_delay_by_tier[_bottleneck_leg(legs).device.tier.name] += (
            duration - ideal_duration
        )
        release = self._acquire(device_ids, sorted(net_nodes))
        return duration, release

    # -- fair-share link assembly --------------------------------------------
    def _require_fairshare(self) -> FairShareEngine:
        if self.engine is None:
            raise RuntimeError(
                "read()/write()/transfer() schedule completion through the "
                "flow engine and only exist under the fairshare model; use "
                "start_read/start_write under snapshot"
            )
        return self.engine

    class _LinkSet:
        """Dedups (resource, weight) pairs, keeping the highest weight."""

        def __init__(self) -> None:
            self._links: Dict[str, Tuple[Resource, float]] = {}

        def add(self, resource: Optional[Resource], weight: float = 1.0) -> None:
            if resource is None:
                return
            current = self._links.get(resource.name)
            if current is None or weight > current[1]:
                self._links[resource.name] = (resource, weight)

        def as_list(self) -> List[Tuple[Resource, float]]:
            return list(self._links.values())

    def _add_network_legs(
        self, links: "_LinkSet", src_node: str, dst_node: str
    ) -> None:
        """Cross-node traffic: both NICs, plus uplinks across racks."""
        if src_node == dst_node:
            return
        links.add(self._nic_resource.get(src_node))
        links.add(self._nic_resource.get(dst_node))
        if self._uplink_resource:
            src_rack = self.topology.rack_of(src_node).name
            dst_rack = self.topology.rack_of(dst_node).name
            if src_rack != dst_rack:
                links.add(self._uplink_resource.get(src_rack))
                links.add(self._uplink_resource.get(dst_rack))

    def _add_endpoint_leg(
        self, links: "_LinkSet", device: StorageDevice, accessing_node: str
    ) -> None:
        """Remote-tier access: the shared endpoint plus the accessor's NIC.

        The per-node remote device models this node's slice of the cold
        store; the data itself always crosses the cluster-wide endpoint
        and the accessing node's NIC, even for a nominally "local"
        replica.
        """
        endpoint = self._endpoint_resource.get(device.tier)
        if endpoint is None:
            return
        links.add(endpoint)
        links.add(self._nic_resource.get(accessing_node))

    # -- fair-share operations -----------------------------------------------
    @staticmethod
    def _lone_flow_bw(links: "IoModel._LinkSet") -> float:
        """The rate the engine would give this flow running alone.

        A lone flow on a resource of capacity ``C`` with weight ``w``
        gets ``C / w`` (e.g. a write on a device resource of capacity
        ``read_bw`` with weight ``read_bw/write_bw`` gets ``write_bw``).
        Deriving the uncontended ideal from the flow's *actual* links
        keeps it honest about structural caps (remote endpoints, rack
        uplinks): only genuine contention counts as queue delay.
        """
        return min(
            resource.capacity / weight for resource, weight in links.as_list()
        )

    def _track_queue_delay(
        self,
        tier_name: str,
        ideal_duration: float,
        on_complete: Callable[[], None],
    ) -> Callable[[], None]:
        """Wrap a flow completion to account realized-minus-ideal time.

        The wrapper only adds bookkeeping at the completion instant —
        flow rates, event order, and timing are untouched, so results
        stay bit-identical with the accounting in place.
        """
        start = self.sim.now()

        def done() -> None:
            realized = self.sim.now() - start
            self.queue_delay_by_tier[tier_name] += max(0.0, realized - ideal_duration)
            on_complete()

        return done

    def read(
        self,
        size: int,
        device_id: str,
        remote: bool,
        reader_node: str,
        source_node: str,
        on_complete: Callable[[], None],
        name: str = "read",
    ) -> Flow:
        """Start a block-read flow; ``on_complete`` fires when it drains."""
        engine = self._require_fairshare()
        device = self._devices[device_id]
        links = self._LinkSet()
        links.add(self._dev_resource[device_id])
        if remote:
            self._add_network_legs(links, source_node, reader_node)
        self._add_endpoint_leg(links, device, reader_node)
        on_complete = self._track_queue_delay(
            device.tier.name,
            device.profile.seek_latency + size / self._lone_flow_bw(links),
            on_complete,
        )
        return engine.submit(
            size,
            links.as_list(),
            on_complete,
            latency=device.profile.seek_latency,
            name=name,
        )

    def write(
        self,
        size: int,
        legs: List[WriteLeg],
        writer_node: Optional[str],
        on_complete: Callable[[], None],
        name: str = "write",
    ) -> Flow:
        """Start a pipelined write flow to all replica legs."""
        engine = self._require_fairshare()
        if not legs:
            raise ValueError("write needs at least one leg")
        links = self._LinkSet()
        latency = 0.0
        for leg in legs:
            device_id = leg.device.device_id
            links.add(self._dev_resource[device_id], self._dev_write_weight[device_id])
            latency = max(latency, leg.device.profile.seek_latency)
            if leg.remote and writer_node is not None:
                self._add_network_legs(links, writer_node, leg.node_id)
            elif leg.remote:
                links.add(self._nic_resource.get(leg.node_id))
            self._add_endpoint_leg(
                links, leg.device, writer_node if writer_node else leg.node_id
            )
        on_complete = self._track_queue_delay(
            _bottleneck_leg(legs).device.tier.name,
            latency + size / self._lone_flow_bw(links),
            on_complete,
        )
        return engine.submit(
            size, links.as_list(), on_complete, latency=latency, name=name
        )

    def transfer(
        self,
        size: int,
        source_device_id: str,
        source_node: str,
        target_device_id: str,
        target_node: str,
        on_complete: Callable[[], None],
        name: str = "transfer",
    ) -> Flow:
        """Start a tier-transfer flow: read source, write target.

        This is how Replication Monitor migrations contend with
        foreground task I/O under the fair-share model.
        """
        engine = self._require_fairshare()
        src = self._devices[source_device_id]
        dst = self._devices[target_device_id]
        links = self._LinkSet()
        links.add(self._dev_resource[source_device_id])
        links.add(
            self._dev_resource[target_device_id],
            self._dev_write_weight[target_device_id],
        )
        self._add_network_legs(links, source_node, target_node)
        # Reading from a remote tier lands the bytes on the target node;
        # writing to one sends them from the source node.
        self._add_endpoint_leg(links, src, target_node)
        self._add_endpoint_leg(links, dst, source_node)
        latency = src.profile.seek_latency + dst.profile.seek_latency
        on_complete = self._track_queue_delay(
            dst.tier.name, latency + size / self._lone_flow_bw(links), on_complete
        )
        return engine.submit(
            size,
            links.as_list(),
            on_complete,
            latency=latency,
            name=name,
        )

    # -- introspection -------------------------------------------------------
    def active_streams(self, device_id: str) -> int:
        if self.engine is not None:
            return self.engine.flows_crossing(self._dev_resource[device_id])
        return self._device_streams[device_id]

    def active_net_streams(self, node_id: str) -> int:
        if self.engine is not None:
            return self.engine.flows_crossing(self._nic_resource[node_id])
        return self._net_streams[node_id]

    def active_endpoint_streams(self, tier: TierSpec) -> int:
        """Active flows crossing a remote tier's shared endpoint."""
        if self.engine is None:
            return 0
        resource = self._endpoint_resource.get(tier)
        return 0 if resource is None else self.engine.flows_crossing(resource)

    def active_operations(self) -> int:
        """I/O operations currently in flight, whichever the model.

        Under fair share this is the engine's live flow count; under
        snapshot it is the number of open device streams (a pipelined
        write counts once per replica leg it holds open, so the gauge
        slightly over-counts operations in exchange for O(devices)
        sampling).  The timeseries recorder samples this as its
        in-flight-I/O gauge.
        """
        if self.engine is not None:
            return self.engine.active_flows
        return sum(self._device_streams.values())

    def assert_drained(self) -> None:
        """Raise unless every stream count and flow has drained to zero.

        The invariant every end-to-end run must satisfy: leaked streams
        mean some operation never released its bandwidth share (snapshot)
        or a flow never completed (fairshare).
        """
        if self.engine is not None:
            if self.engine.active_flows:
                leaked = list(self.engine._flows.values())
                raise RuntimeError(f"flows leaked: {leaked[:5]!r}")
            return
        leaked_devices = {
            d: n for d, n in self._device_streams.items() if n != 0
        }
        leaked_nics = {n: c for n, c in self._net_streams.items() if c != 0}
        if leaked_devices or leaked_nics:
            raise RuntimeError(
                f"streams leaked: devices={leaked_devices} nics={leaked_nics}"
            )

    def io_stats(self) -> Dict[str, Any]:
        """Cumulative contention statistics (benchmark-friendly)."""
        queue_delays = {
            name: round(delay, 6)
            for name, delay in self.queue_delay_by_tier.items()
        }
        if self.engine is not None:
            return {
                "model": "fairshare",
                "queue_delay_by_tier": queue_delays,
                "flows_started": self.engine.flows_started,
                "flows_completed": self.engine.flows_completed,
                "recomputes": self.engine.recomputes,
                "peak_concurrency": self.engine.peak_concurrency,
                "max_component": self.engine.max_component,
                "vector_solves": self.engine.vector_solves,
                "events_rescheduled": self.engine.events_rescheduled,
                "realized_io_seconds": self.engine.realized_seconds,
                "ideal_io_seconds": self.engine.ideal_seconds,
                "contention_seconds": self.engine.contention_seconds,
            }
        return {
            "model": "snapshot",
            "queue_delay_by_tier": queue_delays,
            "ops_priced": self._ops_priced,
            "realized_io_seconds": self._priced_seconds,
            "ideal_io_seconds": self._ideal_seconds,
            "contention_seconds": max(
                0.0, self._priced_seconds - self._ideal_seconds
            ),
        }
