"""Contention-aware I/O timing.

Durations are computed when an operation starts, using the stream counts
at that instant (a snapshot approximation of processor sharing): a device
serving ``n`` concurrent streams gives each ``bw / n``; cross-node
traffic is additionally capped by the per-node network bandwidth shared
the same way.  This is what makes the DFSIO experiment (Fig 2) come out
paper-shaped: writing 3 HDD replicas per block triples the HDD stream
load and collapses per-node throughput relative to tiered placement.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.cluster.hardware import StorageDevice
from repro.cluster.topology import ClusterTopology
from repro.common.units import MB

DEFAULT_NETWORK_BANDWIDTH = 1250 * MB  # 10GbE (Fig 2 read throughputs require > 1GbE)


@dataclass(frozen=True)
class WriteLeg:
    """One replica destination of a pipelined block write."""

    device: StorageDevice
    remote: bool
    node_id: str


class IoModel:
    """Tracks active streams and prices read/write operations."""

    def __init__(
        self,
        topology: ClusterTopology,
        network_bandwidth: float = DEFAULT_NETWORK_BANDWIDTH,
    ) -> None:
        self.topology = topology
        self.network_bandwidth = network_bandwidth
        self._device_streams: Dict[str, int] = {}
        self._net_streams: Dict[str, int] = {}
        self._devices: Dict[str, StorageDevice] = {}
        for node in topology.nodes:
            self._net_streams[node.node_id] = 0
            for device in node.devices():
                self._devices[device.device_id] = device
                self._device_streams[device.device_id] = 0

    def device(self, device_id: str) -> StorageDevice:
        return self._devices[device_id]

    # -- internals ----------------------------------------------------------
    def _device_share(self, device: StorageDevice, write: bool) -> float:
        streams = self._device_streams[device.device_id] + 1
        bw = device.profile.write_bw if write else device.profile.read_bw
        return bw / streams

    def _net_share(self, node_id: str) -> float:
        streams = self._net_streams[node_id] + 1
        return self.network_bandwidth / streams

    def _acquire(self, device_ids: List[str], net_nodes: List[str]) -> Callable[[], None]:
        for device_id in device_ids:
            self._device_streams[device_id] += 1
        for node_id in net_nodes:
            self._net_streams[node_id] += 1
        released = [False]

        def release() -> None:
            if released[0]:
                raise RuntimeError("stream released twice")
            released[0] = True
            for device_id in device_ids:
                self._device_streams[device_id] -= 1
            for node_id in net_nodes:
                self._net_streams[node_id] -= 1

        return release

    # -- reads -------------------------------------------------------------------
    def start_read(
        self,
        size: int,
        device_id: str,
        remote: bool,
        reader_node: str,
        source_node: str,
    ) -> Tuple[float, Callable[[], None]]:
        """Begin a block read; returns (duration, release callback).

        The caller must invoke the release callback when the read ends
        (i.e. schedule it on the simulator at start + duration).
        """
        device = self._devices[device_id]
        bandwidth = self._device_share(device, write=False)
        net_nodes: List[str] = []
        if remote:
            bandwidth = min(
                bandwidth, self._net_share(source_node), self._net_share(reader_node)
            )
            net_nodes = (
                [source_node, reader_node]
                if source_node != reader_node
                else [source_node]
            )
        duration = device.profile.seek_latency + size / bandwidth
        release = self._acquire([device_id], net_nodes)
        return duration, release

    # -- writes ------------------------------------------------------------------
    def start_write(
        self, size: int, legs: List[WriteLeg], writer_node: Optional[str]
    ) -> Tuple[float, Callable[[], None]]:
        """Begin a pipelined block write to all replica legs.

        The pipeline streams at the minimum effective bandwidth across
        legs (slowest medium or the network for remote legs).
        """
        if not legs:
            raise ValueError("write needs at least one leg")
        bandwidth = float("inf")
        latency = 0.0
        device_ids = []
        net_nodes = set()
        for leg in legs:
            bandwidth = min(bandwidth, self._device_share(leg.device, write=True))
            latency = max(latency, leg.device.profile.seek_latency)
            device_ids.append(leg.device.device_id)
            if leg.remote:
                bandwidth = min(bandwidth, self._net_share(leg.node_id))
                net_nodes.add(leg.node_id)
                if writer_node is not None:
                    bandwidth = min(bandwidth, self._net_share(writer_node))
                    net_nodes.add(writer_node)
        duration = latency + size / bandwidth
        release = self._acquire(device_ids, sorted(net_nodes))
        return duration, release

    # -- introspection -------------------------------------------------------------
    def active_streams(self, device_id: str) -> int:
        return self._device_streams[device_id]

    def active_net_streams(self, node_id: str) -> int:
        return self._net_streams[node_id]
