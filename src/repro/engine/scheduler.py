"""Slot-based task scheduler executing MapReduce-style jobs.

Each worker node offers a fixed number of task slots (8, matching the
paper's cores).  A job turns into one map task per input block plus one
write task per output file.  The scheduler is locality-aware the way
Hadoop is — it prefers placing a map task on a node holding a replica of
its block (fastest tier first) — but, like the stock schedulers the paper
calls out in Sec 7.2, it is *not* tier-aware across nodes and it falls
back to any free slot rather than waiting, which is exactly what creates
the gap between location-based and access-based hit ratios (Fig 9).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Dict, List, Optional

import numpy as np

from repro.cluster.topology import ClusterTopology
from repro.common.errors import InsufficientSpaceError
from repro.dfs.block import BlockInfo
from repro.dfs.master import Master
from repro.engine.iomodel import IoModel, WriteLeg
from repro.engine.metrics import MetricsCollector
from repro.sim.simulator import Simulator
from repro.workload.jobs import OutputSpec, TraceJob


@dataclass
class _MapTask:
    job: "JobExecution"
    block: BlockInfo


@dataclass
class _OutputTask:
    job: "JobExecution"
    spec: OutputSpec


@dataclass
class JobExecution:
    """Runtime state of one trace job."""

    trace_job: TraceJob
    submit_time: float
    maps_remaining: int = 0
    outputs_remaining: int = 0
    finished: bool = False
    task_seconds: float = 0.0

    @property
    def bin_name(self) -> str:
        return self.trace_job.size_bin.name


class TaskScheduler:
    """Dispatches tasks onto node slots and times their execution."""

    #: Optional per-job metrics fanout (multi-tenant service mode):
    #: maps a :class:`TraceJob` to an *extra* collector that records
    #: alongside the global one, so a shared cluster can keep
    #: per-tenant hit-ratio/completion projections.  ``None`` (the
    #: default) keeps the classic single-collector recording path
    #: bit-identical.
    metrics_for_job: Optional[Callable[[TraceJob], Optional[MetricsCollector]]] = None

    #: Optional decision tracer (:class:`repro.obs.trace.Tracer`),
    #: installed by the runner when ``obs.trace`` is set.  ``None``
    #: (the default) keeps every path untraced and bit-identical.
    tracer = None

    def __init__(
        self,
        sim: Simulator,
        master: Master,
        iomodel: IoModel,
        metrics: MetricsCollector,
        task_overhead: tuple = (0.5, 2.0),
        seed: int = 3,
        on_job_finished: Optional[Callable[[JobExecution], None]] = None,
        tier_aware: bool = True,
    ) -> None:
        self.sim = sim
        self.master = master
        self.topology: ClusterTopology = master.topology
        self.iomodel = iomodel
        self.metrics = metrics
        self.task_overhead = task_overhead
        self.on_job_finished = on_job_finished
        #: Whether locality preference considers replica *tier* (prefer
        #: the node holding the memory replica) or only node locality
        #: (the stock Hadoop behaviour the paper's conclusion wants
        #: improved).  The ablation benchmark compares both.
        self.tier_aware = tier_aware
        #: Tier-unaware mode only: fraction of map tasks that obtain a
        #: data-local slot (stock Hadoop locality is imperfect — heartbeat
        #: timing and queue pressure send the rest anywhere, where they
        #: read the fastest replica remotely).  Calibrated so the
        #: location-vs-access hit-ratio gap lands near the paper's
        #: 15-20 point range (Fig 9).
        self.locality_rate = 0.2
        self._rng = np.random.default_rng(seed)
        self._slots: Dict[str, int] = {
            n.node_id: n.task_slots for n in self.topology.nodes
        }
        self._busy: Dict[str, int] = {n.node_id: 0 for n in self.topology.nodes}
        self._dead: set = set()
        #: Running total of free slots on live nodes, maintained on every
        #: take/release/failure/recovery so the dispatch loop does not
        #: rescan all nodes per queued task (O(1) instead of O(nodes)).
        self._free_total = sum(self._slots.values())
        self._pending: Deque[object] = deque()
        self.active_jobs = 0
        self.jobs_finished = 0
        self.dropped_outputs = 0
        self.missing_inputs = 0

    def _sinks(self, trace_job: TraceJob):
        """Collectors recording this job: the global one, plus any
        per-tenant projection supplied through :attr:`metrics_for_job`."""
        if self.metrics_for_job is None:
            return (self.metrics,)
        extra = self.metrics_for_job(trace_job)
        if extra is None:
            return (self.metrics,)
        return (self.metrics, extra)

    # -- slot accounting (failure-aware) -------------------------------------
    def free_slots(self, node_id: str) -> int:
        """Schedulable slots on ``node_id`` (0 while the node is down)."""
        if node_id in self._dead:
            return 0
        return self._slots[node_id] - self._busy[node_id]

    def _take_slot(self, node_id: str) -> None:
        self._busy[node_id] += 1
        if node_id not in self._dead:
            self._free_total -= 1

    def _release_slot(self, node_id: str) -> None:
        # Tasks that were in flight when their node died still release
        # their slot (graceful-decommission semantics: running work
        # completes, new work is kept away).
        self._busy[node_id] -= 1
        if node_id not in self._dead:
            self._free_total += 1

    # -- failure hooks (driven by the fault injector) ----------------------------
    def on_node_failed(self, node_id: str) -> None:
        if node_id not in self._dead:
            self._free_total -= self.free_slots(node_id)
            self._dead.add(node_id)

    def on_node_recovered(self, node_id: str) -> None:
        if node_id in self._dead:
            self._dead.discard(node_id)
            self._free_total += self.free_slots(node_id)
        self._dispatch()

    # -- job submission ------------------------------------------------------
    def submit(self, job: TraceJob) -> JobExecution:
        """Submit a trace job: record accesses, enqueue its map tasks."""
        execution = JobExecution(trace_job=job, submit_time=self.sim.now())
        self.active_jobs += 1
        blocks: List[BlockInfo] = []
        for path in job.input_paths:
            if not self.master.exists(path):
                # A chained input whose producer has not finished yet
                # (or was dropped); the job proceeds without it.
                self.missing_inputs += 1
                continue
            # Fires access notifications (statistics + upgrade policies)
            # and records the location-based hit ratio.
            plan = self.master.read_file(path)
            for sink in self._sinks(job):
                sink.record_file_access(plan.memory_location, plan.file.size)
            blocks.extend(self.master.blocks.blocks_of(plan.file))
        execution.maps_remaining = len(blocks)
        execution.outputs_remaining = len(job.outputs)
        if self.tracer is not None:
            self.tracer.emit(
                "job_submit",
                job=job.job_id,
                inputs=len(job.input_paths),
                maps=len(blocks),
                outputs=len(job.outputs),
            )
        for block in blocks:
            self._pending.append(_MapTask(job=execution, block=block))
        if not blocks:
            self._maps_done(execution)
        self._dispatch()
        return execution

    # -- dispatch loop -----------------------------------------------------------
    def _total_free(self) -> int:
        return self._free_total

    def _dispatch(self) -> None:
        while self._pending and self._free_total > 0:
            task = self._pending.popleft()
            node_id = self._pick_node(task)
            assert node_id is not None  # guaranteed by _total_free() > 0
            self._take_slot(node_id)
            if isinstance(task, _MapTask):
                self._start_map(task, node_id)
            else:
                self._start_output(task, node_id)

    def _pick_node(self, task: object) -> Optional[str]:
        if isinstance(task, _MapTask):
            # Locality preference: nodes holding a replica.  Tier-aware
            # mode targets the fastest replica's node first; tier-unaware
            # mode (stock Hadoop) only cares about data locality and
            # picks arbitrarily among equally-free holders — the seeded
            # shuffle models that arbitrariness (a deterministic
            # tie-break would systematically favour or starve the memory
            # replica, which real schedulers do not).
            replicas = task.block.replica_list()
            if self.tier_aware:
                replicas.sort(key=lambda r: (r.tier, r.replica_id))
            elif self._rng.random() < self.locality_rate:
                # Data-local but tier-blind: an arbitrary holder node
                # (the seeded shuffle models the arbitrariness — a
                # deterministic tie-break would systematically favour or
                # starve the memory replica, which real schedulers do
                # not).
                self._rng.shuffle(replicas)
                replicas.sort(key=lambda r: -self.free_slots(r.node_id))
            else:
                # Locality miss: the task runs wherever a slot is free
                # and reads the fastest replica over the network.
                replicas = []
            for replica in replicas:
                if self.free_slots(replica.node_id) > 0:
                    return replica.node_id
        # Fall back to the node with the most free slots (deterministic).
        candidates = [n for n in self._slots if self.free_slots(n) > 0]
        if not candidates:
            return None
        return max(candidates, key=lambda n: (self.free_slots(n), n))

    # -- map task execution ---------------------------------------------------------
    def _start_map(self, task: _MapTask, node_id: str) -> None:
        block = task.block
        start = self.sim.now()
        read = self.master.choose_replica(block, node_id)
        replica = read.replica
        remote = replica.node_id != node_id
        tier = replica.tier

        def finish() -> None:
            self._release_slot(node_id)
            elapsed = self.sim.now() - start
            job = task.job
            job.task_seconds += elapsed
            for sink in self._sinks(job.trace_job):
                sink.record_task_read(job.bin_name, tier, block.size)
                sink.record_task_time(job.bin_name, elapsed)
            if self.tracer is not None:
                self.tracer.emit(
                    "task_read",
                    job=job.trace_job.job_id,
                    tier=tier.name,
                    node=node_id,
                    bytes=block.size,
                    seconds=elapsed,
                )
            job.maps_remaining -= 1
            if job.maps_remaining == 0:
                self._maps_done(job)
            self._dispatch()

        cpu = task.job.trace_job.cpu_seconds_per_byte * block.size
        if self.iomodel.fairshare:
            # The flow engine owns I/O completion; CPU crunch and task
            # overhead run after the last byte lands (and no longer hold
            # the device, unlike the snapshot approximation).
            overhead = float(self._rng.uniform(*self.task_overhead))

            def io_done() -> None:
                self.sim.after(cpu + overhead, finish, name=f"map-{block.block_id}")

            self.iomodel.read(
                block.size,
                replica.device_id,
                remote,
                node_id,
                replica.node_id,
                on_complete=io_done,
                name=f"map-{block.block_id}",
            )
            return
        duration, release = self.iomodel.start_read(
            block.size, replica.device_id, remote, node_id, replica.node_id
        )
        overhead = float(self._rng.uniform(*self.task_overhead))
        total = duration + cpu + overhead

        def finish_snapshot() -> None:
            release()
            finish()

        self.sim.after(total, finish_snapshot, name=f"map-{block.block_id}")

    def _maps_done(self, job: JobExecution) -> None:
        if job.outputs_remaining == 0:
            self._finish_job(job)
            return
        for spec in job.trace_job.outputs:
            self._pending.append(_OutputTask(job=job, spec=spec))
        self._dispatch()

    # -- output task execution ---------------------------------------------------------
    def _start_output(self, task: _OutputTask, node_id: str) -> None:
        start = self.sim.now()
        job = task.job
        try:
            file = self.master.create_file(
                task.spec.path, task.spec.size, writer_node=node_id
            )
        except InsufficientSpaceError:
            self.dropped_outputs += 1
            self._release_slot(node_id)
            self._output_done(job, start)
            self._dispatch()
            return
        legs: List[WriteLeg] = []
        total_size = 0
        for block in self.master.blocks.blocks_of(file):
            total_size += block.size
            for replica in block.replica_list():
                legs.append(
                    WriteLeg(
                        device=self.iomodel.device(replica.device_id),
                        remote=replica.node_id != node_id,
                        node_id=replica.node_id,
                    )
                )
        def finish() -> None:
            self._release_slot(node_id)
            self._output_done(job, start)
            self._dispatch()

        if self.iomodel.fairshare:
            overhead = float(self._rng.uniform(*self.task_overhead))
            for sink in self._sinks(job.trace_job):
                sink.record_write(total_size)
            if not legs:
                self.sim.after(overhead, finish, name=f"out-{file.inode_id}")
                return

            def io_done() -> None:
                self.sim.after(overhead, finish, name=f"out-{file.inode_id}")

            # Pipeline all blocks as one flow: replication multiplies
            # the aggregate device load, the dominant scale effect.
            self.iomodel.write(
                total_size,
                legs,
                writer_node=node_id,
                on_complete=io_done,
                name=f"out-{file.inode_id}",
            )
            return
        if legs:
            # Pipeline all blocks as one stream: replication multiplies
            # the aggregate device load, the dominant scale effect.
            duration, release = self.iomodel.start_write(
                total_size, legs, writer_node=node_id
            )
        else:
            duration, release = 0.0, lambda: None
        overhead = float(self._rng.uniform(*self.task_overhead))
        for sink in self._sinks(job.trace_job):
            sink.record_write(total_size)

        def finish_snapshot() -> None:
            release()
            finish()

        self.sim.after(
            duration + overhead, finish_snapshot, name=f"out-{file.inode_id}"
        )

    def _output_done(self, job: JobExecution, start: float) -> None:
        elapsed = self.sim.now() - start
        job.task_seconds += elapsed
        for sink in self._sinks(job.trace_job):
            sink.record_task_time(job.bin_name, elapsed)
        if self.tracer is not None:
            self.tracer.emit(
                "task_write", job=job.trace_job.job_id, seconds=elapsed
            )
        job.outputs_remaining -= 1
        if job.outputs_remaining == 0 and job.maps_remaining == 0:
            self._finish_job(job)

    def _finish_job(self, job: JobExecution) -> None:
        if job.finished:
            return
        job.finished = True
        self.active_jobs -= 1
        self.jobs_finished += 1
        completion = self.sim.now() - job.submit_time
        for sink in self._sinks(job.trace_job):
            sink.record_job_completion(job.bin_name, completion)
        if self.tracer is not None:
            self.tracer.emit(
                "job_finish",
                job=job.trace_job.job_id,
                completion=completion,
                task_seconds=job.task_seconds,
            )
        if self.on_job_finished is not None:
            self.on_job_finished(job)

    @property
    def idle(self) -> bool:
        return self.active_jobs == 0 and not self._pending
