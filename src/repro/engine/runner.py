"""End-to-end workload execution: trace in, metrics out.

:class:`WorkloadRunner` assembles the full stack for one experimental
configuration — cluster, DFS with the requested placement policy,
optionally the tiering framework with a downgrade/upgrade policy pair —
replays a :class:`Trace` through it, and returns a :class:`RunResult`
with every metric the paper's figures need.

The four system configurations of Fig 2 / Sec 7.2 map to:

=================  ============================================------
Label              SystemConfig
=================  ==================================================
HDFS               placement="hdfs", no policies
HDFS with Cache    placement="hdfs-cache", no policies
OctopusFS          placement="octopus", no policies
Octopus++          placement="octopus", downgrade/upgrade policies set
=================  ==================================================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from functools import partial
from typing import Any, Dict, Iterator, Optional, Union

from repro.cluster.builder import build_tiered_cluster
from repro.cluster.hardware import get_hierarchy
from repro.common.config import Configuration
from repro.common.units import GB
from repro.core.manager import ReplicationManager
from repro.core.registry import configure_policies
from repro.dfs.client import DFSClient
from repro.dfs.master import Master
from repro.dfs.node_manager import NodeManager
from repro.dfs.placement import (
    HdfsCachePlacementPolicy,
    HdfsPlacementPolicy,
    OctopusPlacementPolicy,
    PlacementPolicy,
    SingleTierPlacementPolicy,
)
from repro.engine.iomodel import IoModel
from repro.engine.metrics import MetricsCollector
from repro.engine.scheduler import TaskScheduler
from repro.sim.simulator import Simulator
from repro.workload.jobs import (
    FileCreation,
    FileDeletion,
    StreamEvent,
    Trace,
    TraceJob,
    event_time,
)
from repro.workload.streams import WorkloadStream

PLACEMENT_NAMES = ("hdfs", "hdfs-cache", "octopus", "single-hdd")


@dataclass
class SystemConfig:
    """One experimental configuration of the storage system."""

    label: str = "octopus"
    placement: str = "octopus"
    downgrade: Optional[str] = None
    upgrade: Optional[str] = None
    workers: int = 11
    #: Tier hierarchy preset (see repro.cluster.hardware.hierarchy_names):
    #: "default3" reproduces the paper's memory/SSD/HDD testbed;
    #: "mem-hdd", "nvme4", and "remote5" open other regimes.
    tiers: str = "default3"
    #: I/O pricing model (see repro.engine.iomodel): "snapshot" prices
    #: each operation once at start (the pre-flow behaviour, kept
    #: bit-identical for reproduction); "fairshare" re-solves max-min
    #: fair rates on every flow start/finish and routes Replication
    #: Monitor transfers through the same shared resource graph.
    io_model: str = "snapshot"
    memory_per_node: int = 4 * GB
    task_slots: int = 8
    conf: Dict[str, Any] = field(default_factory=dict)
    seed: int = 7
    #: Tier-aware task placement (see TaskScheduler).  The default False
    #: models the stock tier-unaware Hadoop scheduler the paper's entire
    #: evaluation runs on (Sec 7.2: "current schedulers ... do not
    #: account for the presence of multiple storage tiers"); True is the
    #: future-work mode measured by the scheduler-awareness ablation.
    tier_aware_scheduler: bool = False
    #: AutoCache semantics (Sec 3.3): upgrades create extra cached memory
    #: replicas (instead of moving replicas) and downgrades delete them
    #: (instead of moving them down).  Pair with placement="hdfs".
    cache_mode: bool = False
    #: Named scenario from the registry (repro.workload.scenarios).  When
    #: set and no workload is passed to the runner, the scenario is built
    #: and driven through the streaming path.  ``scenario_params`` may
    #: carry ``seed``/``scale`` plus any scenario-specific parameter.
    scenario: Optional[str] = None
    scenario_params: Dict[str, Any] = field(default_factory=dict)
    #: Policy-preset selection (see repro.core.presets): "auto" picks the
    #: preset registered for ``scenario`` (no-op when none is set, so
    #: every pre-preset configuration reproduces bit-identically), a
    #: preset name forces one, and None/"none" disables presets.  Preset
    #: keys are defaults — anything in ``conf`` wins over them.
    preset: Optional[str] = "auto"
    #: Simulation core selection: "reference" (default) runs the classic
    #: object-per-event loop, kept bit-identical for reproduction;
    #: "fast" swaps in the slab-allocated core (repro.sim.fastsim) and
    #: enables the batched fast paths (lower vectorized-solver
    #: threshold, coarsened proactive ticks, pump batching).  Fast mode
    #: is validated to produce identical simulated metrics — see
    #: docs/benchmarks.md ("Engine modes").
    engine_mode: str = "reference"

    @property
    def uses_manager(self) -> bool:
        return self.downgrade is not None or self.upgrade is not None

    def build_scenario(self) -> "WorkloadStream":
        """Instantiate the configured scenario stream."""
        if self.scenario is None:
            raise ValueError("SystemConfig.scenario is not set")
        from repro.workload.scenarios import build_scenario

        return build_scenario(self.scenario, **self.scenario_params)

    def resolve_preset(self):
        """The :class:`~repro.core.presets.PolicyPreset` in effect, if any."""
        from repro.core.presets import get_preset, preset_for_scenario

        if self.preset in (None, "none"):
            return None
        if self.preset == "auto":
            return preset_for_scenario(self.scenario)
        return get_preset(self.preset)

    def effective_conf(self) -> Dict[str, Any]:
        """The configuration dict with preset and mode-implied keys folded in."""
        preset = self.resolve_preset()
        conf = dict(preset.conf) if preset is not None else {}
        conf.update(self.conf)
        if self.cache_mode:
            conf.setdefault("manager.cache_mode", True)
            conf.setdefault("downgrade.action", "delete")
        if self.engine_mode not in ("reference", "fast"):
            raise ValueError(
                f"unknown engine_mode {self.engine_mode!r} "
                "(expected 'reference' or 'fast')"
            )
        conf.setdefault("engine.mode", self.engine_mode)
        if conf["engine.mode"] == "fast":
            # Fast-mode defaults (each individually overridable): skip
            # provably idle proactive ticks and pump non-live streams in
            # batches.  The vector threshold is pinned (rather than
            # lowered) because measurement shows the scalar dirty-set
            # solver beats from-scratch numpy solves for mid-size
            # components: at 10x FB scale, threshold 32 tripled the
            # vector solves and was ~7% slower end to end.
            conf.setdefault("io.vector_threshold", 128)
            conf.setdefault("manager.coarse_ticks", True)
            conf.setdefault("pump.batch", 32)
        return conf


@dataclass
class RunResult:
    """Everything measured during one workload run."""

    label: str
    metrics: MetricsCollector
    elapsed: float
    jobs_finished: int
    #: Nominal submission-window end of the workload, in simulation
    #: seconds.  ``None`` means *open-ended*: a header-less live stream
    #: whose end is unknown until exhaustion (the runner rewrites its
    #: duration to the exhaustion time once reached, so completed runs
    #: report a finite value; mid-flight snapshots of a live service may
    #: legitimately carry ``None``).  Never ``inf`` — open-ended
    #: durations serialize as JSON ``null``, not a non-standard
    #: ``Infinity`` token (see docs/benchmarks.md).
    duration: Optional[float] = None
    #: Jobs submitted during replay (streamed workloads have no job list
    #: to ``len()``, so the runner counts submissions as they happen).
    jobs_submitted: int = 0
    #: File deletions applied (dataset-lifecycle scenarios only).
    deletions_applied: int = 0
    bytes_upgraded_memory: int = 0
    bytes_downgraded_memory: int = 0
    #: Per-tier movement totals keyed by tier name (JSON-friendly).
    bytes_upgraded_by_tier: Dict[str, int] = field(default_factory=dict)
    bytes_downgraded_by_tier: Dict[str, int] = field(default_factory=dict)
    transfers_committed: int = 0
    #: Contention statistics from the I/O model (see IoModel.io_stats).
    io_stats: Dict[str, Any] = field(default_factory=dict)
    #: Transfer-delay accounting: standalone vs realized transfer time
    #: (they differ only under the fair-share model).
    transfer_ideal_seconds: float = 0.0
    transfer_realized_seconds: float = 0.0
    downgrade_model_accuracy: list = field(default_factory=list)
    upgrade_model_accuracy: list = field(default_factory=list)
    #: Back-pressure observability (streamed workloads).  Pump lead is
    #: how far ahead of the simulation clock the next workload event was
    #: when the pump scheduled it (simulation seconds): large leads mean
    #: the generator is comfortably ahead, near-zero leads mean the
    #: simulation is consuming events as fast as they arrive.
    pump_events: int = 0
    pump_lead_mean_seconds: float = 0.0
    pump_lead_max_seconds: float = 0.0
    #: Stream events whose timestamp was already behind the simulation
    #: clock when pumped (clamped to "now"): the live back-pressure case.
    pump_late_events: int = 0
    #: Simulation-time seconds operations spent queued beyond their
    #: ideal device time, keyed by tier name (from IoModel).
    queue_delay_by_tier: Dict[str, float] = field(default_factory=dict)
    #: Live-transport counters (reorder-buffer depth, late/dropped
    #: events) when the workload was a LiveStream; None otherwise.
    live_stats: Optional[Dict[str, Any]] = None

    def summary(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "jobs": self.jobs_finished,
            "hit_ratio": round(self.metrics.hit_ratio(), 4),
            "byte_hit_ratio": round(self.metrics.byte_hit_ratio(), 4),
            "task_hours": round(self.metrics.total_task_seconds() / 3600.0, 2),
        }


def make_placement(
    name: str, topology, node_manager: NodeManager, conf: Configuration
) -> PlacementPolicy:
    """Placement policy factory keyed by configuration name."""
    name = name.lower()
    if name == "hdfs":
        return HdfsPlacementPolicy(topology, node_manager, conf)
    if name == "hdfs-cache":
        return HdfsCachePlacementPolicy(topology, node_manager, conf)
    if name == "octopus":
        return OctopusPlacementPolicy(topology, node_manager, conf)
    if name == "single-hdd":
        # Pins to the hierarchy's lowest local tier (HDD in default3).
        return SingleTierPlacementPolicy(topology, node_manager, conf)
    raise ValueError(f"unknown placement {name!r}")


class WorkloadRunner:
    """Builds the system stack and replays a workload through it.

    ``workload`` may be a materialized :class:`Trace`, any
    :class:`WorkloadStream` (scenario, external file, or adapter), or
    ``None`` to build the stream named by ``config.scenario``.

    Traces replay through the classic eager path (every event scheduled
    up front — kept for bit-identical reproduction of the paper runs);
    streams replay through a pump that holds **one** upcoming workload
    event at a time, so memory tracks the live simulation state rather
    than the workload length.
    """

    def __init__(
        self,
        workload: Union[Trace, WorkloadStream, None],
        config: SystemConfig,
    ) -> None:
        if workload is None:
            workload = config.build_scenario()
        self.workload = workload
        #: Set only for materialized traces (legacy attribute).
        self.trace: Optional[Trace] = (
            workload if isinstance(workload, Trace) else None
        )
        self.stream: Optional[WorkloadStream] = (
            workload if isinstance(workload, WorkloadStream) else None
        )
        if self.trace is None and self.stream is None:
            raise TypeError(
                f"workload must be a Trace or WorkloadStream, "
                f"not {type(workload).__name__}"
            )
        self.duration = workload.duration
        self.jobs_submitted = 0
        self.deletions_applied = 0
        #: Pump instrumentation (streamed workloads; see RunResult).
        self.pump_events = 0
        self.pump_lead_total = 0.0
        self.pump_lead_max = 0.0
        self.pump_late_events = 0
        self._stream_exhausted = False
        self.config = config
        self.conf = Configuration(config.effective_conf())
        self.engine_mode = self.conf.get("engine.mode", "reference")
        if self.engine_mode == "fast":
            from repro.sim.fastsim import FastSimulator

            self.sim: Simulator = FastSimulator()
        else:
            self.sim = Simulator()
        batch = self.conf.get_int("pump.batch", 1)
        if self.stream is not None and getattr(self.stream, "live_stats", None) is not None:
            # A live transport blocks in next(): batching would stall
            # the simulation until a whole batch arrived.
            batch = 1
        self._pump_batch = max(1, batch)
        self.hierarchy = get_hierarchy(config.tiers)
        overrides = (
            {"MEMORY": config.memory_per_node} if "MEMORY" in self.hierarchy else {}
        )
        self.topology = build_tiered_cluster(
            num_workers=config.workers,
            tiers=self.hierarchy,
            capacity_overrides=overrides,
            task_slots=config.task_slots,
        )
        node_manager = NodeManager(self.topology)
        placement = make_placement(
            config.placement, self.topology, node_manager, self.conf
        )
        self.master = Master(self.topology, placement, self.sim, self.conf)
        self.client = DFSClient(self.master)
        self.iomodel = IoModel(
            self.topology,
            sim=self.sim,
            pricing=config.io_model,
            conf=self.conf,
        )
        self.metrics = MetricsCollector(hierarchy=self.hierarchy)
        self.scheduler = TaskScheduler(
            self.sim,
            self.master,
            self.iomodel,
            self.metrics,
            seed=config.seed,
            tier_aware=config.tier_aware_scheduler,
        )
        self.manager: Optional[ReplicationManager] = None
        if config.uses_manager:
            self.manager = ReplicationManager(
                self.master, self.sim, self.conf, iomodel=self.iomodel
            )
            configure_policies(
                self.manager,
                downgrade=config.downgrade,
                upgrade=config.upgrade,
                seed=config.seed,
            )
        # -- observability (opt-in; absent by default so runs stay
        #    bit-identical).  ``obs.trace`` installs a Tracer on every
        #    decision point; ``obs.sample_interval`` > 0 starts the
        #    simulated-time timeseries sampler.
        self.tracer = None
        self.timeseries = None
        if self.conf.get_bool("obs.trace", False):
            from repro.obs.trace import Tracer

            tracer = self.tracer = Tracer(self.sim.now)
            self.scheduler.tracer = tracer
            self.master.tracer = tracer
            placement.tracer = tracer
            if self.manager is not None:
                self.manager.tracer = tracer
                self.manager.monitor.tracer = tracer
                # configure_policies ran above, so the trainer (if any)
                # already exists.
                if self.manager.trainer is not None:
                    self.manager.trainer.tracer = tracer
        sample = self.conf.get_duration("obs.sample_interval", 0.0)
        if sample > 0:
            from repro.obs.timeseries import TimeseriesRecorder

            self.timeseries = TimeseriesRecorder(self, sample)

    # -- replay --------------------------------------------------------------
    def _schedule_events(self) -> None:
        if self.trace is not None:
            for creation in self.trace.creations:
                self.sim.at(
                    max(creation.time, 0.0),
                    self._make_creator(creation),
                    name=f"create-{creation.path}",
                )
            for job in self.trace.jobs:
                self.sim.at(
                    job.submit_time,
                    self._make_submitter(job),
                    name=f"job-{job.job_id}",
                )
            self.jobs_submitted = len(self.trace.jobs)
        else:
            self._pump(self.stream.events())

    def _pump(self, events: Iterator[StreamEvent]) -> None:
        """Schedule the next stream event(s); reschedule on firing.

        The pump holds at most ``pump.batch`` upcoming workload events
        in the heap (default 1: exactly one, the classic lockstep pump;
        fast mode raises it for non-live streams).  When the last
        scheduled event fires, the next batch is pulled from the
        iterator — the stream is consumed in step with simulation time,
        never materialized.  For live sources the ``next()`` call blocks
        on the transport, so batching stays disabled there and
        simulation progress naturally throttles to event arrival.

        Batching is observation-equivalent to the one-event pump: each
        event's fire time is the running maximum ``max(t, previous fire
        time)`` — exactly what chained ``max(t, now)`` clamping yields —
        and the lead/late accounting uses the same reference point.
        """
        event = next(events, None)
        if event is None:
            self._stream_exhausted = True
            return
        last = self.sim.now()
        remaining = self._pump_batch
        sim_at = self.sim.at
        while True:
            t = max(event_time(event), 0.0)
            lead = t - last
            self.pump_events += 1
            if lead < 0:
                # The event's timestamp is behind the simulation clock
                # (a live producer falling behind, or a clamped late
                # event): it fires immediately, at "now".
                self.pump_late_events += 1
            else:
                self.pump_lead_total += lead
                if lead > self.pump_lead_max:
                    self.pump_lead_max = lead
            fire_at = t if t > last else last
            # priority=-1: a pumped trace event must win same-time ties
            # against system events, exactly as pre-scheduled trace
            # events do through their lower sequence numbers.
            remaining -= 1
            if remaining <= 0:
                # Last event of the batch re-enters the pump when fired.
                sim_at(
                    fire_at,
                    partial(self._fire_and_pump, event, events),
                    name="stream-pump",
                    priority=-1,
                )
                return
            nxt = next(events, None)
            if nxt is None:
                self._stream_exhausted = True
                sim_at(
                    fire_at,
                    partial(self._apply_event, event),
                    name="stream-pump",
                    priority=-1,
                )
                return
            sim_at(
                fire_at,
                partial(self._apply_event, event),
                name="stream-pump",
                priority=-1,
            )
            last = fire_at
            event = nxt

    def _fire_and_pump(self, event: StreamEvent, events: Iterator[StreamEvent]) -> None:
        """Apply the batch's last event, then schedule the next batch."""
        self._apply_event(event)
        self._pump(events)

    def _apply_event(self, event: StreamEvent) -> None:
        if isinstance(event, FileCreation):
            self.client.create(event.path, event.size)
        elif isinstance(event, TraceJob):
            self.jobs_submitted += 1
            self.scheduler.submit(event)
        elif isinstance(event, FileDeletion):
            if self.client.exists(event.path):
                self.client.delete(event.path)
                self.deletions_applied += 1
        else:  # pragma: no cover - the stream protocol is closed
            raise TypeError(f"unknown stream event {event!r}")

    def _make_creator(self, creation: FileCreation):
        def create() -> None:
            self.client.create(creation.path, creation.size)

        return create

    def _make_submitter(self, job: TraceJob):
        def submit() -> None:
            self.scheduler.submit(job)

        return submit

    def run(self, drain_limit: float = 4 * 3600.0) -> RunResult:
        """Replay the full workload and drain remaining work.

        ``drain_limit`` bounds how long past the trace end the simulation
        may run while jobs and transfers finish.
        """
        self._schedule_events()
        end = self.duration
        if math.isinf(end):
            # Live stream without a header duration: there is no nominal
            # end time, so the submission window ends when the stream is
            # exhausted.  The pump keeps exactly one upcoming event in
            # the heap while the stream has more, so stepping until
            # exhaustion consumes the whole stream (blocking on the
            # transport as needed) without running periodic timers
            # forever.
            while not self._stream_exhausted and self.sim.step():
                pass
            end = self.duration = self.sim.now()
        else:
            self.sim.run(until=end)
        # Drain: keep running until all jobs finished (or the limit hits).
        deadline = end + drain_limit
        while not self.scheduler.idle and self.sim.now() < deadline:
            if self.sim.pending == 0:
                # No live event will ever fire again (jobs stuck on
                # missing inputs, say): jump straight to the deadline
                # instead of spinning the loop 60 simulated seconds at a
                # time through an empty heap.
                self.sim.run(until=deadline)
                break
            self.sim.run(until=min(self.sim.now() + 60.0, deadline))
        if self.manager is not None:
            self.manager.stop()
        if self.timeseries is not None:
            # Stop sampling (with one final sample) so the quiescence
            # checks below still see an empty heap.
            self.timeseries.stop()
        # Let in-flight transfers conclude so accounting is complete.
        self.sim.run(until=self.sim.now() + 600.0)
        if self.scheduler.idle and self.sim.pending == 0:
            # A fully quiescent end state (no live events at all) must
            # leave no I/O in flight: every stream released, every flow
            # completed, every transfer committed or aborted.  Runs that
            # hit the drain limit with work outstanding are exempt —
            # their streams are legitimately still held.
            self.iomodel.assert_drained()
            if self.manager is not None:
                self.manager.monitor.assert_idle()
        return self.snapshot()

    def snapshot(self) -> RunResult:
        """A :class:`RunResult` view of the run *as it stands now*.

        :meth:`run` returns this at quiescence, but the method is safe to
        call mid-flight — the service mode's control plane reports live
        per-run metrics from it while the engine thread is still
        replaying (see :mod:`repro.service`).  Counters are read
        point-in-time; a concurrent snapshot is a consistent-enough
        observability view, not a transaction.
        """
        result = RunResult(
            label=self.config.label,
            metrics=self.metrics,
            elapsed=self.sim.now(),
            duration=None if math.isinf(self.duration) else self.duration,
            jobs_finished=self.scheduler.jobs_finished,
            jobs_submitted=self.jobs_submitted,
            deletions_applied=self.deletions_applied,
            io_stats=self.iomodel.io_stats(),
            pump_events=self.pump_events,
            pump_lead_mean_seconds=(
                self.pump_lead_total / self.pump_events if self.pump_events else 0.0
            ),
            pump_lead_max_seconds=self.pump_lead_max,
            pump_late_events=self.pump_late_events,
            queue_delay_by_tier=dict(self.iomodel.queue_delay_by_tier),
        )
        live_stats = getattr(self.stream, "live_stats", None)
        if live_stats is not None:
            result.live_stats = live_stats.as_dict()
        if self.manager is not None:
            monitor = self.manager.monitor
            result.transfer_ideal_seconds = monitor.transfer_ideal_seconds
            result.transfer_realized_seconds = monitor.transfer_realized_seconds
            top = self.hierarchy.highest
            result.bytes_upgraded_memory = monitor.bytes_upgraded[top]
            result.bytes_downgraded_memory = monitor.bytes_downgraded[top]
            result.bytes_upgraded_by_tier = {
                t.name: monitor.bytes_upgraded[t] for t in self.hierarchy
            }
            result.bytes_downgraded_by_tier = {
                t.name: monitor.bytes_downgraded[t] for t in self.hierarchy
            }
            result.transfers_committed = monitor.transfers_committed
            trainer = self.manager.trainer
            if trainer is not None:
                result.downgrade_model_accuracy = list(
                    trainer.downgrade_model.accuracy_history
                )
                result.upgrade_model_accuracy = list(
                    trainer.upgrade_model.accuracy_history
                )
        return result


def run_workload(
    workload: Union[Trace, WorkloadStream], config: SystemConfig
) -> RunResult:
    """Convenience wrapper: build a runner and execute it."""
    return WorkloadRunner(workload, config).run()


def run_scenario(
    name: str, config: Optional[SystemConfig] = None, **params: Any
) -> RunResult:
    """Run a registered scenario end to end through the streaming path.

    ``params`` (``seed``, ``scale``, scenario-specific knobs) go to the
    scenario builder; the system configuration defaults to the standard
    Octopus setup when ``config`` is omitted.
    """
    from repro.workload.scenarios import build_scenario

    if config is None:
        # Name the scenario so preset auto-selection matches the CLI's
        # behaviour for the same run; an explicit config is taken as-is.
        config = SystemConfig(label=name, scenario=name)
    return WorkloadRunner(build_scenario(name, **params), config).run()
