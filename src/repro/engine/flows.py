"""Flow-based fair bandwidth sharing for the I/O engine.

The snapshot model in :mod:`repro.engine.iomodel` prices an operation
once, when it starts, from the stream counts at that instant; a flow
that starts alone keeps its full bandwidth even if fifty streams join a
tick later.  This module provides the *re-pricing* alternative: every
read, write, or tier transfer becomes a :class:`Flow` with a byte count
remaining and a set of :class:`Resource` links (device bandwidth,
per-node NICs, shared endpoints), and whenever any flow starts or
finishes the engine recomputes weighted max-min fair rates on the
touched resources and reschedules the in-flight completion events via
``Event.cancel()``.

Rates are expressed in flow bytes/second; a link carries a *weight*
giving the resource units one flow byte/second consumes.  A device is
one resource with ``capacity = read_bw``: reads link with weight 1 and
writes with weight ``read_bw / write_bw``, so a lone write still streams
at ``write_bw`` while concurrent reads and writes contend for the same
medium.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.sim.simulator import Event, Simulator

#: Relative slack used to decide that a resource is saturated during the
#: progressive-filling computation (guards float residue only).
_SATURATION_SLACK = 1e-9


class Resource:
    """One capacity-bearing element of the I/O graph.

    Examples: a storage device, a node's NIC, the shared network
    endpoint in front of a remote cold store, a rack uplink.
    """

    __slots__ = ("name", "capacity")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"resource {name!r} needs positive capacity")
        self.name = name
        self.capacity = float(capacity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resource({self.name}, {self.capacity:.0f} B/s)"


class Flow:
    """One in-flight transfer traversing a set of resources."""

    __slots__ = (
        "flow_id",
        "name",
        "bytes_remaining",
        "links",
        "on_complete",
        "rate",
        "last_update",
        "event",
        "submitted_at",
        "ideal_duration",
    )

    def __init__(
        self,
        flow_id: int,
        size: float,
        links: Sequence[Tuple[Resource, float]],
        on_complete: Callable[[], None],
        name: str = "",
    ) -> None:
        if not links:
            raise ValueError("a flow needs at least one resource link")
        self.flow_id = flow_id
        self.name = name
        self.bytes_remaining = float(size)
        self.links: Tuple[Tuple[Resource, float], ...] = tuple(links)
        self.on_complete = on_complete
        self.rate = 0.0
        self.last_update = 0.0
        self.event: Optional[Event] = None
        self.submitted_at = 0.0
        self.ideal_duration = 0.0

    def standalone_rate(self) -> float:
        """The rate this flow would get with the graph to itself."""
        return min(r.capacity / w for r, w in self.links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Flow({self.flow_id}, {self.name}, {self.bytes_remaining:.0f}B left)"


def compute_max_min_rates(flows: Sequence[Flow]) -> Dict[Flow, float]:
    """Weighted max-min fair rates for ``flows`` (progressive filling).

    All flows' rates rise together from zero; when a resource saturates
    (sum of ``rate * weight`` over its flows reaches capacity), the flows
    crossing it freeze at the current level and the rest keep rising.
    The result is work-conserving — every flow is bottlenecked by at
    least one saturated resource — and deterministic: resources are
    visited in first-seen order over the given flow sequence.
    """
    if not flows:
        return {}
    remaining: Dict[Resource, float] = {}
    users: Dict[Resource, List[Tuple[Flow, float]]] = {}
    order: List[Resource] = []
    for flow in flows:
        for resource, weight in flow.links:
            if resource not in remaining:
                remaining[resource] = resource.capacity
                users[resource] = []
                order.append(resource)
            users[resource].append((flow, weight))
    rates: Dict[Flow, float] = {}
    unfixed = set(flows)
    level = 0.0
    while unfixed:
        best_level: Optional[float] = None
        best_resource: Optional[Resource] = None
        for resource in order:
            weight_sum = sum(w for f, w in users[resource] if f in unfixed)
            if weight_sum <= 0.0:
                continue
            candidate = level + max(remaining[resource], 0.0) / weight_sum
            if best_level is None or candidate < best_level:
                best_level, best_resource = candidate, resource
        if best_resource is None:
            # Every remaining flow only crosses already-saturated
            # resources; cannot happen with positive weights, but guard
            # against an infinite loop anyway.
            for flow in unfixed:  # pragma: no cover - defensive
                rates[flow] = level
            break
        delta = best_level - level
        for resource in order:
            weight_sum = sum(w for f, w in users[resource] if f in unfixed)
            if weight_sum > 0.0:
                remaining[resource] -= delta * weight_sum
        remaining[best_resource] = 0.0  # kill float residue at the bottleneck
        level = best_level
        newly_fixed = [
            flow
            for flow in flows
            if flow in unfixed
            and any(
                remaining[r] <= _SATURATION_SLACK * r.capacity for r, _ in flow.links
            )
        ]
        for flow in newly_fixed:
            rates[flow] = level
            unfixed.discard(flow)
    return rates


class FairShareEngine:
    """Tracks active flows and keeps their completion events re-priced.

    Every admission and completion triggers a global re-solve of the
    max-min rates; flows whose completion time changed get their pending
    :class:`Event` cancelled and a fresh one scheduled.  Flows are
    stored in admission order, which (together with the simulator's FIFO
    tie-break) makes completion order fully deterministic.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._flows: Dict[int, Flow] = {}
        self._ids = itertools.count(1)
        # -- cumulative statistics (consumed by benchmarks) -----------------
        self.flows_started = 0
        self.flows_completed = 0
        self.recomputes = 0
        self.peak_concurrency = 0
        #: Realized flow durations vs what each flow would have taken
        #: alone on the graph; the difference is pure contention delay.
        self.realized_seconds = 0.0
        self.ideal_seconds = 0.0

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        size: float,
        links: Sequence[Tuple[Resource, float]],
        on_complete: Callable[[], None],
        latency: float = 0.0,
        name: str = "flow",
    ) -> Flow:
        """Start a flow of ``size`` bytes across ``links``.

        ``latency`` models the fixed per-request cost (seeks, round
        trips): the flow occupies no bandwidth until it elapses.
        ``on_complete`` fires when the last byte drains.
        """
        flow = Flow(next(self._ids), size, links, on_complete, name=name)
        flow.submitted_at = self.sim.now()
        flow.ideal_duration = latency + (
            size / flow.standalone_rate() if size > 0 else 0.0
        )
        if size <= 0:
            self.sim.after(latency, on_complete, name=f"{name}-empty")
            return flow
        if latency > 0:
            self.sim.after(latency, lambda: self._admit(flow), name=f"{name}-admit")
        else:
            self._admit(flow)
        return flow

    def _admit(self, flow: Flow) -> None:
        self._flows[flow.flow_id] = flow
        flow.last_update = self.sim.now()
        self.flows_started += 1
        if len(self._flows) > self.peak_concurrency:
            self.peak_concurrency = len(self._flows)
        self._recompute(flow)

    # -- re-pricing ----------------------------------------------------------
    def _component_of(self, seed: Flow) -> List[Flow]:
        """Active flows transitively sharing a resource with ``seed``.

        Flows outside this connected component share no resource with
        the starting/finishing flow (directly or through chains), so
        their max-min rates are mathematically unchanged — re-solving
        only the component keeps recomputes local to the touched part
        of the graph.
        """
        resources = {r.name for r, _ in seed.links}
        component: List[Flow] = []
        candidates = list(self._flows.values())
        grew = True
        while grew:
            grew = False
            rest: List[Flow] = []
            for flow in candidates:
                if any(r.name in resources for r, _ in flow.links):
                    component.append(flow)
                    for r, _ in flow.links:
                        if r.name not in resources:
                            resources.add(r.name)
                            grew = True
                else:
                    rest.append(flow)
            candidates = rest
        return component

    def _recompute(self, seed: Flow) -> None:
        """Drain elapsed bytes, re-solve rates, reschedule completions.

        Only the connected component of resources touched by ``seed``
        is re-solved; disjoint flows keep their rate and their pending
        completion event untouched.
        """
        now = self.sim.now()
        self.recomputes += 1
        flows = self._component_of(seed)
        for flow in flows:
            elapsed = now - flow.last_update
            if elapsed > 0.0 and flow.rate > 0.0:
                flow.bytes_remaining = max(
                    0.0, flow.bytes_remaining - flow.rate * elapsed
                )
            flow.last_update = now
        rates = compute_max_min_rates(flows)
        for flow in flows:
            rate = rates[flow]
            flow.rate = rate
            finish_at = now + flow.bytes_remaining / rate
            if flow.event is not None and not flow.event.cancelled:
                # Re-deriving an unchanged completion time rarely
                # reproduces the old timestamp bit-for-bit; within this
                # slack the pending event is still correct, and keeping
                # it avoids churning the heap with cancel/re-push pairs
                # for flows whose rate did not really change.
                slack = _SATURATION_SLACK * max(1.0, finish_at - now)
                if abs(flow.event.time - finish_at) <= slack:
                    continue
                flow.event.cancel()
            flow.event = self.sim.at(
                finish_at,
                lambda f=flow: self._finish(f),
                name=f"flow-{flow.flow_id}-{flow.name}",
            )

    def _finish(self, flow: Flow) -> None:
        if flow.flow_id not in self._flows:  # pragma: no cover - defensive
            return
        del self._flows[flow.flow_id]
        flow.bytes_remaining = 0.0
        flow.event = None
        self.flows_completed += 1
        self.realized_seconds += self.sim.now() - flow.submitted_at
        self.ideal_seconds += flow.ideal_duration
        self._recompute(flow)
        flow.on_complete()

    # -- introspection -------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flows_crossing(self, resource: Resource) -> int:
        """Number of active flows linked to ``resource``."""
        return sum(
            1
            for flow in self._flows.values()
            if any(r is resource for r, _ in flow.links)
        )

    def resource_demand(self, resource: Resource) -> float:
        """Current allocated consumption on ``resource`` (<= capacity)."""
        return sum(
            flow.rate * weight
            for flow in self._flows.values()
            for r, weight in flow.links
            if r is resource
        )

    @property
    def contention_seconds(self) -> float:
        """Aggregate completion delay attributable to sharing."""
        return max(0.0, self.realized_seconds - self.ideal_seconds)
