"""Flow-based fair bandwidth sharing for the I/O engine.

The snapshot model in :mod:`repro.engine.iomodel` prices an operation
once, when it starts, from the stream counts at that instant; a flow
that starts alone keeps its full bandwidth even if fifty streams join a
tick later.  This module provides the *re-pricing* alternative: every
read, write, or tier transfer becomes a :class:`Flow` with a byte count
remaining and a set of :class:`Resource` links (device bandwidth,
per-node NICs, shared endpoints), and whenever any flow starts or
finishes the engine recomputes weighted max-min fair rates on the
touched resources and reschedules the in-flight completion events via
``Event.cancel()``.

Rates are expressed in flow bytes/second; a link carries a *weight*
giving the resource units one flow byte/second consumes.  A device is
one resource with ``capacity = read_bw``: reads link with weight 1 and
writes with weight ``read_bw / write_bw``, so a lone write still streams
at ``write_bw`` while concurrent reads and writes contend for the same
medium.

Scaling design.  A flow start/finish can only change rates inside the
connected component of resources it touches (anything disjoint keeps
its max-min allocation by definition), so the engine maintains
*persistent per-resource flow registries* and walks just that dirty
component instead of scanning every active flow.  The progressive
filling itself caches per-resource weight sums and refreshes only the
resources whose bottleneck structure changed when flows froze
(:func:`compute_max_min_rates`), and components at or above
``FairShareEngine.vector_threshold`` flows switch to a
numpy-vectorized filling (:func:`compute_max_min_rates_vectorized`).
The scalar path is arithmetic-for-arithmetic identical to the naive
from-scratch solver (:func:`compute_max_min_rates_reference`), which is
what keeps full-scale runs bit-identical to the pre-registry engine;
the vectorized path is reserved for component sizes the reference runs
never reach.
"""

from __future__ import annotations

import itertools
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.sim.simulator import Event, Simulator

#: Relative slack used to decide that a resource is saturated during the
#: progressive-filling computation (guards float residue only).
_SATURATION_SLACK = 1e-9


class Resource:
    """One capacity-bearing element of the I/O graph.

    Examples: a storage device, a node's NIC, the shared network
    endpoint in front of a remote cold store, a rack uplink.
    """

    __slots__ = ("name", "capacity")

    def __init__(self, name: str, capacity: float) -> None:
        if capacity <= 0:
            raise ValueError(f"resource {name!r} needs positive capacity")
        self.name = name
        self.capacity = float(capacity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Resource({self.name}, {self.capacity:.0f} B/s)"


class Flow:
    """One in-flight transfer traversing a set of resources."""

    __slots__ = (
        "flow_id",
        "name",
        "bytes_remaining",
        "links",
        "on_complete",
        "rate",
        "last_update",
        "event",
        "submitted_at",
        "ideal_duration",
        "admit_seq",
        "dup_links",
        "link_names",
    )

    def __init__(
        self,
        flow_id: int,
        size: float,
        links: Sequence[Tuple[Resource, float]],
        on_complete: Callable[[], None],
        name: str = "",
    ) -> None:
        if not links:
            raise ValueError("a flow needs at least one resource link")
        self.flow_id = flow_id
        self.name = name
        self.bytes_remaining = float(size)
        self.links: Tuple[Tuple[Resource, float], ...] = tuple(links)
        self.on_complete = on_complete
        self.rate = 0.0
        self.last_update = 0.0
        self.event: Optional[Event] = None
        self.submitted_at = 0.0
        self.ideal_duration = 0.0
        #: Admission order (latency can reorder relative to flow_id).
        self.admit_seq = 0
        #: Resource names in link order (cached for the component walk).
        self.link_names: Tuple[str, ...] = tuple(r.name for r, _ in self.links)
        #: Whether two links name the same resource (their weights then
        #: add up in the solver, so shortcuts assuming one weight per
        #: resource do not apply).
        self.dup_links = len(set(self.link_names)) < len(self.link_names)

    def standalone_rate(self) -> float:
        """The rate this flow would get with the graph to itself."""
        return min(r.capacity / w for r, w in self.links)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Flow({self.flow_id}, {self.name}, {self.bytes_remaining:.0f}B left)"


def compute_max_min_rates_reference(flows: Sequence[Flow]) -> Dict[Flow, float]:
    """From-scratch weighted max-min progressive filling (reference).

    All flows' rates rise together from zero; when a resource saturates
    (sum of ``rate * weight`` over its flows reaches capacity), the flows
    crossing it freeze at the current level and the rest keep rising.
    The result is work-conserving — every flow is bottlenecked by at
    least one saturated resource — and deterministic: resources are
    visited in first-seen order over the given flow sequence.

    This is the naive O(rounds x resources x flows) formulation kept as
    the oracle for :func:`compute_max_min_rates` (same arithmetic, fewer
    rescans) and :func:`compute_max_min_rates_vectorized`.
    """
    if not flows:
        return {}
    remaining: Dict[Resource, float] = {}
    users: Dict[Resource, List[Tuple[Flow, float]]] = {}
    order: List[Resource] = []
    for flow in flows:
        for resource, weight in flow.links:
            if resource not in remaining:
                remaining[resource] = resource.capacity
                users[resource] = []
                order.append(resource)
            users[resource].append((flow, weight))
    rates: Dict[Flow, float] = {}
    unfixed = set(flows)
    level = 0.0
    while unfixed:
        best_level: Optional[float] = None
        best_resource: Optional[Resource] = None
        for resource in order:
            weight_sum = sum(w for f, w in users[resource] if f in unfixed)
            if weight_sum <= 0.0:
                continue
            candidate = level + max(remaining[resource], 0.0) / weight_sum
            if best_level is None or candidate < best_level:
                best_level, best_resource = candidate, resource
        if best_resource is None:
            # Every remaining flow only crosses already-saturated
            # resources; cannot happen with positive weights, but guard
            # against an infinite loop anyway.
            for flow in unfixed:  # pragma: no cover - defensive
                rates[flow] = level
            break
        delta = best_level - level
        for resource in order:
            weight_sum = sum(w for f, w in users[resource] if f in unfixed)
            if weight_sum > 0.0:
                remaining[resource] -= delta * weight_sum
        remaining[best_resource] = 0.0  # kill float residue at the bottleneck
        level = best_level
        newly_fixed = [
            flow
            for flow in flows
            if flow in unfixed
            and any(
                remaining[r] <= _SATURATION_SLACK * r.capacity for r, _ in flow.links
            )
        ]
        for flow in newly_fixed:
            rates[flow] = level
            unfixed.discard(flow)
    return rates


def compute_max_min_rates(flows: Sequence[Flow]) -> Dict[Flow, float]:
    """Weighted max-min fair rates for ``flows`` (progressive filling).

    Bit-identical to :func:`compute_max_min_rates_reference` but with
    dirty-set weight-sum tracking: a resource's weight sum over unfixed
    flows only changes when one of *its* flows froze in the previous
    round, so it is cached and re-folded — with the exact same
    left-to-right summation the reference performs — only for resources
    whose bottleneck structure changed.  Likewise only flows crossing a
    resource that saturated *this* round can freeze (any resource that
    saturated earlier already froze all of its flows), so the freeze
    scan visits saturated resources' users instead of every flow.
    """
    if not flows:
        return {}
    num_flows = len(flows)
    # Index resources in first-seen order over the flow sequence — the
    # same visiting order the reference derives from its dict insertion.
    res_index: Dict[Resource, int] = {}
    remaining: List[float] = []
    threshold: List[float] = []
    user_flows: List[List[int]] = []  # per resource: flow positions
    user_weights: List[List[float]] = []  # per resource: matching weights
    flow_resources: List[List[int]] = []  # per flow: resource indices
    for pos, flow in enumerate(flows):
        indices: List[int] = []
        for resource, weight in flow.links:
            i = res_index.get(resource)
            if i is None:
                i = res_index[resource] = len(remaining)
                remaining.append(resource.capacity)
                threshold.append(_SATURATION_SLACK * resource.capacity)
                user_flows.append([])
                user_weights.append([])
            user_flows[i].append(pos)
            user_weights[i].append(weight)
            indices.append(i)
        flow_resources.append(indices)
    num_res = len(remaining)
    unfixed = [True] * num_flows
    unfixed_count = num_flows
    rate_of = [0.0] * num_flows
    # Cached per-resource weight sums over unfixed flows.  The initial
    # fold and every dirty refresh use the reference's exact left-to-
    # right summation (int 0 start, link order), so each cached value
    # equals what a fresh rescan would produce.
    weight_sums: List[float] = [sum(ws) for ws in user_weights]
    level = 0.0
    while unfixed_count:
        best_level: Optional[float] = None
        best = -1
        for i in range(num_res):
            weight_sum = weight_sums[i]
            if weight_sum <= 0.0:
                continue
            rem = remaining[i]
            candidate = level + (rem if rem > 0.0 else 0.0) / weight_sum
            if best_level is None or candidate < best_level:
                best_level, best = candidate, i
        if best < 0:
            for pos in range(num_flows):  # pragma: no cover - defensive
                if unfixed[pos]:
                    rate_of[pos] = level
            break
        delta = best_level - level
        saturated: List[int] = []
        for i in range(num_res):
            weight_sum = weight_sums[i]
            if weight_sum > 0.0:
                rem = remaining[i] - delta * weight_sum
                remaining[i] = rem
                if i != best and rem <= threshold[i]:
                    saturated.append(i)
        remaining[best] = 0.0  # kill float residue at the bottleneck
        saturated.append(best)
        level = best_level
        dirty: List[int] = []
        for i in saturated:
            for pos in user_flows[i]:
                if unfixed[pos]:
                    unfixed[pos] = False
                    unfixed_count -= 1
                    rate_of[pos] = level
                    dirty.extend(flow_resources[pos])
        for i in dirty:
            total = 0.0
            flows_i = user_flows[i]
            weights_i = user_weights[i]
            for k in range(len(flows_i)):
                if unfixed[flows_i[k]]:
                    total += weights_i[k]
            weight_sums[i] = total
    return {flow: rate_of[pos] for pos, flow in enumerate(flows)}


def compute_max_min_rates_vectorized(flows: Sequence[Flow]) -> Dict[Flow, float]:
    """Max-min progressive filling over a dense numpy weight matrix.

    Used for large connected components, where the per-round python
    loops of the scalar solver dominate: each filling round becomes a
    handful of vectorized array operations over the (flows x resources)
    weight matrix.  Deterministic (``argmin`` keeps the reference's
    first-seen tie-break) and max-min fair, but its summation order
    differs from the scalar path, so rates can differ in the last few
    ulps — which is why the engine only routes components the reference
    workloads never produce through it.
    """
    if not flows:
        return {}
    res_index: Dict[str, int] = {}
    capacities: List[float] = []
    for flow in flows:
        for resource, _ in flow.links:
            if resource.name not in res_index:
                res_index[resource.name] = len(capacities)
                capacities.append(resource.capacity)
    num_flows = len(flows)
    num_res = len(capacities)
    weights = np.zeros((num_flows, num_res))
    for i, flow in enumerate(flows):
        for resource, weight in flow.links:
            j = res_index[resource.name]
            # Parallel links to one resource: the reference folds every
            # (flow, weight) pair into the sum, i.e. weights add up.
            weights[i, j] += weight
    capacity = np.asarray(capacities)
    threshold = _SATURATION_SLACK * capacity
    crosses = weights > 0.0
    remaining = capacity.copy()
    unfixed = np.ones(num_flows, dtype=bool)
    rates = np.zeros(num_flows)
    level = 0.0
    while unfixed.any():
        weight_sum = unfixed.astype(float) @ weights
        active = weight_sum > 0.0
        if not active.any():  # pragma: no cover - defensive (mirrors scalar)
            rates[unfixed] = level
            break
        candidate = np.full(num_res, np.inf)
        candidate[active] = (
            level + np.maximum(remaining[active], 0.0) / weight_sum[active]
        )
        best = int(np.argmin(candidate))  # first minimum == first-seen order
        best_level = float(candidate[best])
        delta = best_level - level
        remaining[active] -= delta * weight_sum[active]
        remaining[best] = 0.0
        level = best_level
        saturated = active & (remaining <= threshold)
        saturated[best] = True
        newly = unfixed & crosses[:, saturated].any(axis=1)
        rates[newly] = level
        unfixed &= ~newly
    return {flow: float(rates[i]) for i, flow in enumerate(flows)}


class FairShareEngine:
    """Tracks active flows and keeps their completion events re-priced.

    Every admission and completion triggers a re-solve of the max-min
    rates over the affected connected component; flows whose completion
    time changed get their pending :class:`Event` cancelled and a fresh
    one scheduled.  Flows are stored in admission order, which (together
    with the simulator's FIFO tie-break) makes completion order fully
    deterministic.

    The engine keeps a persistent registry of active flows per resource
    so the dirty component is discovered by walking the resource graph
    (O(component) work) rather than scanning every active flow.
    """

    #: Component size at which re-solving switches to the vectorized
    #: filling.  Must stay above the largest component the bit-identical
    #: reference workloads produce (full-scale FB peaks at 112 flows).
    vector_threshold = 128

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        self._flows: Dict[int, Flow] = {}
        self._ids = itertools.count(1)
        self._admit_seq = itertools.count(1)
        #: Resource name -> admission-ordered {flow_id: flow} registry of
        #: the active flows crossing it.
        self._users: Dict[str, Dict[int, Flow]] = {}
        # -- cumulative statistics (consumed by benchmarks) -----------------
        self.flows_started = 0
        self.flows_completed = 0
        self.recomputes = 0
        self.peak_concurrency = 0
        self.max_component = 0
        self.vector_solves = 0
        self.events_rescheduled = 0
        #: Realized flow durations vs what each flow would have taken
        #: alone on the graph; the difference is pure contention delay.
        self.realized_seconds = 0.0
        self.ideal_seconds = 0.0

    # -- submission ----------------------------------------------------------
    def submit(
        self,
        size: float,
        links: Sequence[Tuple[Resource, float]],
        on_complete: Callable[[], None],
        latency: float = 0.0,
        name: str = "flow",
    ) -> Flow:
        """Start a flow of ``size`` bytes across ``links``.

        ``latency`` models the fixed per-request cost (seeks, round
        trips): the flow occupies no bandwidth until it elapses.
        ``on_complete`` fires when the last byte drains.
        """
        flow = Flow(next(self._ids), size, links, on_complete, name=name)
        flow.submitted_at = self.sim.now()
        flow.ideal_duration = latency + (
            size / flow.standalone_rate() if size > 0 else 0.0
        )
        if size <= 0:
            self.sim.after(latency, on_complete, name=f"{name}-empty")
            return flow
        if latency > 0:
            self.sim.after(latency, lambda: self._admit(flow), name=f"{name}-admit")
        else:
            self._admit(flow)
        return flow

    def _admit(self, flow: Flow) -> None:
        flow.admit_seq = next(self._admit_seq)
        self._flows[flow.flow_id] = flow
        for resource, _ in flow.links:
            registry = self._users.get(resource.name)
            if registry is None:
                registry = self._users[resource.name] = {}
            registry[flow.flow_id] = flow
        flow.last_update = self.sim.now()
        self.flows_started += 1
        if len(self._flows) > self.peak_concurrency:
            self.peak_concurrency = len(self._flows)
        self._recompute(flow)

    # -- re-pricing ----------------------------------------------------------
    def _component_of(self, seed: Flow) -> List[Flow]:
        """Active flows transitively sharing a resource with ``seed``.

        Flows outside this connected component share no resource with
        the starting/finishing flow (directly or through chains), so
        their max-min rates are mathematically unchanged — re-solving
        only the component keeps recomputes local to the touched part
        of the graph.

        Membership is discovered by a breadth-first walk of the resource
        registries (O(component links)); the returned *ordering* then
        replays the historical candidate sweep — repeated passes in
        admission order, growing the resource frontier mid-pass — over
        just the members, because the solver's resource first-seen order
        and the completion events' scheduling order both depend on it.
        Flows outside the component never join a pass and never grow the
        frontier, so sweeping members only is order-identical to
        sweeping every active flow.
        """
        users = self._users
        resources = set(seed.link_names)
        members: Dict[int, Flow] = {}
        frontier = list(resources)
        while frontier:
            next_frontier: List[str] = []
            for res_name in frontier:
                registry = users.get(res_name)
                if not registry:
                    continue
                for flow_id, flow in registry.items():
                    if flow_id in members:
                        continue
                    members[flow_id] = flow
                    for name in flow.link_names:
                        if name not in resources:
                            resources.add(name)
                            next_frontier.append(name)
            frontier = next_frontier
        if len(members) <= 1:
            return list(members.values())
        candidates = sorted(members.values(), key=lambda f: f.admit_seq)
        reachable = set(seed.link_names)
        component: List[Flow] = []
        grew = True
        while grew:
            grew = False
            rest: List[Flow] = []
            for flow in candidates:
                names = flow.link_names
                if any(name in reachable for name in names):
                    component.append(flow)
                    for name in names:
                        if name not in reachable:
                            reachable.add(name)
                            grew = True
                else:
                    rest.append(flow)
            candidates = rest
        return component

    def _solve(self, flows: List[Flow]) -> Dict[Flow, float]:
        if len(flows) >= self.vector_threshold:
            self.vector_solves += 1
            return compute_max_min_rates_vectorized(flows)
        return compute_max_min_rates(flows)

    def _recompute(self, seed: Flow) -> None:
        """Drain elapsed bytes, re-solve rates, reschedule completions.

        Only the connected component of resources touched by ``seed``
        is re-solved; disjoint flows keep their rate and their pending
        completion event untouched.
        """
        now = self.sim.now()
        self.recomputes += 1
        users = self._users
        # Fast paths for the two dominant event shapes (an isolated flow
        # starting, any flow finishing with its resources now idle):
        # both have a trivially known component, so the registry walk,
        # ordering sweep, and solver are skipped entirely.  Arithmetic
        # is identical to the general path on the same component.
        if seed.flow_id not in self._flows:
            # seed just finished and was deregistered; empty registries
            # mean an empty component — nothing to re-price.
            if all(not users[name] for name in seed.link_names):
                return
        elif not seed.dup_links and all(
            len(users[name]) == 1 for name in seed.link_names
        ):
            # seed just started on all-idle resources: it is the whole
            # component and gets its standalone rate.
            if self.max_component < 1:
                self.max_component = 1
            seed.last_update = now
            rate = seed.standalone_rate()
            seed.rate = rate
            self.events_rescheduled += 1
            seed.event = self.sim.at(
                now + seed.bytes_remaining / rate,
                lambda f=seed: self._finish(f),
                name=f"flow-{seed.flow_id}-{seed.name}",
            )
            return
        flows = self._component_of(seed)
        if len(flows) > self.max_component:
            self.max_component = len(flows)
        for flow in flows:
            elapsed = now - flow.last_update
            if elapsed > 0.0 and flow.rate > 0.0:
                flow.bytes_remaining = max(
                    0.0, flow.bytes_remaining - flow.rate * elapsed
                )
            flow.last_update = now
        rates = self._solve(flows)
        for flow in flows:
            rate = rates[flow]
            flow.rate = rate
            finish_at = now + flow.bytes_remaining / rate
            if flow.event is not None and not flow.event.cancelled:
                # Re-deriving an unchanged completion time rarely
                # reproduces the old timestamp bit-for-bit; within this
                # slack the pending event is still correct, and keeping
                # it avoids churning the heap with cancel/re-push pairs
                # for flows whose rate did not really change.
                slack = _SATURATION_SLACK * max(1.0, finish_at - now)
                if abs(flow.event.time - finish_at) <= slack:
                    continue
                flow.event.cancel()
            self.events_rescheduled += 1
            flow.event = self.sim.at(
                finish_at,
                lambda f=flow: self._finish(f),
                name=f"flow-{flow.flow_id}-{flow.name}",
            )

    def _finish(self, flow: Flow) -> None:
        if flow.flow_id not in self._flows:  # pragma: no cover - defensive
            return
        del self._flows[flow.flow_id]
        for resource, _ in flow.links:
            registry = self._users.get(resource.name)
            if registry is not None:
                registry.pop(flow.flow_id, None)
        flow.bytes_remaining = 0.0
        flow.event = None
        self.flows_completed += 1
        self.realized_seconds += self.sim.now() - flow.submitted_at
        self.ideal_seconds += flow.ideal_duration
        self._recompute(flow)
        flow.on_complete()

    # -- introspection -------------------------------------------------------
    @property
    def active_flows(self) -> int:
        return len(self._flows)

    def flows_crossing(self, resource: Resource) -> int:
        """Number of active flows linked to ``resource``."""
        registry = self._users.get(resource.name)
        return len(registry) if registry else 0

    def resource_demand(self, resource: Resource) -> float:
        """Current allocated consumption on ``resource`` (<= capacity)."""
        registry = self._users.get(resource.name, {})
        return sum(
            flow.rate * weight
            for flow in registry.values()
            for r, weight in flow.links
            if r is resource
        )

    @property
    def contention_seconds(self) -> float:
        """Aggregate completion delay attributable to sharing."""
        return max(0.0, self.realized_seconds - self.ideal_seconds)
