"""Node manager: per-node statistics used by placement decisions.

Mirrors the "Node Manager" of the paper's Master (Fig 3): it knows the
topology and maintains per-node load statistics (bytes read/written per
tier, in-flight transfers) that the multi-objective placement policy's
load-balancing term consumes.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List

from repro.cluster.hardware import TierSpec
from repro.cluster.topology import ClusterTopology


@dataclass
class NodeStats:
    """Running I/O counters for one node."""

    # Lazily keyed by TierSpec so one NodeStats works for any hierarchy.
    bytes_read: Dict[TierSpec, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    bytes_written: Dict[TierSpec, int] = field(
        default_factory=lambda: defaultdict(int)
    )
    active_transfers: int = 0
    total_transfers: int = 0

    @property
    def total_bytes_read(self) -> int:
        return sum(self.bytes_read.values())

    @property
    def total_bytes_written(self) -> int:
        return sum(self.bytes_written.values())


class NodeManager:
    """Tracks per-node I/O load across the topology."""

    def __init__(self, topology: ClusterTopology) -> None:
        self._topology = topology
        self._stats: Dict[str, NodeStats] = {
            node.node_id: NodeStats() for node in topology.nodes
        }

    @property
    def topology(self) -> ClusterTopology:
        return self._topology

    def stats(self, node_id: str) -> NodeStats:
        return self._stats[node_id]

    # -- recording --------------------------------------------------------
    def record_read(self, node_id: str, tier: TierSpec, num_bytes: int) -> None:
        self._stats[node_id].bytes_read[tier] += num_bytes

    def record_write(self, node_id: str, tier: TierSpec, num_bytes: int) -> None:
        self._stats[node_id].bytes_written[tier] += num_bytes

    def transfer_started(self, node_id: str) -> None:
        stats = self._stats[node_id]
        stats.active_transfers += 1
        stats.total_transfers += 1

    def transfer_finished(self, node_id: str) -> None:
        stats = self._stats[node_id]
        if stats.active_transfers <= 0:
            raise ValueError(f"transfer count underflow on {node_id}")
        stats.active_transfers -= 1

    # -- load scoring -------------------------------------------------------
    def load_score(self, node_id: str) -> float:
        """Relative load in [0, 1]: 0 = idle, approaching 1 = busy.

        Uses in-flight transfer count; placement's load-balancing term
        prefers nodes with fewer concurrent transfers.
        """
        active = self._stats[node_id].active_transfers
        return active / (active + 1.0)

    def least_loaded(self, node_ids: List[str]) -> str:
        """The node among ``node_ids`` with the lowest load score."""
        if not node_ids:
            raise ValueError("empty node list")
        return min(node_ids, key=lambda n: (self.load_score(n), n))

    # -- aggregates ------------------------------------------------------------
    def cluster_bytes_read(self, tier: TierSpec) -> int:
        return sum(s.bytes_read.get(tier, 0) for s in self._stats.values())

    def cluster_bytes_written(self, tier: TierSpec) -> int:
        return sum(s.bytes_written.get(tier, 0) for s in self._stats.values())
