"""A simulated tiered distributed file system (OctopusFS-style).

Architecture mirrors the paper's Fig 3: a Master (FS directory + block
manager + node manager), Workers storing block replicas on tiered media,
and a Client exposing HDFS-compatible file operations.  Pluggable block
placement policies implement the three baseline systems of Fig 2
(original HDFS, HDFS-with-cache, OctopusFS); the tiering framework in
:mod:`repro.core` turns the last one into Octopus++.
"""

from repro.dfs.block import BlockInfo, ReplicaInfo
from repro.dfs.namespace import FSDirectory, INode, INodeDirectory, INodeFile
from repro.dfs.block_manager import BlockManager
from repro.dfs.node_manager import NodeManager, NodeStats
from repro.dfs.listeners import FileSystemListener
from repro.dfs.placement import (
    HdfsCachePlacementPolicy,
    HdfsPlacementPolicy,
    OctopusPlacementPolicy,
    PlacementPolicy,
    PlacementTarget,
)
from repro.dfs.worker import Worker
from repro.dfs.master import Master, ReadPlan, BlockRead
from repro.dfs.client import DFSClient
from repro.dfs.faults import FaultEvent, FaultInjector, FaultStats

__all__ = [
    "BlockInfo",
    "ReplicaInfo",
    "INode",
    "INodeFile",
    "INodeDirectory",
    "FSDirectory",
    "BlockManager",
    "NodeManager",
    "NodeStats",
    "FileSystemListener",
    "PlacementPolicy",
    "PlacementTarget",
    "HdfsPlacementPolicy",
    "HdfsCachePlacementPolicy",
    "OctopusPlacementPolicy",
    "Worker",
    "Master",
    "ReadPlan",
    "BlockRead",
    "DFSClient",
    "FaultInjector",
    "FaultEvent",
    "FaultStats",
]
