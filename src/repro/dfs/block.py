"""File blocks and their replicas.

A file is split into fixed-size blocks (128MB by default, HDFS
convention); each block has one or more replicas, each living on a
specific (node, tier, device).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.hardware import TierSpec


class ReplicaInfo:
    """One physical copy of a block on a specific device."""

    __slots__ = ("replica_id", "block", "node_id", "tier", "device_id")

    def __init__(
        self,
        replica_id: int,
        block: "BlockInfo",
        node_id: str,
        tier: TierSpec,
        device_id: str,
    ) -> None:
        self.replica_id = replica_id
        self.block = block
        self.node_id = node_id
        self.tier = tier
        self.device_id = device_id

    @property
    def size(self) -> int:
        return self.block.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Replica({self.replica_id}, block={self.block.block_id}, "
            f"{self.node_id}/{self.tier.name})"
        )


class BlockInfo:
    """Metadata for one block of a file."""

    __slots__ = ("block_id", "file_id", "index", "size", "replicas")

    def __init__(self, block_id: int, file_id: int, index: int, size: int) -> None:
        if size <= 0:
            raise ValueError("block size must be positive")
        self.block_id = block_id
        self.file_id = file_id
        self.index = index
        self.size = size
        self.replicas: Dict[int, ReplicaInfo] = {}

    # -- replica queries -----------------------------------------------------
    @property
    def replica_count(self) -> int:
        return len(self.replicas)

    def replica_list(self) -> List[ReplicaInfo]:
        return list(self.replicas.values())

    def tiers(self) -> List[TierSpec]:
        """Distinct tiers holding a replica, fastest first."""
        return sorted({r.tier for r in self.replicas.values()})

    def best_tier(self) -> Optional[TierSpec]:
        """The fastest tier holding a replica, or None if no replicas."""
        tiers = self.tiers()
        return tiers[0] if tiers else None

    def nodes(self) -> List[str]:
        """Distinct node ids holding a replica."""
        return sorted({r.node_id for r in self.replicas.values()})

    def replicas_on_tier(self, tier: TierSpec) -> List[ReplicaInfo]:
        return [r for r in self.replicas.values() if r.tier == tier]

    def replicas_on_node(self, node_id: str) -> List[ReplicaInfo]:
        return [r for r in self.replicas.values() if r.node_id == node_id]

    def has_replica_on(self, node_id: str, tier: Optional[TierSpec] = None) -> bool:
        for replica in self.replicas.values():
            if replica.node_id == node_id and (tier is None or replica.tier == tier):
                return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block({self.block_id}, file={self.file_id}, idx={self.index}, "
            f"size={self.size}, replicas={len(self.replicas)})"
        )


def split_into_block_sizes(file_size: int, block_size: int) -> List[int]:
    """Sizes of the blocks a file of ``file_size`` bytes splits into.

    The last block may be partial; a zero-byte file has no blocks.
    """
    if file_size < 0:
        raise ValueError("file size cannot be negative")
    if block_size <= 0:
        raise ValueError("block size must be positive")
    sizes = []
    remaining = file_size
    while remaining > 0:
        sizes.append(min(block_size, remaining))
        remaining -= sizes[-1]
    return sizes
