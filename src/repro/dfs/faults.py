"""Fault injection: worker failures and recoveries on the simulator.

Replication is the paper's first-listed reason for existing (Sec 3:
"it prevents data loss due to disk or node failures"), and the
Replication Monitor's health scan is the component that restores the
replication factor after a loss.  The injector exercises that path:

* **fail(node)** — the node's replicas vanish (disk contents are treated
  as lost, the HDFS view of a dead DataNode), placement and scheduling
  stop targeting it, and every affected block becomes under-replicated
  until the health scan re-replicates it;
* **recover(node)** — the node rejoins *empty* and becomes a placement
  and scheduling target again.

Tasks already running on a failing node finish (graceful-decommission
semantics); re-executing in-flight tasks is a scheduler concern the
paper does not evaluate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.dfs.master import Master
from repro.sim.simulator import Simulator


@dataclass(frozen=True)
class FaultEvent:
    """One failure or recovery that actually happened."""

    time: float
    node_id: str
    kind: str  # "fail" | "recover"
    replicas_lost: int = 0
    blocks_lost: int = 0


@dataclass
class FaultStats:
    """Aggregate counters over all injected events."""

    failures: int = 0
    recoveries: int = 0
    replicas_lost: int = 0
    #: Blocks whose last replica vanished (unrecoverable data loss).
    blocks_lost: int = 0
    events: List[FaultEvent] = field(default_factory=list)


class FaultInjector:
    """Schedules node failures/recoveries against a Master's cluster."""

    def __init__(
        self,
        sim: Simulator,
        master: Master,
        scheduler: Optional[object] = None,
    ) -> None:
        self.sim = sim
        self.master = master
        #: Anything with ``on_node_failed`` / ``on_node_recovered``
        #: (duck-typed so DFS-only stacks need no engine import).
        self.scheduler = scheduler
        self.stats = FaultStats()

    # -- immediate operations ------------------------------------------------
    def fail(self, node_id: str) -> FaultEvent:
        """Take ``node_id`` down now, dropping every replica it held."""
        node = self.master.topology.node(node_id)
        if not node.alive:
            raise ValueError(f"{node_id} is already down")
        node.alive = False
        lost = self.master.decommission_node(node_id)
        blocks_lost = self._count_lost_blocks()
        if self.scheduler is not None:
            self.scheduler.on_node_failed(node_id)
        event = FaultEvent(
            time=self.sim.now(),
            node_id=node_id,
            kind="fail",
            replicas_lost=lost,
            blocks_lost=blocks_lost,
        )
        self.stats.failures += 1
        self.stats.replicas_lost += lost
        self.stats.blocks_lost = blocks_lost
        self.stats.events.append(event)
        return event

    def recover(self, node_id: str) -> FaultEvent:
        """Bring ``node_id`` back (empty) now."""
        node = self.master.topology.node(node_id)
        if node.alive:
            raise ValueError(f"{node_id} is not down")
        node.alive = True
        if self.scheduler is not None:
            self.scheduler.on_node_recovered(node_id)
        event = FaultEvent(time=self.sim.now(), node_id=node_id, kind="recover")
        self.stats.recoveries += 1
        self.stats.events.append(event)
        return event

    # -- scheduled operations -----------------------------------------------------
    def fail_at(self, time: float, node_id: str) -> None:
        self.sim.at(time, lambda: self.fail(node_id), name=f"fail-{node_id}")

    def recover_at(self, time: float, node_id: str) -> None:
        self.sim.at(time, lambda: self.recover(node_id), name=f"recover-{node_id}")

    def outage(self, node_id: str, start: float, downtime: float) -> None:
        """Schedule a failure at ``start`` and recovery after ``downtime``."""
        self.fail_at(start, node_id)
        self.recover_at(start + downtime, node_id)

    def schedule_random_outages(
        self,
        count: int,
        start: float,
        end: float,
        downtime: float,
        seed: int = 17,
    ) -> List[str]:
        """Schedule ``count`` single-node outages at random times.

        Nodes are drawn without replacement so outages never overlap on
        the same node; returns the chosen node ids in failure order.
        """
        import numpy as np

        nodes = sorted(n.node_id for n in self.master.topology.nodes)
        if count > len(nodes):
            raise ValueError(f"cannot fail {count} of {len(nodes)} nodes")
        rng = np.random.default_rng(seed)
        picks = rng.choice(len(nodes), size=count, replace=False)
        times = np.sort(rng.uniform(start, end, size=count))
        chosen = []
        for time, pick in zip(times, picks):
            node_id = nodes[int(pick)]
            self.outage(node_id, float(time), downtime)
            chosen.append(node_id)
        return chosen

    # -- introspection -----------------------------------------------------------
    def _count_lost_blocks(self) -> int:
        lost = 0
        for file in self.master.files():
            for block in self.master.blocks.blocks_of(file):
                if block.replica_count == 0:
                    lost += 1
        return lost

    def under_replicated_blocks(self) -> int:
        """Blocks currently below their file's replication factor."""
        count = 0
        for file in self.master.files():
            for block in self.master.blocks.blocks_of(file):
                if 0 < block.replica_count < file.replication:
                    count += 1
        return count
