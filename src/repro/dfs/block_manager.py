"""Block manager: block → replica → (node, tier, device) bookkeeping.

Mirrors the "Block Manager" component of the Master (paper Fig 3).  All
replica creation/removal flows through here so that device capacity
accounting and the metadata maps can never diverge.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.cluster.hardware import TierSpec
from repro.cluster.topology import ClusterTopology
from repro.common.errors import ReplicaNotFoundError
from repro.dfs.block import BlockInfo, ReplicaInfo
from repro.dfs.namespace import INodeFile


class BlockManager:
    """Authoritative map of blocks and replicas, with tier/node indexes."""

    def __init__(self, topology: ClusterTopology) -> None:
        self._topology = topology
        self._next_block_id = 0
        self._next_replica_id = 0
        self._blocks: Dict[int, BlockInfo] = {}
        self._file_blocks: Dict[int, List[int]] = {}
        # replica_id -> ReplicaInfo, for O(1) removal
        self._replicas: Dict[int, ReplicaInfo] = {}
        # (node_id, tier) -> replica ids, used by downgrade scans
        self._by_node_tier: Dict[tuple, Set[int]] = {}

    # -- block lifecycle -----------------------------------------------------
    def allocate_block(self, file: INodeFile, index: int, size: int) -> BlockInfo:
        """Create a new (replica-less) block for ``file``."""
        block = BlockInfo(self._next_block_id, file.inode_id, index, size)
        self._next_block_id += 1
        self._blocks[block.block_id] = block
        self._file_blocks.setdefault(file.inode_id, []).append(block.block_id)
        file.block_ids.append(block.block_id)
        return block

    def remove_file_blocks(self, file: INodeFile) -> List[ReplicaInfo]:
        """Drop all blocks of ``file``, releasing replica storage.

        Returns the replicas that were removed (already released).
        """
        removed: List[ReplicaInfo] = []
        for block_id in self._file_blocks.pop(file.inode_id, []):
            block = self._blocks.pop(block_id)
            for replica in list(block.replicas.values()):
                self._release_replica(replica)
                removed.append(replica)
        file.block_ids.clear()
        return removed

    # -- replica lifecycle -------------------------------------------------------
    def add_replica(
        self, block: BlockInfo, node_id: str, tier: TierSpec, device_id: str
    ) -> ReplicaInfo:
        """Record a new replica and charge its space to the device.

        The caller must have picked ``device_id`` via a placement policy;
        this method performs the actual allocation.
        """
        node = self._topology.node(node_id)
        device = next(d for d in node.devices(tier) if d.device_id == device_id)
        replica = ReplicaInfo(
            self._next_replica_id, block, node_id, tier, device_id
        )
        self._next_replica_id += 1
        device.allocate(replica.replica_id, block.size)
        block.replicas[replica.replica_id] = replica
        self._replicas[replica.replica_id] = replica
        self._by_node_tier.setdefault((node_id, tier), set()).add(replica.replica_id)
        return replica

    def remove_replica(self, replica: ReplicaInfo) -> None:
        """Delete a replica, releasing its device space."""
        if replica.replica_id not in self._replicas:
            raise ReplicaNotFoundError(f"unknown replica {replica.replica_id}")
        self._release_replica(replica)
        replica.block.replicas.pop(replica.replica_id, None)

    def _release_replica(self, replica: ReplicaInfo) -> None:
        node = self._topology.node(replica.node_id)
        device = next(
            d for d in node.devices(replica.tier) if d.device_id == replica.device_id
        )
        device.release(replica.replica_id, replica.block.size)
        self._replicas.pop(replica.replica_id, None)
        key = (replica.node_id, replica.tier)
        bucket = self._by_node_tier.get(key)
        if bucket is not None:
            bucket.discard(replica.replica_id)

    # -- queries ---------------------------------------------------------------
    def block(self, block_id: int) -> BlockInfo:
        return self._blocks[block_id]

    def has_block(self, block_id: int) -> bool:
        return block_id in self._blocks

    def blocks_of(self, file: INodeFile) -> List[BlockInfo]:
        return [self._blocks[bid] for bid in self._file_blocks.get(file.inode_id, [])]

    def replica(self, replica_id: int) -> ReplicaInfo:
        if replica_id not in self._replicas:
            raise ReplicaNotFoundError(f"unknown replica {replica_id}")
        return self._replicas[replica_id]

    def replicas_on(self, node_id: str, tier: TierSpec) -> List[ReplicaInfo]:
        ids = self._by_node_tier.get((node_id, tier), set())
        return [self._replicas[rid] for rid in ids]

    def block_count(self) -> int:
        return len(self._blocks)

    def replica_count(self) -> int:
        return len(self._replicas)

    # -- file-level tier queries (all-or-nothing semantics, Sec 3.2) --------------
    def file_tiers(self, file: INodeFile) -> Set[TierSpec]:
        """Tiers on which *every* block of the file has a replica.

        The paper's policies act at file granularity because performance
        gains require the whole file in a higher tier ("all-or-nothing",
        PACMan).  A zero-block file reports no tiers.
        """
        blocks = self.blocks_of(file)
        if not blocks:
            return set()
        tier_sets = [set(b.tiers()) for b in blocks]
        return set.intersection(*tier_sets)

    def file_best_tier(self, file: INodeFile) -> Optional[TierSpec]:
        """Fastest tier holding the complete file, or None."""
        tiers = self.file_tiers(file)
        return min(tiers) if tiers else None

    def file_has_tier(self, file: INodeFile, tier: TierSpec) -> bool:
        return tier in self.file_tiers(file)

    def file_has_tier_or_better(self, file: INodeFile, tier: TierSpec) -> bool:
        best = self.file_best_tier(file)
        return best is not None and best <= tier

    def file_bytes_on_tier(self, file: INodeFile, tier: TierSpec) -> int:
        """Total replica bytes of ``file`` stored on ``tier``."""
        total = 0
        for block in self.blocks_of(file):
            total += sum(r.size for r in block.replicas_on_tier(tier))
        return total

    # -- replication health (used by the Replication Monitor) ----------------------
    def under_replicated(self, files: Iterable[INodeFile]) -> List[BlockInfo]:
        """Blocks with fewer replicas than their file's replication factor."""
        result = []
        for file in files:
            for block in self.blocks_of(file):
                if block.replica_count < file.replication:
                    result.append(block)
        return result

    def over_replicated(self, files: Iterable[INodeFile]) -> List[BlockInfo]:
        """Blocks with more replicas than their file's replication factor."""
        result = []
        for file in files:
            for block in self.blocks_of(file):
                if block.replica_count > file.replication:
                    result.append(block)
        return result
