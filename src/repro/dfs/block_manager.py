"""Block manager: block → replica → (node, tier, device) bookkeeping.

Mirrors the "Block Manager" component of the Master (paper Fig 3).  All
replica creation/removal flows through here so that device capacity
accounting and the metadata maps can never diverge.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.cluster.hardware import TierSpec
from repro.cluster.topology import ClusterTopology
from repro.common.errors import ReplicaNotFoundError
from repro.dfs.block import BlockInfo, ReplicaInfo
from repro.dfs.namespace import INodeFile


class BlockManager:
    """Authoritative map of blocks and replicas, with tier/node indexes."""

    def __init__(self, topology: ClusterTopology) -> None:
        self._topology = topology
        self._next_block_id = 0
        self._next_replica_id = 0
        self._blocks: Dict[int, BlockInfo] = {}
        self._file_blocks: Dict[int, List[int]] = {}
        # replica_id -> ReplicaInfo, for O(1) removal
        self._replicas: Dict[int, ReplicaInfo] = {}
        # (node_id, tier) -> replica ids, used by downgrade scans
        self._by_node_tier: Dict[tuple, Set[int]] = {}
        # -- incremental file/tier indexes (hot-path queries in O(1)) --------
        # tier -> inode_id -> replica bytes of that file on that tier
        self._tier_file_bytes: Dict[TierSpec, Dict[int, int]] = {}
        # inode_id -> tier -> number of the file's blocks with >=1 replica
        # on that tier ("covered" blocks; == block count means whole file)
        self._file_tier_blocks: Dict[int, Dict[TierSpec, int]] = {}
        # block_id -> tier -> replica count (drives the coverage index)
        self._block_tier_replicas: Dict[int, Dict[TierSpec, int]] = {}
        #: Monotone version counter: bumped on every replica add or
        #: release.  Consumers (the coarse-tick fast path) use it to
        #: prove "no capacity-relevant state changed since X".
        self.replica_mutations = 0

    # -- block lifecycle -----------------------------------------------------
    def allocate_block(self, file: INodeFile, index: int, size: int) -> BlockInfo:
        """Create a new (replica-less) block for ``file``."""
        block = BlockInfo(self._next_block_id, file.inode_id, index, size)
        self._next_block_id += 1
        self._blocks[block.block_id] = block
        self._file_blocks.setdefault(file.inode_id, []).append(block.block_id)
        file.block_ids.append(block.block_id)
        return block

    def remove_file_blocks(self, file: INodeFile) -> List[ReplicaInfo]:
        """Drop all blocks of ``file``, releasing replica storage.

        Returns the replicas that were removed (already released).
        """
        removed: List[ReplicaInfo] = []
        for block_id in self._file_blocks.pop(file.inode_id, []):
            block = self._blocks.pop(block_id)
            for replica in list(block.replicas.values()):
                self._release_replica(replica)
                removed.append(replica)
        file.block_ids.clear()
        return removed

    # -- replica lifecycle -------------------------------------------------------
    def add_replica(
        self, block: BlockInfo, node_id: str, tier: TierSpec, device_id: str
    ) -> ReplicaInfo:
        """Record a new replica and charge its space to the device.

        The caller must have picked ``device_id`` via a placement policy;
        this method performs the actual allocation.
        """
        node = self._topology.node(node_id)
        device = next(d for d in node.devices(tier) if d.device_id == device_id)
        replica = ReplicaInfo(
            self._next_replica_id, block, node_id, tier, device_id
        )
        self._next_replica_id += 1
        device.allocate(replica.replica_id, block.size)
        block.replicas[replica.replica_id] = replica
        self._replicas[replica.replica_id] = replica
        self._by_node_tier.setdefault((node_id, tier), set()).add(replica.replica_id)
        self._index_add(replica)
        return replica

    def remove_replica(self, replica: ReplicaInfo) -> None:
        """Delete a replica, releasing its device space."""
        if replica.replica_id not in self._replicas:
            raise ReplicaNotFoundError(f"unknown replica {replica.replica_id}")
        self._release_replica(replica)
        replica.block.replicas.pop(replica.replica_id, None)

    def _release_replica(self, replica: ReplicaInfo) -> None:
        node = self._topology.node(replica.node_id)
        device = next(
            d for d in node.devices(replica.tier) if d.device_id == replica.device_id
        )
        device.release(replica.replica_id, replica.block.size)
        self._replicas.pop(replica.replica_id, None)
        key = (replica.node_id, replica.tier)
        bucket = self._by_node_tier.get(key)
        if bucket is not None:
            bucket.discard(replica.replica_id)
        self._index_remove(replica)

    # -- incremental index maintenance -----------------------------------------
    def _index_add(self, replica: ReplicaInfo) -> None:
        """Charge ``replica`` to the byte and block-coverage indexes."""
        self.replica_mutations += 1
        block = replica.block
        tier = replica.tier
        per_tier = self._block_tier_replicas.setdefault(block.block_id, {})
        count = per_tier.get(tier, 0)
        per_tier[tier] = count + 1
        if count == 0:  # block newly covered on this tier
            covered = self._file_tier_blocks.setdefault(block.file_id, {})
            covered[tier] = covered.get(tier, 0) + 1
        bytes_by_file = self._tier_file_bytes.setdefault(tier, {})
        bytes_by_file[block.file_id] = bytes_by_file.get(block.file_id, 0) + block.size

    def _index_remove(self, replica: ReplicaInfo) -> None:
        """Release ``replica`` from the byte and block-coverage indexes."""
        self.replica_mutations += 1
        block = replica.block
        tier = replica.tier
        per_tier = self._block_tier_replicas[block.block_id]
        per_tier[tier] -= 1
        if per_tier[tier] == 0:  # block no longer covered on this tier
            del per_tier[tier]
            if not per_tier:
                del self._block_tier_replicas[block.block_id]
            covered = self._file_tier_blocks[block.file_id]
            covered[tier] -= 1
            if covered[tier] == 0:
                del covered[tier]
                if not covered:
                    del self._file_tier_blocks[block.file_id]
        bytes_by_file = self._tier_file_bytes[tier]
        remaining = bytes_by_file[block.file_id] - block.size
        if remaining:
            bytes_by_file[block.file_id] = remaining
        else:
            del bytes_by_file[block.file_id]

    # -- queries ---------------------------------------------------------------
    def block(self, block_id: int) -> BlockInfo:
        return self._blocks[block_id]

    def has_block(self, block_id: int) -> bool:
        return block_id in self._blocks

    def blocks_of(self, file: INodeFile) -> List[BlockInfo]:
        return [self._blocks[bid] for bid in self._file_blocks.get(file.inode_id, [])]

    def replica(self, replica_id: int) -> ReplicaInfo:
        if replica_id not in self._replicas:
            raise ReplicaNotFoundError(f"unknown replica {replica_id}")
        return self._replicas[replica_id]

    def replicas_on(self, node_id: str, tier: TierSpec) -> List[ReplicaInfo]:
        ids = self._by_node_tier.get((node_id, tier), set())
        return [self._replicas[rid] for rid in ids]

    def block_count(self) -> int:
        return len(self._blocks)

    def replica_count(self) -> int:
        return len(self._replicas)

    # -- file-level tier queries (all-or-nothing semantics, Sec 3.2) --------------
    def file_tiers(self, file: INodeFile) -> Set[TierSpec]:
        """Tiers on which *every* block of the file has a replica.

        The paper's policies act at file granularity because performance
        gains require the whole file in a higher tier ("all-or-nothing",
        PACMan).  A zero-block file reports no tiers.
        """
        nblocks = len(self._file_blocks.get(file.inode_id, ()))
        if nblocks == 0:
            return set()
        covered = self._file_tier_blocks.get(file.inode_id)
        if not covered:
            return set()
        return {tier for tier, count in covered.items() if count == nblocks}

    def file_best_tier(self, file: INodeFile) -> Optional[TierSpec]:
        """Fastest tier holding the complete file, or None."""
        nblocks = len(self._file_blocks.get(file.inode_id, ()))
        if nblocks == 0:
            return None
        covered = self._file_tier_blocks.get(file.inode_id)
        if not covered:
            return None
        best: Optional[TierSpec] = None
        for tier, count in covered.items():
            if count == nblocks and (best is None or tier < best):
                best = tier
        return best

    def file_has_tier(self, file: INodeFile, tier: TierSpec) -> bool:
        nblocks = len(self._file_blocks.get(file.inode_id, ()))
        if nblocks == 0:
            return False
        covered = self._file_tier_blocks.get(file.inode_id)
        return covered is not None and covered.get(tier, 0) == nblocks

    def file_has_tier_or_better(self, file: INodeFile, tier: TierSpec) -> bool:
        best = self.file_best_tier(file)
        return best is not None and best <= tier

    def file_bytes_on_tier(self, file: INodeFile, tier: TierSpec) -> int:
        """Total replica bytes of ``file`` stored on ``tier`` (O(1))."""
        bytes_by_file = self._tier_file_bytes.get(tier)
        if not bytes_by_file:
            return 0
        return bytes_by_file.get(file.inode_id, 0)

    def tier_file_bytes(self, tier: TierSpec) -> Dict[int, int]:
        """inode_id -> replica bytes on ``tier`` (live index; read-only)."""
        return self._tier_file_bytes.get(tier, {})

    # -- replication health (used by the Replication Monitor) ----------------------
    def under_replicated(self, files: Iterable[INodeFile]) -> List[BlockInfo]:
        """Blocks with fewer replicas than their file's replication factor."""
        result = []
        for file in files:
            for block in self.blocks_of(file):
                if block.replica_count < file.replication:
                    result.append(block)
        return result

    def over_replicated(self, files: Iterable[INodeFile]) -> List[BlockInfo]:
        """Blocks with more replicas than their file's replication factor."""
        result = []
        for file in files:
            for block in self.blocks_of(file):
                if block.replica_count > file.replication:
                    result.append(block)
        return result
