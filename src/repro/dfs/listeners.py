"""Listener interface between the DFS master and the tiering framework.

The Replication Manager (paper Sec 3.3) receives "file notifications"
after creations, accesses, modifications, and deletions, plus a signal
whenever data lands on a storage tier (which drives the proactive
downgrade check of Algorithm 1).
"""

from __future__ import annotations

from repro.cluster.hardware import TierSpec
from repro.dfs.namespace import INodeFile


class FileSystemListener:
    """Callbacks a tiering framework registers with the Master.

    All methods default to no-ops so implementations override only what
    they need.
    """

    def on_file_created(self, file: INodeFile) -> None:
        """A file finished being written (metadata + replicas in place)."""

    def on_file_accessed(self, file: INodeFile) -> None:
        """A file is about to be read (fired before replica selection)."""

    def on_file_modified(self, file: INodeFile) -> None:
        """A file was appended to / rewritten."""

    def on_file_deleted(self, file: INodeFile) -> None:
        """A file is being removed (replicas already released)."""

    def on_data_added(self, tier: TierSpec) -> None:
        """Some replica bytes were added to ``tier`` (create or move)."""
