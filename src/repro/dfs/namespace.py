"""Hierarchical namespace: inodes and the FS directory.

Equivalent to the "FS Directory" component of the Master (paper Fig 3):
a classic tree of directories and files with POSIX-style paths.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.common.errors import (
    FileAlreadyExistsError,
    InvalidPathError,
)


def normalize_path(path: str) -> str:
    """Normalize to an absolute path with no trailing slash (except root)."""
    if not path or not path.startswith("/"):
        raise InvalidPathError(f"path must be absolute: {path!r}")
    parts = [p for p in path.split("/") if p]
    for part in parts:
        if part in (".", ".."):
            raise InvalidPathError(f"relative components not allowed: {path!r}")
    return "/" + "/".join(parts)


def split_path(path: str) -> List[str]:
    """Path components of a normalized path (empty list for root)."""
    return [p for p in normalize_path(path).split("/") if p]


def parent_path(path: str) -> str:
    """The parent of a normalized path ('/' is its own parent)."""
    parts = split_path(path)
    if not parts:
        return "/"
    return "/" + "/".join(parts[:-1])


def basename(path: str) -> str:
    parts = split_path(path)
    return parts[-1] if parts else "/"


class INode:
    """Base class for namespace entries."""

    def __init__(self, inode_id: int, name: str, creation_time: float) -> None:
        self.inode_id = inode_id
        self.name = name
        self.creation_time = creation_time
        self.parent: Optional["INodeDirectory"] = None

    @property
    def is_file(self) -> bool:
        return isinstance(self, INodeFile)

    @property
    def is_directory(self) -> bool:
        return isinstance(self, INodeDirectory)

    @property
    def path(self) -> str:
        """Reconstruct the absolute path by walking up to the root."""
        parts: List[str] = []
        node: Optional[INode] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(parts))


class INodeFile(INode):
    """A file: size, replication factor, and the ids of its blocks."""

    def __init__(
        self,
        inode_id: int,
        name: str,
        creation_time: float,
        size: int = 0,
        replication: int = 3,
    ) -> None:
        super().__init__(inode_id, name, creation_time)
        if size < 0:
            raise InvalidPathError("file size cannot be negative")
        if replication < 1:
            raise InvalidPathError("replication factor must be >= 1")
        self.size = size
        self.replication = replication
        self.block_ids: List[int] = []
        self.modification_time = creation_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"INodeFile({self.path}, size={self.size}, rep={self.replication})"


class INodeDirectory(INode):
    """A directory: named children."""

    def __init__(self, inode_id: int, name: str, creation_time: float) -> None:
        super().__init__(inode_id, name, creation_time)
        self._children: Dict[str, INode] = {}

    @property
    def children(self) -> List[INode]:
        return list(self._children.values())

    def child(self, name: str) -> Optional[INode]:
        return self._children.get(name)

    def add_child(self, child: INode) -> None:
        if child.name in self._children:
            raise FileAlreadyExistsError(
                f"{child.name!r} already exists under {self.path!r}"
            )
        self._children[child.name] = child
        child.parent = self

    def remove_child(self, name: str) -> INode:
        if name not in self._children:
            raise InvalidPathError(f"no child {name!r} under {self.path!r}")
        child = self._children.pop(name)
        child.parent = None
        return child

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"INodeDirectory({self.path}, children={len(self._children)})"


class FSDirectory:
    """The namespace tree with path-based operations."""

    def __init__(self) -> None:
        self._next_inode_id = 0
        self.root = INodeDirectory(self._allocate_id(), "", creation_time=0.0)
        #: Bumped on every namespace mutation; lets :meth:`all_files`
        #: cache the (expensive) sorted tree walk between mutations.
        self._mutations = 0
        self._files_cache: Optional[List[INodeFile]] = None
        self._files_cache_at = -1

    def _allocate_id(self) -> int:
        inode_id = self._next_inode_id
        self._next_inode_id += 1
        return inode_id

    # -- lookups -------------------------------------------------------------
    def get(self, path: str) -> Optional[INode]:
        """The inode at ``path``, or None if missing."""
        node: INode = self.root
        for part in split_path(path):
            if not isinstance(node, INodeDirectory):
                return None
            child = node.child(part)
            if child is None:
                return None
            node = child
        return node

    def get_file(self, path: str) -> INodeFile:
        """The file at ``path``; raises if missing or a directory."""
        node = self.get(path)
        if node is None:
            raise InvalidPathError(f"no such file: {path!r}")
        if not isinstance(node, INodeFile):
            raise InvalidPathError(f"not a file: {path!r}")
        return node

    def get_directory(self, path: str) -> INodeDirectory:
        """The directory at ``path``; raises if missing or a file."""
        node = self.get(path)
        if node is None:
            raise InvalidPathError(f"no such directory: {path!r}")
        if not isinstance(node, INodeDirectory):
            raise InvalidPathError(f"not a directory: {path!r}")
        return node

    def exists(self, path: str) -> bool:
        return self.get(path) is not None

    # -- mutations -------------------------------------------------------------
    def mkdirs(self, path: str, creation_time: float = 0.0) -> INodeDirectory:
        """Create a directory and any missing ancestors (like ``mkdir -p``)."""
        node: INode = self.root
        for part in split_path(path):
            if not isinstance(node, INodeDirectory):
                raise InvalidPathError(f"{node.path!r} is not a directory")
            child = node.child(part)
            if child is None:
                child = INodeDirectory(self._allocate_id(), part, creation_time)
                node.add_child(child)
                self._mutations += 1
            node = child
        if not isinstance(node, INodeDirectory):
            raise InvalidPathError(f"{path!r} exists and is a file")
        return node

    def create_file(
        self,
        path: str,
        creation_time: float,
        size: int = 0,
        replication: int = 3,
    ) -> INodeFile:
        """Create a file, making parent directories as needed."""
        path = normalize_path(path)
        if self.exists(path):
            raise FileAlreadyExistsError(f"path exists: {path!r}")
        parent = self.mkdirs(parent_path(path), creation_time)
        inode = INodeFile(
            self._allocate_id(),
            basename(path),
            creation_time,
            size=size,
            replication=replication,
        )
        parent.add_child(inode)
        self._mutations += 1
        return inode

    def delete(self, path: str, recursive: bool = False) -> INode:
        """Unlink the inode at ``path``; returns the removed subtree root."""
        path = normalize_path(path)
        node = self.get(path)
        if node is None:
            raise InvalidPathError(f"no such path: {path!r}")
        if node is self.root:
            raise InvalidPathError("cannot delete the root")
        if isinstance(node, INodeDirectory) and node.children and not recursive:
            raise InvalidPathError(f"directory not empty: {path!r}")
        assert node.parent is not None
        self._mutations += 1
        return node.parent.remove_child(node.name)

    def rename(self, src: str, dst: str) -> INode:
        """Move ``src`` to ``dst`` (dst must not exist; parents created)."""
        src = normalize_path(src)
        dst = normalize_path(dst)
        if dst == src or dst.startswith(src + "/"):
            raise InvalidPathError(f"cannot rename {src!r} into itself")
        node = self.get(src)
        if node is None:
            raise InvalidPathError(f"no such path: {src!r}")
        if self.exists(dst):
            raise FileAlreadyExistsError(f"destination exists: {dst!r}")
        new_parent = self.mkdirs(parent_path(dst), node.creation_time)
        assert node.parent is not None
        node.parent.remove_child(node.name)
        node.name = basename(dst)
        new_parent.add_child(node)
        self._mutations += 1
        return node

    # -- iteration ----------------------------------------------------------------
    def list_dir(self, path: str) -> List[INode]:
        """Children of the directory at ``path`` sorted by name."""
        directory = self.get_directory(path)
        return sorted(directory.children, key=lambda n: n.name)

    def iter_files(self, path: str = "/") -> Iterator[INodeFile]:
        """Yield every file under ``path`` (depth-first, sorted)."""
        start = self.get(path)
        if start is None:
            raise InvalidPathError(f"no such path: {path!r}")
        stack: List[INode] = [start]
        while stack:
            node = stack.pop()
            if isinstance(node, INodeFile):
                yield node
            elif isinstance(node, INodeDirectory):
                stack.extend(sorted(node.children, key=lambda n: n.name, reverse=True))

    def all_files(self) -> List[INodeFile]:
        """Every file in the tree, in :meth:`iter_files` order, cached.

        The sorted depth-first walk is O(n log n) and sits on the policy
        hot path (every candidate-set query starts from it), so the
        result is memoized and invalidated by the mutation counter that
        every create/delete/rename bumps.  Callers must not mutate the
        returned list.
        """
        if self._files_cache is None or self._files_cache_at != self._mutations:
            self._files_cache = list(self.iter_files())
            self._files_cache_at = self._mutations
        return self._files_cache

    def file_count(self) -> int:
        return sum(1 for _ in self.iter_files())
