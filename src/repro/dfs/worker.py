"""Worker-side view of a node: block reports and transfer cost estimates.

Workers in the real system store blocks and execute transfer commands;
in the simulator the Master mutates device state directly, so a
:class:`Worker` is a read-only facade used for block reports (consumed by
the Replication Monitor) and for computing how long a replica transfer
takes on this hardware.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cluster.hardware import DEFAULT_NETWORK_BANDWIDTH, TierSpec
from repro.cluster.node import Node
from repro.dfs.block import ReplicaInfo
from repro.dfs.block_manager import BlockManager


class Worker:
    """Facade over one node's stored replicas."""

    def __init__(
        self,
        node: Node,
        block_manager: BlockManager,
        network_bandwidth: float = DEFAULT_NETWORK_BANDWIDTH,
    ) -> None:
        self.node = node
        self._blocks = block_manager
        self.network_bandwidth = network_bandwidth

    @property
    def node_id(self) -> str:
        return self.node.node_id

    def block_report(self, tier: Optional[TierSpec] = None) -> List[ReplicaInfo]:
        """All replicas this worker stores (optionally one tier)."""
        tiers = [tier] if tier is not None else list(self.node.hierarchy)
        report: List[ReplicaInfo] = []
        for t in tiers:
            report.extend(self._blocks.replicas_on(self.node_id, t))
        return report

    def stored_bytes(self, tier: TierSpec) -> int:
        return self.node.tier_used(tier)

    def transfer_time(
        self,
        num_bytes: int,
        from_tier: TierSpec,
        to_tier: TierSpec,
        cross_node: bool,
    ) -> float:
        """Seconds to move ``num_bytes`` from ``from_tier`` to ``to_tier``.

        The transfer streams at the minimum of the source read bandwidth,
        the destination write bandwidth, and (for cross-node moves) the
        network bandwidth.
        """
        src = from_tier.media
        dst = to_tier.media
        bandwidth = min(src.read_bw, dst.write_bw)
        if cross_node:
            bandwidth = min(bandwidth, self.network_bandwidth)
        return src.seek_latency + dst.seek_latency + num_bytes / bandwidth
