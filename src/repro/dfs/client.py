"""Client API: path-based file operations, HDFS-flavoured.

The paper keeps the Client unchanged and backward compatible (Sec 3.3);
this class is the public, application-facing surface of the simulated
DFS.  Examples and the workload replayer only touch this API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.hardware import TierSpec
from repro.dfs.master import Master, ReadPlan
from repro.dfs.namespace import INodeFile


@dataclass(frozen=True)
class FileStatus:
    """Summary of one namespace entry (like HDFS ``FileStatus``)."""

    path: str
    is_directory: bool
    size: int
    replication: int
    creation_time: float
    block_count: int


class DFSClient:
    """Thin, path-oriented wrapper over the Master."""

    def __init__(self, master: Master) -> None:
        self._master = master

    # -- writes -------------------------------------------------------------
    def create(
        self,
        path: str,
        size: int,
        replication: Optional[int] = None,
        writer_node: Optional[str] = None,
    ) -> INodeFile:
        """Write a new file of ``size`` bytes."""
        return self._master.create_file(
            path, size, replication=replication, writer_node=writer_node
        )

    def append(
        self,
        path: str,
        additional_bytes: int,
        writer_node: Optional[str] = None,
    ) -> INodeFile:
        """Append ``additional_bytes`` to an existing file."""
        return self._master.append_file(
            path, additional_bytes, writer_node=writer_node
        )

    def mkdirs(self, path: str) -> None:
        self._master.mkdirs(path)

    def delete(self, path: str) -> None:
        self._master.delete_file(path)

    def rename(self, src: str, dst: str) -> None:
        self._master.fs.rename(src, dst)

    # -- reads ---------------------------------------------------------------
    def open(self, path: str, reader_node: Optional[str] = None) -> ReadPlan:
        """Read a file; returns the plan of replicas that served it."""
        return self._master.read_file(path, reader_node=reader_node)

    # -- metadata ---------------------------------------------------------------
    def exists(self, path: str) -> bool:
        return self._master.exists(path)

    def file_status(self, path: str) -> FileStatus:
        node = self._master.fs.get(path)
        if node is None:
            raise FileNotFoundError(path)
        if isinstance(node, INodeFile):
            return FileStatus(
                path=node.path,
                is_directory=False,
                size=node.size,
                replication=node.replication,
                creation_time=node.creation_time,
                block_count=len(node.block_ids),
            )
        return FileStatus(
            path=node.path,
            is_directory=True,
            size=0,
            replication=0,
            creation_time=node.creation_time,
            block_count=0,
        )

    def list_status(self, path: str) -> List[FileStatus]:
        return [
            self.file_status(child.path)
            for child in self._master.fs.list_dir(path)
        ]

    def file_tiers(self, path: str) -> List[TierSpec]:
        """Tiers holding the complete file, fastest first."""
        file = self._master.get_file(path)
        return sorted(self._master.blocks.file_tiers(file))
