"""The DFS Master: namespace + block manager + node manager + placement.

The Master performs all metadata operations, drives block placement on
file creation, selects replicas for reads, and exposes the two-phase
transfer API the Replication Monitor uses to move or copy replicas
between tiers (paper Fig 3).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from repro.cluster.hardware import TierHierarchy, TierSpec
from repro.cluster.topology import ClusterTopology
from repro.common.config import Configuration
from repro.common.errors import InsufficientSpaceError, InvalidPathError
from repro.common.units import MB
from repro.dfs.block import BlockInfo, ReplicaInfo, split_into_block_sizes
from repro.dfs.block_manager import BlockManager
from repro.dfs.listeners import FileSystemListener
from repro.dfs.namespace import FSDirectory, INodeFile
from repro.dfs.placement import PlacementPolicy, PlacementTarget
from repro.sim.clock import Clock


@dataclass(frozen=True)
class BlockRead:
    """The replica chosen to serve one block of a read."""

    block: BlockInfo
    replica: ReplicaInfo
    distance: int
    local: bool


@dataclass
class ReadPlan:
    """Which replica serves each block of a file read.

    ``memory_location`` records whether the *whole file* had a memory
    replica at access time (the "based on memory locations" metric of
    Fig 9); the per-block ``BlockRead`` tiers give the "based on memory
    accesses" metric.
    """

    file: INodeFile
    reads: List[BlockRead] = field(default_factory=list)
    memory_location: bool = False

    @property
    def total_bytes(self) -> int:
        return sum(r.block.size for r in self.reads)

    def bytes_by_tier(self) -> Dict[TierSpec, int]:
        if not self.reads:
            return {}
        hierarchy = self.reads[0].replica.tier.hierarchy
        result = {tier: 0 for tier in hierarchy}
        for read in self.reads:
            result[read.replica.tier] += read.block.size
        return result

    @property
    def memory_access(self) -> bool:
        """True when every block was served from the highest tier."""
        return bool(self.reads) and all(
            r.replica.tier.is_highest for r in self.reads
        )


@dataclass
class TransferTicket:
    """An in-flight replica move/copy with space reserved at the target."""

    token: int
    block: BlockInfo
    source: Optional[ReplicaInfo]
    target: PlacementTarget
    committed: bool = False
    aborted: bool = False

    @property
    def is_move(self) -> bool:
        return self.source is not None


class Master:
    """Coordinates namespace, blocks, placement, and tier transfers."""

    #: Optional decision tracer (:class:`repro.obs.trace.Tracer`),
    #: installed by the runner when ``obs.trace`` is set; ``None`` keeps
    #: namespace operations untraced and bit-identical.
    tracer = None

    def __init__(
        self,
        topology: ClusterTopology,
        placement: PlacementPolicy,
        clock: Clock,
        conf: Optional[Configuration] = None,
    ) -> None:
        self.topology = topology
        self.clock = clock
        self.conf = conf if conf is not None else Configuration()
        #: The cluster's tier hierarchy (shared with topology/placement).
        self.hierarchy: TierHierarchy = topology.hierarchy
        self.fs = FSDirectory()
        self.node_manager = placement.node_manager
        self.blocks = BlockManager(topology)
        self.placement = placement
        self.block_size = self.conf.get_bytes("dfs.block_size", 128 * MB)
        self.default_replication = self.conf.get_int("dfs.replication", 3)
        self._listeners: List[FileSystemListener] = []
        self._ticket_tokens = itertools.count(start=1)
        self._open_tickets: Dict[int, TransferTicket] = {}
        self._files_by_id: Dict[int, INodeFile] = {}

    # -- listeners ---------------------------------------------------------
    def add_listener(self, listener: FileSystemListener) -> None:
        self._listeners.append(listener)

    def remove_listener(self, listener: FileSystemListener) -> None:
        self._listeners.remove(listener)

    def _notify(self, method: str, *args) -> None:
        for listener in self._listeners:
            getattr(listener, method)(*args)

    # -- namespace passthroughs -----------------------------------------------
    def exists(self, path: str) -> bool:
        return self.fs.exists(path)

    def get_file(self, path: str) -> INodeFile:
        return self.fs.get_file(path)

    def get_file_by_id(self, inode_id: int) -> INodeFile:
        return self._files_by_id[inode_id]

    def mkdirs(self, path: str) -> None:
        self.fs.mkdirs(path, creation_time=self.clock.now())

    # -- file creation ------------------------------------------------------------
    def create_file(
        self,
        path: str,
        size: int,
        replication: Optional[int] = None,
        writer_node: Optional[str] = None,
    ) -> INodeFile:
        """Create a file of ``size`` bytes and place all its replicas.

        Placement degrades gracefully under space pressure (fewer
        replicas), but raises :class:`InsufficientSpaceError` if even a
        single replica of some block cannot be placed.
        """
        replication = replication or self.default_replication
        file = self.fs.create_file(
            path, creation_time=self.clock.now(), size=size, replication=replication
        )
        tiers_touched: Set[TierSpec] = set()
        tracer = self.tracer
        if tracer is not None:
            # Placement policies never see paths; the context lets their
            # per-candidate score records carry the file being placed.
            tracer.file_context = path
        try:
            for index, block_size in enumerate(
                split_into_block_sizes(size, self.block_size)
            ):
                block = self.blocks.allocate_block(file, index, block_size)
                targets = self.placement.place_block(
                    block_size, replication, writer_node
                )
                if not targets:
                    raise InsufficientSpaceError(
                        f"no space for block {block.block_id} of {path!r}"
                    )
                for target in targets:
                    self.blocks.add_replica(
                        block, target.node_id, target.tier, target.device_id
                    )
                    self.node_manager.record_write(
                        target.node_id, target.tier, block_size
                    )
                    tiers_touched.add(target.tier)
        except InsufficientSpaceError:
            # Roll back the partial file so namespace and devices agree.
            self.blocks.remove_file_blocks(file)
            self.fs.delete(path)
            if tracer is not None:
                tracer.file_context = None
            raise
        if tracer is not None:
            tracer.file_context = None
            tracer.emit(
                "file_create",
                path=path,
                bytes=size,
                replication=replication,
                tiers=sorted(t.name for t in tiers_touched),
            )
        self._files_by_id[file.inode_id] = file
        self._notify("on_file_created", file)
        for tier in sorted(tiers_touched):
            self._notify("on_data_added", tier)
        return file

    # -- reads ---------------------------------------------------------------------
    def read_file(self, path: str, reader_node: Optional[str] = None) -> ReadPlan:
        """Record an access and plan which replica serves each block.

        Listener order matters: ``on_file_accessed`` fires *before*
        replica selection (upgrades are decided before the read, Sec 6),
        but replica selection itself sees the pre-upgrade locations
        because transfers are asynchronous.
        """
        file = self.fs.get_file(path)
        memory_location = self.blocks.file_has_tier(file, self.hierarchy.highest)
        self._notify("on_file_accessed", file)
        plan = ReadPlan(file=file, memory_location=memory_location)
        for block in self.blocks.blocks_of(file):
            read = self.choose_replica(block, reader_node)
            plan.reads.append(read)
            self.node_manager.record_read(
                read.replica.node_id, read.replica.tier, block.size
            )
        return plan

    def choose_replica(
        self, block: BlockInfo, reader_node: Optional[str]
    ) -> BlockRead:
        """Pick the replica a reader on ``reader_node`` should use.

        HDFS semantics: network distance first (local replicas beat
        remote ones), then tier speed among equals.
        """
        replicas = block.replica_list()
        if not replicas:
            raise InvalidPathError(f"block {block.block_id} has no replicas")
        if reader_node is not None and reader_node in self.topology:
            reader = self.topology.node(reader_node)

            def key(replica: ReplicaInfo):
                distance = self.topology.distance(
                    reader, self.topology.node(replica.node_id)
                )
                return (distance, replica.tier, replica.replica_id)

            chosen = min(replicas, key=key)
            distance = self.topology.distance(
                reader, self.topology.node(chosen.node_id)
            )
            return BlockRead(
                block=block,
                replica=chosen,
                distance=distance,
                local=distance == ClusterTopology.SAME_NODE,
            )
        # No reader context: serve from the fastest tier, least-loaded node.
        chosen = min(
            replicas,
            key=lambda r: (
                r.tier,
                self.node_manager.load_score(r.node_id),
                r.replica_id,
            ),
        )
        return BlockRead(
            block=block,
            replica=chosen,
            distance=ClusterTopology.OFF_RACK,
            local=False,
        )

    # -- appends --------------------------------------------------------------------
    def append_file(
        self,
        path: str,
        additional_bytes: int,
        writer_node: Optional[str] = None,
    ) -> INodeFile:
        """Append data to an existing file (new blocks, placed as usual).

        Simplification vs HDFS: appends always open new blocks rather
        than filling the last partial one; block counts stay exact and
        the tiering callbacks (``on_file_modified`` + ``on_data_added``)
        fire the same way.
        """
        if additional_bytes <= 0:
            raise InvalidPathError("append size must be positive")
        file = self.fs.get_file(path)
        start_index = len(file.block_ids)
        tiers_touched: Set[TierSpec] = set()
        tracer = self.tracer
        if tracer is not None:
            tracer.file_context = path
        for offset, block_size in enumerate(
            split_into_block_sizes(additional_bytes, self.block_size)
        ):
            block = self.blocks.allocate_block(file, start_index + offset, block_size)
            targets = self.placement.place_block(
                block_size, file.replication, writer_node
            )
            if not targets:
                raise InsufficientSpaceError(
                    f"no space appending block to {path!r}"
                )
            for target in targets:
                self.blocks.add_replica(
                    block, target.node_id, target.tier, target.device_id
                )
                self.node_manager.record_write(
                    target.node_id, target.tier, block_size
                )
                tiers_touched.add(target.tier)
        file.size += additional_bytes
        file.modification_time = self.clock.now()
        if tracer is not None:
            tracer.file_context = None
        self._notify("on_file_modified", file)
        for tier in sorted(tiers_touched):
            self._notify("on_data_added", tier)
        return file

    # -- deletion -------------------------------------------------------------------
    def delete_file(self, path: str) -> None:
        """Remove a file: blocks, replicas, then the namespace entry."""
        file = self.fs.get_file(path)
        if self.tracer is not None:
            self.tracer.emit("file_delete", path=path, bytes=file.size)
        self.blocks.remove_file_blocks(file)
        self._files_by_id.pop(file.inode_id, None)
        # Notify while the inode is still linked so ``file.path`` is
        # meaningful to listeners; replicas are already released.
        self._notify("on_file_deleted", file)
        self.fs.delete(path)

    # -- two-phase replica transfers (used by the Replication Monitor) ----------------
    def begin_transfer(
        self,
        block: BlockInfo,
        source: Optional[ReplicaInfo],
        target: PlacementTarget,
    ) -> TransferTicket:
        """Reserve target space for a replica move (source != None) or copy.

        Raises :class:`InsufficientSpaceError` if the target device is
        full — callers should pick another target or give up.
        """
        node = self.topology.node(target.node_id)
        device = next(
            d for d in node.devices(target.tier) if d.device_id == target.device_id
        )
        token = next(self._ticket_tokens)
        # Pending reservations use negative ids so they can never collide
        # with real replica ids.
        device.allocate(-token, block.size)
        ticket = TransferTicket(token=token, block=block, source=source, target=target)
        self._open_tickets[token] = ticket
        self.node_manager.transfer_started(target.node_id)
        if source is not None:
            self.node_manager.transfer_started(source.node_id)
        return ticket

    def commit_transfer(self, ticket: TransferTicket) -> ReplicaInfo:
        """Finish a transfer: materialize the new replica, drop the source."""
        self._close_ticket(ticket)
        ticket.committed = True
        node = self.topology.node(ticket.target.node_id)
        device = next(
            d
            for d in node.devices(ticket.target.tier)
            if d.device_id == ticket.target.device_id
        )
        device.release(-ticket.token, ticket.block.size)
        replica = self.blocks.add_replica(
            ticket.block,
            ticket.target.node_id,
            ticket.target.tier,
            ticket.target.device_id,
        )
        self.node_manager.record_write(
            ticket.target.node_id, ticket.target.tier, ticket.block.size
        )
        if ticket.source is not None:
            # The source may have been deleted concurrently (file removal).
            if ticket.source.replica_id in ticket.block.replicas:
                self.blocks.remove_replica(ticket.source)
        self._notify("on_data_added", ticket.target.tier)
        return replica

    def abort_transfer(self, ticket: TransferTicket) -> None:
        """Cancel a transfer, releasing the target-space reservation."""
        self._close_ticket(ticket)
        ticket.aborted = True
        node = self.topology.node(ticket.target.node_id)
        device = next(
            d
            for d in node.devices(ticket.target.tier)
            if d.device_id == ticket.target.device_id
        )
        device.release(-ticket.token, ticket.block.size)

    def _close_ticket(self, ticket: TransferTicket) -> None:
        if ticket.committed or ticket.aborted:
            raise InvalidPathError("ticket already closed")
        self._open_tickets.pop(ticket.token, None)
        self.node_manager.transfer_finished(ticket.target.node_id)
        if ticket.source is not None:
            self.node_manager.transfer_finished(ticket.source.node_id)

    def delete_replica(self, replica: ReplicaInfo) -> None:
        """Drop a single replica (downgrade-by-deletion, Definition 1)."""
        self.blocks.remove_replica(replica)

    # -- failure handling ---------------------------------------------------------------
    def decommission_node(self, node_id: str) -> int:
        """Drop every replica stored on ``node_id`` (simulated node loss).

        Returns the number of replicas lost; the Replication Monitor's
        health scan re-replicates the affected blocks.
        """
        lost = 0
        for tier in self.hierarchy:
            for replica in list(self.blocks.replicas_on(node_id, tier)):
                self.blocks.remove_replica(replica)
                lost += 1
        return lost

    # -- capacity ------------------------------------------------------------------------
    def tier_utilization(self, tier: TierSpec) -> float:
        return self.topology.tier_utilization(tier)

    def tier_used(self, tier: TierSpec) -> int:
        return self.topology.tier_used(tier)

    def tier_capacity(self, tier: TierSpec) -> int:
        return self.topology.tier_capacity(tier)

    def files(self) -> List[INodeFile]:
        """All files in namespace-walk order (cached; treat as read-only)."""
        return self.fs.all_files()

    def open_ticket_count(self) -> int:
        return len(self._open_tickets)
