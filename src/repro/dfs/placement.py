"""Block placement policies.

Four policies reproduce the four systems compared in the paper's Fig 2:

* :class:`HdfsPlacementPolicy` — original HDFS: all replicas on HDDs,
  distinct nodes, rack-aware.
* :class:`HdfsCachePlacementPolicy` — HDFS with the centralized cache: one
  *extra* replica in memory co-located with an HDD replica, only while
  memory has room (no eviction — exactly why Fig 2 flatlines).
* :class:`OctopusPlacementPolicy` — OctopusFS's multi-objective policy:
  scores (node, tier, device) candidates on throughput, data balance,
  load balance, and fault tolerance, preferring tier diversity so a
  3-replica block lands on memory + SSD + HDD while space lasts.
* :class:`SingleTierPlacementPolicy` — pins all replicas to one tier;
  used by the upgrade-policy isolation experiment (Sec 7.4).

The Octopus policy also provides :meth:`select_transfer_target`, the
"how to downgrade/upgrade" decision (Secs 5.3 and 6.3), which reuses the
same multi-objective scoring restricted to the requested tiers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from repro.cluster.hardware import TierSpec
from repro.cluster.node import Node
from repro.cluster.topology import ClusterTopology
from repro.common.config import Configuration
from repro.dfs.block import BlockInfo, ReplicaInfo
from repro.dfs.node_manager import NodeManager


@dataclass(frozen=True)
class PlacementTarget:
    """A concrete location for one replica."""

    node_id: str
    tier: TierSpec
    device_id: str


class PlacementPolicy:
    """Base class: decides where replicas go."""

    #: Optional decision tracer (:class:`repro.obs.trace.Tracer`),
    #: installed by the runner when ``obs.trace`` is set.  Policies that
    #: support per-candidate score auditing consult it in their
    #: placement loop; ``None`` (the default) keeps the hot path free of
    #: any tracing work.
    tracer = None

    def __init__(
        self,
        topology: ClusterTopology,
        node_manager: NodeManager,
        conf: Optional[Configuration] = None,
    ) -> None:
        self.topology = topology
        self.node_manager = node_manager
        self.conf = conf if conf is not None else Configuration()
        #: The cluster's tier hierarchy; all tier-ordered decisions
        #: (downgrade targets, diversity preferences) derive from it.
        self.hierarchy = topology.hierarchy

    def place_block(
        self,
        size: int,
        replication: int,
        writer_node: Optional[str] = None,
    ) -> List[PlacementTarget]:
        """Choose locations for the ``replication`` replicas of a new block.

        May return fewer targets than requested when the cluster is out
        of space; the caller decides whether that is an error.
        """
        raise NotImplementedError

    def select_transfer_target(
        self,
        block: BlockInfo,
        from_replica: ReplicaInfo,
        candidate_tiers: Sequence[TierSpec],
    ) -> Optional[PlacementTarget]:
        """Choose where to move ``from_replica`` (downgrade/upgrade step).

        Default implementation: first tier in ``candidate_tiers`` with
        space, preferring the replica's own node.  Subclasses refine.
        """
        for tier in candidate_tiers:
            target = self._fit_on_tier(block, from_replica, tier)
            if target is not None:
                return target
        return None

    def select_copy_target(
        self,
        block: BlockInfo,
        candidate_tiers: Sequence[TierSpec],
    ) -> Optional[PlacementTarget]:
        """Choose where to place an *additional* replica (re-replication).

        Unlike a move, every node already holding a replica is excluded.
        Default: first tier in ``candidate_tiers`` with space on the
        least-utilized eligible node.
        """
        excluded = set(block.nodes())
        for tier in candidate_tiers:
            nodes = sorted(
                (
                    n
                    for n in self.topology.nodes_with_tier(tier)
                    if n.node_id not in excluded
                ),
                key=lambda n: (n.tier_utilization(tier), n.node_id),
            )
            for node in nodes:
                device = node.best_device_for(tier, block.size)
                if device is not None:
                    return PlacementTarget(node.node_id, tier, device.device_id)
        return None

    def select_cache_target(
        self,
        block: BlockInfo,
        tier: TierSpec,
    ) -> Optional[PlacementTarget]:
        """Choose where to place a *cached* copy of ``block`` on ``tier``.

        Cache copies follow HDFS centralized-cache semantics: prefer a
        node that already holds a replica (the cache lives next to the
        data it shadows), but never duplicate a replica on the same
        (node, tier).  Falls back to any node with room.
        """
        holders = set(block.nodes())
        on_tier = {r.node_id for r in block.replicas.values() if r.tier == tier}
        nodes = sorted(
            (
                n
                for n in self.topology.nodes_with_tier(tier)
                if n.node_id not in on_tier
            ),
            key=lambda n: (
                n.node_id not in holders,
                n.tier_utilization(tier),
                n.node_id,
            ),
        )
        for node in nodes:
            device = node.best_device_for(tier, block.size)
            if device is not None:
                return PlacementTarget(node.node_id, tier, device.device_id)
        return None

    # -- shared helpers ------------------------------------------------------
    def _nodes_excluded_for(
        self, block: BlockInfo, from_replica: Optional[ReplicaInfo]
    ) -> Set[str]:
        """Nodes that may not receive a new replica of ``block``.

        A node already holding any replica of the block is excluded,
        except the source node of a move (its replica disappears when the
        move commits).
        """
        excluded = set(block.nodes())
        if from_replica is not None:
            others = [
                r
                for r in block.replicas.values()
                if r.node_id == from_replica.node_id
                and r.replica_id != from_replica.replica_id
            ]
            if not others:
                excluded.discard(from_replica.node_id)
        return excluded

    def _fit_on_tier(
        self,
        block: BlockInfo,
        from_replica: ReplicaInfo,
        tier: TierSpec,
    ) -> Optional[PlacementTarget]:
        excluded = self._nodes_excluded_for(block, from_replica)
        # Prefer the same node (no network hop), then least-utilized.
        nodes = sorted(
            (
                n
                for n in self.topology.nodes_with_tier(tier)
                if n.node_id not in excluded
            ),
            key=lambda n: (n.node_id != from_replica.node_id, n.tier_utilization(tier)),
        )
        for node in nodes:
            device = node.best_device_for(tier, block.size)
            if device is not None:
                return PlacementTarget(node.node_id, tier, device.device_id)
        return None


class HdfsPlacementPolicy(PlacementPolicy):
    """Original HDFS: every replica on the base tier, rack-aware spread.

    The base tier is the hierarchy's lowest node-local tier (HDD in the
    paper's testbed).  First replica goes to the writer node when
    possible, the second to a different rack, the third to the second's
    rack — the classic HDFS default, simplified to node-distinctness
    plus rack diversity.
    """

    @property
    def base_tier(self) -> TierSpec:
        return self.hierarchy.lowest_local

    def place_block(
        self,
        size: int,
        replication: int,
        writer_node: Optional[str] = None,
    ) -> List[PlacementTarget]:
        targets: List[PlacementTarget] = []
        used_nodes: Set[str] = set()
        used_racks: List[str] = []
        base = self.base_tier
        for i in range(replication):
            node = self._pick_node(size, used_nodes, used_racks, writer_node, i)
            if node is None:
                break
            device = node.best_device_for(base, size)
            assert device is not None  # _pick_node guarantees space
            targets.append(
                PlacementTarget(node.node_id, base, device.device_id)
            )
            used_nodes.add(node.node_id)
            used_racks.append(node.rack)
        return targets

    def _pick_node(
        self,
        size: int,
        used_nodes: Set[str],
        used_racks: List[str],
        writer_node: Optional[str],
        replica_index: int,
    ) -> Optional[Node]:
        base = self.base_tier
        candidates = [
            n
            for n in self.topology.nodes_with_tier(base)
            if n.node_id not in used_nodes
            and n.best_device_for(base, size) is not None
        ]
        if not candidates:
            return None
        if replica_index == 0 and writer_node is not None:
            local = [n for n in candidates if n.node_id == writer_node]
            if local:
                return local[0]
        if replica_index == 1 and used_racks:
            off_rack = [n for n in candidates if n.rack != used_racks[0]]
            if off_rack:
                candidates = off_rack
        if replica_index == 2 and len(used_racks) >= 2:
            same_rack = [n for n in candidates if n.rack == used_racks[1]]
            if same_rack:
                candidates = same_rack
        return min(
            candidates,
            key=lambda n: (n.tier_utilization(base), n.node_id),
        )


class HdfsCachePlacementPolicy(HdfsPlacementPolicy):
    """HDFS with the centralized cache enabled.

    Adds one extra memory replica on a node that already received an HDD
    replica — but only while that node's memory tier has room.  There is
    no eviction: once memory fills, caching silently stops (paper Sec 1,
    Fig 2).
    """

    def place_block(
        self,
        size: int,
        replication: int,
        writer_node: Optional[str] = None,
    ) -> List[PlacementTarget]:
        targets = super().place_block(size, replication, writer_node)
        cache_tier = self.hierarchy.highest
        for target in targets:
            node = self.topology.node(target.node_id)
            device = node.best_device_for(cache_tier, size)
            if device is not None:
                targets.append(
                    PlacementTarget(node.node_id, cache_tier, device.device_id)
                )
                break
        return targets


class SingleTierPlacementPolicy(PlacementPolicy):
    """All replicas pinned to one tier (default: lowest local), distinct nodes.

    Used to isolate upgrade policies (Sec 7.4: "initially place all file
    replicas on the HDD tier and let the upgrade policies decide").
    """

    def __init__(
        self,
        topology: ClusterTopology,
        node_manager: NodeManager,
        conf: Optional[Configuration] = None,
        tier: Optional[TierSpec] = None,
    ) -> None:
        super().__init__(topology, node_manager, conf)
        self.tier = tier if tier is not None else self.hierarchy.lowest_local

    def place_block(
        self,
        size: int,
        replication: int,
        writer_node: Optional[str] = None,
    ) -> List[PlacementTarget]:
        targets: List[PlacementTarget] = []
        used_nodes: Set[str] = set()
        for _ in range(replication):
            candidates = [
                n
                for n in self.topology.nodes_with_tier(self.tier)
                if n.node_id not in used_nodes
                and n.best_device_for(self.tier, size) is not None
            ]
            if not candidates:
                break
            node = min(
                candidates,
                key=lambda n: (n.tier_utilization(self.tier), n.node_id),
            )
            device = node.best_device_for(self.tier, size)
            assert device is not None
            targets.append(PlacementTarget(node.node_id, self.tier, device.device_id))
            used_nodes.add(node.node_id)
        return targets





class OctopusPlacementPolicy(PlacementPolicy):
    """OctopusFS's multi-objective data placement (Sec 5.3, [29]).

    Each candidate (node, tier, device) is scored as a weighted sum of
    four objectives and replicas are chosen greedily (a scalarized Pareto
    search):

    * **throughput** — faster tiers score higher;
    * **data balance** — emptier devices score higher;
    * **load balance** — nodes with fewer in-flight transfers score higher;
    * **fault tolerance** — distinct nodes are a hard constraint, new
      racks earn a bonus, and *tier diversity* earns a bonus so the
      replicas of one block spread across tiers (memory + SSD + HDD while
      memory lasts — the behaviour Fig 2 shows).

    Configuration keys (all optional): ``placement.weight.throughput``,
    ``placement.weight.data_balance``, ``placement.weight.load_balance``,
    ``placement.weight.fault_tolerance``, ``placement.weight.locality``.
    """

    def __init__(
        self,
        topology: ClusterTopology,
        node_manager: NodeManager,
        conf: Optional[Configuration] = None,
        tier_scores: Optional[Dict[TierSpec, float]] = None,
    ) -> None:
        super().__init__(topology, node_manager, conf)
        # Throughput attractiveness comes from each tier's spec (the
        # default3 scores reproduce the paper's calibration exactly).
        self.tier_scores = dict(
            tier_scores
            if tier_scores is not None
            else {t: t.score for t in self.hierarchy}
        )
        conf = self.conf
        self.w_throughput = conf.get_float("placement.weight.throughput", 1.0)
        self.w_data_balance = conf.get_float("placement.weight.data_balance", 0.4)
        self.w_load_balance = conf.get_float("placement.weight.load_balance", 0.3)
        self.w_fault_tolerance = conf.get_float(
            "placement.weight.fault_tolerance", 0.6
        )
        self.w_locality = conf.get_float("placement.weight.locality", 0.2)

    # -- scoring ----------------------------------------------------------
    def _score(
        self,
        node: Node,
        tier: TierSpec,
        size: int,
        used_racks: Set[str],
        used_tiers: Set[TierSpec],
        prefer_node: Optional[str],
    ) -> Optional[float]:
        """Score one candidate (kept for tests/tools; the hot loop in
        :meth:`_best_candidate` inlines the same arithmetic)."""
        device = node.best_device_for(tier, size)
        if device is None:
            return None
        throughput = self.tier_scores.get(tier, 0.0)
        data_balance = 1.0 - device.utilization
        load_balance = 1.0 - self.node_manager.load_score(node.node_id)
        fault = 0.0
        if node.rack not in used_racks:
            fault += 0.5
        if tier not in used_tiers:
            fault += 0.5
        locality = (
            1.0 if prefer_node is not None and node.node_id == prefer_node else 0.0
        )
        return (
            self.w_throughput * throughput
            + self.w_data_balance * data_balance
            + self.w_load_balance * load_balance
            + self.w_fault_tolerance * fault
            + self.w_locality * locality
        )

    def _best_candidate(
        self,
        size: int,
        tiers: Sequence[TierSpec],
        excluded_nodes: Set[str],
        used_racks: Set[str],
        used_tiers: Set[TierSpec],
        prefer_node: Optional[str],
    ) -> Optional[PlacementTarget]:
        # Inlined scoring: per-tier and per-node terms are hoisted out of
        # the inner loop, but every product and the left-to-right sum
        # order match _score exactly, so the selected candidate (and the
        # tie-breaks) are bit-identical to scoring each pair afresh.
        best: Optional[PlacementTarget] = None
        best_score = float("-inf")
        w_data = self.w_data_balance
        w_fault = self.w_fault_tolerance
        load_scores = self.node_manager.load_score
        tier_terms = [
            (
                tier,
                self.w_throughput * self.tier_scores.get(tier, 0.0),
                0.0 if tier in used_tiers else 0.5,
            )
            for tier in tiers
        ]
        for node in self.topology.nodes:
            if not node.alive or node.node_id in excluded_nodes:
                continue
            load_term = self.w_load_balance * (1.0 - load_scores(node.node_id))
            rack_bonus = 0.0 if node.rack in used_racks else 0.5
            locality_term = self.w_locality * (
                1.0
                if prefer_node is not None and node.node_id == prefer_node
                else 0.0
            )
            for tier, throughput_term, tier_bonus in tier_terms:
                if not node.has_tier(tier):
                    continue
                device = node.best_device_for(tier, size)
                if device is None:
                    continue
                score = (
                    throughput_term
                    + w_data * (1.0 - device.utilization)
                    + load_term
                    + w_fault * (rack_bonus + tier_bonus)
                    + locality_term
                )
                # Deterministic tie-break on (score, node id, tier).
                if score > best_score or (
                    score == best_score
                    and best is not None
                    and (node.node_id, tier) < (best.node_id, best.tier)
                ):
                    best = PlacementTarget(node.node_id, tier, device.device_id)
                    best_score = score
        return best

    # -- PlacementPolicy API --------------------------------------------------
    def place_block(
        self,
        size: int,
        replication: int,
        writer_node: Optional[str] = None,
    ) -> List[PlacementTarget]:
        targets: List[PlacementTarget] = []
        used_nodes: Set[str] = set()
        used_racks: Set[str] = set()
        used_tiers: Set[TierSpec] = set()
        for i in range(replication):
            prefer = writer_node if i == 0 else None
            # Strict tier-diversity preference: OctopusFS puts the replicas
            # of one block on *different* tiers while space lasts (Sec 3.1),
            # falling back to reusing tiers only when the fresh ones are full.
            fresh_tiers = [t for t in self.hierarchy if t not in used_tiers]
            target = None
            pool: Sequence[TierSpec] = fresh_tiers
            if fresh_tiers:
                target = self._best_candidate(
                    size, fresh_tiers, used_nodes, used_racks, used_tiers, prefer
                )
            if target is None:
                pool = list(self.hierarchy)
                target = self._best_candidate(
                    size,
                    list(self.hierarchy),
                    used_nodes,
                    used_racks,
                    used_tiers,
                    prefer,
                )
            if target is None:
                break
            if self.tracer is not None:
                self._trace_choice(
                    size, i, target, pool, used_nodes, used_racks, used_tiers, prefer
                )
            targets.append(target)
            used_nodes.add(target.node_id)
            used_racks.add(self.topology.node(target.node_id).rack)
            used_tiers.add(target.tier)
        return targets

    def _trace_choice(
        self,
        size: int,
        replica_index: int,
        chosen: PlacementTarget,
        pool: Sequence[TierSpec],
        used_nodes: Set[str],
        used_racks: Set[str],
        used_tiers: Set[TierSpec],
        prefer: Optional[str],
    ) -> None:
        """Emit one ``placement`` audit record for a chosen replica target.

        Re-scores every live candidate with :meth:`_score` (the
        reference arithmetic) so the record shows *why* the winner won.
        Only called when a tracer is installed, and only from the cold
        path wrapper in :meth:`place_block` — the inlined
        :meth:`_best_candidate` hot loop stays untouched.
        """
        candidates = []
        for node in self.topology.nodes:
            if not node.alive or node.node_id in used_nodes:
                continue
            for tier in pool:
                if not node.has_tier(tier):
                    continue
                score = self._score(node, tier, size, used_racks, used_tiers, prefer)
                if score is None:
                    continue
                candidates.append(
                    {"node": node.node_id, "tier": tier.name, "score": round(score, 6)}
                )
        candidates.sort(key=lambda c: (-c["score"], c["node"], c["tier"]))
        self.tracer.emit(
            "placement",
            path=self.tracer.file_context,
            bytes=size,
            replica=replica_index,
            chosen={"node": chosen.node_id, "tier": chosen.tier.name},
            candidates=candidates[:8],
        )

    def select_transfer_target(
        self,
        block: BlockInfo,
        from_replica: ReplicaInfo,
        candidate_tiers: Sequence[TierSpec],
    ) -> Optional[PlacementTarget]:
        """Multi-objective choice of where a moved replica should land.

        Same scoring as initial placement, restricted to
        ``candidate_tiers``; the source node gets the locality bonus
        because a same-node move avoids a network transfer.
        """
        excluded = self._nodes_excluded_for(block, from_replica)
        used_racks = {
            self.topology.node(r.node_id).rack
            for r in block.replicas.values()
            if r.replica_id != from_replica.replica_id
        }
        used_tiers = {
            r.tier
            for r in block.replicas.values()
            if r.replica_id != from_replica.replica_id
        }
        return self._best_candidate(
            block.size,
            candidate_tiers,
            excluded,
            used_racks,
            used_tiers,
            prefer_node=from_replica.node_id,
        )
