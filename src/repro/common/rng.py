"""Deterministic random-number helpers for workload synthesis.

Everything that involves randomness in the library goes through a seeded
``numpy.random.Generator`` so experiments are exactly reproducible.  The
distributions here are the ones production-trace studies use to describe
analytics workloads: Zipf file popularity, heavy-tailed (log-normal /
bounded Pareto) sizes, and Poisson arrivals.
"""

from __future__ import annotations

from typing import List, Sequence, Union

import numpy as np

#: Anything ``numpy.random.default_rng`` accepts as entropy.  Sequences
#: of ints derive independent sub-streams deterministically — workload
#: generators use ``[seed, source_index]`` so per-tenant / per-dataset
#: streams stay decoupled under composition.
Seed = Union[None, int, Sequence[int]]


def make_rng(seed: Seed) -> np.random.Generator:
    """Create a generator from ``seed`` (``None`` → non-deterministic)."""
    return np.random.default_rng(seed)


def zipf_probabilities(n: int, skew: float) -> np.ndarray:
    """Return the Zipf(``skew``) probability vector over ranks ``1..n``.

    ``skew`` = 0 gives the uniform distribution; larger values concentrate
    mass on low ranks (popular items), matching the skewed file popularity
    observed in the Facebook/CMU traces (Sec 7.1).
    """
    if n <= 0:
        raise ValueError("n must be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    weights = 1.0 / np.power(np.arange(1, n + 1, dtype=float), skew)
    return weights / weights.sum()


def sample_zipf_ranks(
    rng: np.random.Generator, n: int, skew: float, count: int
) -> np.ndarray:
    """Sample ``count`` ranks in ``[0, n)`` from a Zipf(``skew``) law."""
    probs = zipf_probabilities(n, skew)
    return rng.choice(n, size=count, p=probs)


def bounded_pareto(
    rng: np.random.Generator,
    low: float,
    high: float,
    alpha: float,
    size: int,
) -> np.ndarray:
    """Sample from a Pareto law truncated to ``[low, high]``.

    Heavy-tailed job input sizes in MapReduce traces are commonly modelled
    with bounded Pareto distributions.
    """
    if not 0 < low < high:
        raise ValueError("need 0 < low < high")
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    u = rng.random(size)
    la = low**alpha
    ha = high**alpha
    return (-(u * (ha - la) - ha) / (ha * la)) ** (-1.0 / alpha)


def poisson_arrivals(
    rng: np.random.Generator, rate_per_second: float, horizon_seconds: float
) -> List[float]:
    """Generate Poisson-process arrival times over ``[0, horizon)``.

    Returns a sorted list of timestamps.  ``rate_per_second`` is the mean
    arrival rate; inter-arrival gaps are exponential.
    """
    if rate_per_second <= 0:
        raise ValueError("rate must be positive")
    arrivals: List[float] = []
    t = 0.0
    while True:
        t += rng.exponential(1.0 / rate_per_second)
        if t >= horizon_seconds:
            break
        arrivals.append(t)
    return arrivals


def weighted_choice(
    rng: np.random.Generator, items: Sequence[object], weights: Sequence[float]
) -> object:
    """Pick one of ``items`` with the given (unnormalized) weights."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("weights must sum to a positive value")
    probs = np.asarray(weights, dtype=float) / total
    index = rng.choice(len(items), p=probs)
    return items[int(index)]
