"""One registry helper enumerating every pluggable dimension.

The CLI's discovery commands (``repro list``, ``repro scenario list``)
and tests read from this single function instead of each subcommand
importing its own registries — adding a tier preset, I/O model, policy,
or scenario makes it discoverable everywhere at once.
"""

from __future__ import annotations

from typing import Dict, List


def catalog() -> Dict[str, List[str]]:
    """Names of every registered pluggable, keyed by dimension."""
    from repro.cluster.hardware import hierarchy_names
    from repro.core.presets import preset_names
    from repro.core.registry import (
        DOWNGRADE_POLICY_NAMES,
        EXTRA_DOWNGRADE_POLICY_NAMES,
        EXTRA_UPGRADE_POLICY_NAMES,
        UPGRADE_POLICY_NAMES,
    )
    from repro.engine.iomodel import IO_MODEL_NAMES
    from repro.engine.runner import PLACEMENT_NAMES
    from repro.sweep.spec import builtin_specs
    from repro.workload.compose import COMPOSE_OPS
    from repro.workload.fuzz import DIMENSION_NAMES
    from repro.workload.live import LIVE_TRANSPORTS
    from repro.workload.profiles import PROFILES
    from repro.workload.scenarios import scenario_names

    return {
        "tiers": sorted(hierarchy_names()),
        "compose-ops": list(COMPOSE_OPS),
        "fuzz-dimensions": list(DIMENSION_NAMES),
        "live-transports": sorted(LIVE_TRANSPORTS),
        "io-models": sorted(IO_MODEL_NAMES),
        "placements": sorted(PLACEMENT_NAMES),
        "workloads": sorted(PROFILES),
        "scenarios": scenario_names(),
        "presets": preset_names(),
        "sweeps": sorted(builtin_specs()),
        "downgrade-policies": sorted(
            set(DOWNGRADE_POLICY_NAMES) | set(EXTRA_DOWNGRADE_POLICY_NAMES)
        ),
        "upgrade-policies": sorted(
            set(UPGRADE_POLICY_NAMES) | set(EXTRA_UPGRADE_POLICY_NAMES)
        ),
    }
