"""Typed key-value configuration, in the spirit of Hadoop's Configuration.

The paper notes (Sec 3.3) that "the policies and their parameters are
tunable and their values can be set in the file system's configuration
file".  This class provides that surface: string keys with typed getters,
defaults, and validation.  Policies and placement components receive a
:class:`Configuration` and read their parameters from it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Mapping, Optional

from repro.common.errors import ConfigurationError
from repro.common.units import parse_bytes, parse_duration


class Configuration:
    """A mutable mapping of dotted string keys to values with typed access.

    Values may be stored as native types or strings; the typed getters
    coerce strings (``get_bytes`` accepts ``"128MB"``, ``get_duration``
    accepts ``"30min"``).
    """

    def __init__(self, values: Optional[Mapping[str, Any]] = None) -> None:
        self._values: Dict[str, Any] = dict(values or {})

    # -- mutation ---------------------------------------------------------
    def set(self, key: str, value: Any) -> None:
        """Set ``key`` to ``value`` (any type)."""
        self._values[key] = value

    def update(self, values: Mapping[str, Any]) -> None:
        """Bulk-set multiple keys."""
        self._values.update(values)

    def copy(self) -> "Configuration":
        """Return an independent copy of this configuration."""
        return Configuration(self._values)

    # -- untyped access ---------------------------------------------------
    def get(self, key: str, default: Any = None) -> Any:
        """Return the raw value for ``key`` or ``default``."""
        return self._values.get(key, default)

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __bool__(self) -> bool:
        # An empty configuration is still a real configuration: callers
        # share mutable instances, so truthiness must not depend on size.
        return True

    def as_dict(self) -> Dict[str, Any]:
        """Return a shallow copy of the underlying mapping."""
        return dict(self._values)

    # -- typed access -----------------------------------------------------
    def get_int(self, key: str, default: Optional[int] = None) -> int:
        return int(self._require(key, default))

    def get_float(self, key: str, default: Optional[float] = None) -> float:
        return float(self._require(key, default))

    def get_bool(self, key: str, default: Optional[bool] = None) -> bool:
        value = self._require(key, default)
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            lowered = value.strip().lower()
            if lowered in ("true", "yes", "1", "on"):
                return True
            if lowered in ("false", "no", "0", "off"):
                return False
        raise ConfigurationError(f"cannot interpret {value!r} as bool for key {key!r}")

    def get_str(self, key: str, default: Optional[str] = None) -> str:
        return str(self._require(key, default))

    def get_bytes(self, key: str, default: Optional[int] = None) -> int:
        """Return a byte count; string values like ``"64GB"`` are parsed."""
        value = self._require(key, default)
        if isinstance(value, str):
            return parse_bytes(value)
        return int(value)

    def get_duration(self, key: str, default: Optional[float] = None) -> float:
        """Return seconds; string values like ``"30min"`` are parsed."""
        value = self._require(key, default)
        if isinstance(value, str):
            return parse_duration(value)
        return float(value)

    def _require(self, key: str, default: Any) -> Any:
        if key in self._values:
            return self._values[key]
        if default is not None:
            return default
        raise ConfigurationError(f"missing required configuration key {key!r}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Configuration({self._values!r})"
