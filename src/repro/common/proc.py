"""Process introspection helpers shared by benchmarks and the sweep worker.

The benchmark harness records the *current* resident set size after each
run (``rss_mb``) so memory growth is attributable to the run that caused
it.  ``resource.ru_maxrss`` cannot do that — it is a process-lifetime
high-water mark, so one large early run would mask everything after it —
hence the ``/proc/self/status`` read with the lifetime peak kept only as
the non-Linux fallback.
"""

from __future__ import annotations

import resource


def current_rss_mb() -> float:
    """Current process RSS in MB (per-run signal, unlike ``ru_maxrss``)."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1]) / 1024.0
    except OSError:
        pass
    # Non-Linux fallback: lifetime peak is the best available.
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0
