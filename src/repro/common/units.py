"""Byte-size and duration units used throughout the simulator.

All sizes are plain integers in bytes and all times are floats in seconds.
The constants below exist so call sites read like the paper
(``128 * MB`` block size, ``6 * HOURS`` class window) rather than raw
magic numbers.
"""

from __future__ import annotations

import re

# --- byte sizes (binary, matching HDFS conventions) ---
KB = 1024
MB = 1024 * KB
GB = 1024 * MB
TB = 1024 * GB

# --- durations in seconds ---
SECONDS = 1.0
MINUTES = 60.0
HOURS = 3600.0
DAYS = 24 * HOURS

_BYTE_SUFFIXES = {
    "b": 1,
    "k": KB,
    "kb": KB,
    "m": MB,
    "mb": MB,
    "g": GB,
    "gb": GB,
    "t": TB,
    "tb": TB,
}

_DURATION_SUFFIXES = {
    "ms": 0.001,
    "s": SECONDS,
    "sec": SECONDS,
    "m": MINUTES,
    "min": MINUTES,
    "h": HOURS,
    "hr": HOURS,
    "d": DAYS,
}

_SIZE_RE = re.compile(r"^\s*([0-9]*\.?[0-9]+)\s*([a-zA-Z]*)\s*$")


def parse_bytes(text: str) -> int:
    """Parse a human-readable size like ``"128MB"`` or ``"4g"`` into bytes.

    A bare number is interpreted as bytes.  Raises ``ValueError`` on
    malformed input or unknown suffixes.
    """
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"malformed size: {text!r}")
    value, suffix = match.groups()
    multiplier = _BYTE_SUFFIXES.get(suffix.lower(), None) if suffix else 1
    if multiplier is None:
        raise ValueError(f"unknown size suffix {suffix!r} in {text!r}")
    return int(float(value) * multiplier)


def parse_duration(text: str) -> float:
    """Parse a human-readable duration like ``"30min"`` or ``"6h"``.

    A bare number is interpreted as seconds.
    """
    match = _SIZE_RE.match(text)
    if match is None:
        raise ValueError(f"malformed duration: {text!r}")
    value, suffix = match.groups()
    multiplier = _DURATION_SUFFIXES.get(suffix.lower(), None) if suffix else 1.0
    if multiplier is None:
        raise ValueError(f"unknown duration suffix {suffix!r} in {text!r}")
    return float(value) * multiplier


def format_bytes(num_bytes: float) -> str:
    """Render a byte count with the largest suffix that keeps 3 digits."""
    value = float(num_bytes)
    for suffix, size in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(value) >= size:
            return f"{value / size:.2f}{suffix}"
    return f"{int(value)}B"


def format_duration(seconds: float) -> str:
    """Render a duration as ``1h23m45s`` (dropping zero leading parts)."""
    total = float(seconds)
    sign = "-" if total < 0 else ""
    total = abs(total)
    hours, rem = divmod(total, HOURS)
    minutes, secs = divmod(rem, MINUTES)
    if hours >= 1:
        return f"{sign}{int(hours)}h{int(minutes):02d}m{secs:04.1f}s"
    if minutes >= 1:
        return f"{sign}{int(minutes)}m{secs:04.1f}s"
    return f"{sign}{secs:.2f}s"
