"""Shared utilities: units, errors, configuration, deterministic randomness.

These helpers are deliberately dependency-free (except numpy for the RNG
distributions) so every other subpackage can import them without cycles.
"""

from repro.common.config import Configuration
from repro.common.errors import (
    ConfigurationError,
    InsufficientSpaceError,
    InvalidPathError,
    PolicyError,
    ReproError,
    ReplicaNotFoundError,
    SimulationError,
)
from repro.common.units import (
    GB,
    KB,
    MB,
    TB,
    HOURS,
    MINUTES,
    SECONDS,
    format_bytes,
    format_duration,
    parse_bytes,
    parse_duration,
)

__all__ = [
    "Configuration",
    "ReproError",
    "ConfigurationError",
    "InvalidPathError",
    "InsufficientSpaceError",
    "ReplicaNotFoundError",
    "PolicyError",
    "SimulationError",
    "KB",
    "MB",
    "GB",
    "TB",
    "SECONDS",
    "MINUTES",
    "HOURS",
    "format_bytes",
    "format_duration",
    "parse_bytes",
    "parse_duration",
]
