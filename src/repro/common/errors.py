"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so
applications can catch a single base type at their boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A configuration key was missing, malformed, or out of range."""


class InvalidPathError(ReproError):
    """A file-system path was malformed or referenced a missing entry."""


class FileAlreadyExistsError(InvalidPathError):
    """Attempted to create a path that already exists."""


class NotADirectoryError_(InvalidPathError):
    """A path component that must be a directory is a file."""


class InsufficientSpaceError(ReproError):
    """A storage device or tier did not have room for a write."""


class ReplicaNotFoundError(ReproError):
    """A block replica lookup failed (wrong node/tier or already deleted)."""


class PolicyError(ReproError):
    """A downgrade/upgrade policy violated its contract."""


class SimulationError(ReproError):
    """The discrete-event simulator was driven incorrectly."""


class ModelNotReadyError(ReproError):
    """An ML model was asked for predictions before its warm-up finished."""
