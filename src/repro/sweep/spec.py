"""Declarative sweep specifications and their expansion into cells.

A :class:`SweepSpec` names a cross-product of experiment dimensions —
scenarios (or workload profiles) × parameter grids × policy pairs ×
tier hierarchies × I/O models × engine modes × seeds × scales — and
:meth:`SweepSpec.expand` turns it into a deterministic list of
:class:`Cell` objects.  Each cell is one end-to-end simulation run,
identified by a **content hash** of its canonical configuration: the
same cell always hashes to the same id, across processes, hosts, and
re-runs, which is what makes the on-disk results store
(:mod:`repro.sweep.store`) resumable and the parallel/serial
equivalence checkable.

Specs come from three places, all meeting in :func:`SweepSpec.from_dict`:

* python (build the dataclass directly),
* a JSON file (``repro sweep run spec.json``),
* the builtin registry (:func:`builtin_specs` — e.g. the CI ``smoke``
  spec and the full ``scenario-matrix``).

Scenario parameter grids apply to every listed scenario; keys a
scenario does not define are pruned for that scenario (and the
resulting duplicate cells deduplicated), so one grid can span scenarios
with different parameter sets without erroring.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

#: Row fields that vary with the host/process rather than the simulated
#: system: excluded from result fingerprints when checking that parallel
#: and serial executions of the same spec produced identical results.
HOST_KEYS = frozenset({"runtime_seconds", "events_per_second", "rss_mb"})


def cell_hash(config: Mapping[str, Any]) -> str:
    """Content hash identifying one cell (16 hex chars of SHA-256)."""
    canonical = json.dumps(config, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def fingerprint(row: Mapping[str, Any]) -> Dict[str, Any]:
    """The deterministic part of a result row (host metrics stripped)."""
    return {k: v for k, v in row.items() if k not in HOST_KEYS}


@dataclass(frozen=True)
class Cell:
    """One simulation run of a sweep: canonical config plus content id."""

    cell_id: str
    config: Mapping[str, Any]

    @property
    def label(self) -> str:
        """Human-readable identity used in progress output."""
        c = self.config
        policy = f"{c['downgrade'] or 'none'}-{c['upgrade'] or 'none'}"
        return (
            f"{c['workload']}/{c['io_model']}/{c['engine']}/{policy}"
            f"/s{c['seed']}"
        )


def make_cell(
    *,
    kind: str = "scenario",
    workload: str,
    params: Optional[Mapping[str, Any]] = None,
    scale: float = 1.0,
    seed: int = 42,
    system_seed: Optional[int] = None,
    placement: str = "octopus",
    downgrade: Optional[str] = None,
    upgrade: Optional[str] = None,
    workers: int = 11,
    tiers: str = "default3",
    io_model: str = "snapshot",
    engine: str = "reference",
    preset: Optional[str] = None,
    cache_mode: bool = False,
    tier_aware: bool = False,
    conf: Optional[Mapping[str, Any]] = None,
) -> Cell:
    """Build one canonical cell (every field present, hash-stable).

    ``kind`` selects the workload source: ``"scenario"`` builds a
    registered stream (``workload`` is the scenario name, ``params`` its
    parameter overrides); ``"profile"`` synthesizes a classic trace
    (``workload`` is a profile name like ``"FB"``); ``"compose"`` builds
    a composed stream (``params["spec"]`` is the composition spec, which
    is canonicalized here so equal workloads always land in the same
    cell — the per-leaf seeds/scales live inside the spec, and the
    cell-level ``seed``/``scale`` are pinned to their defaults).
    ``seed`` seeds the workload; ``system_seed`` (default:
    SystemConfig's own default) seeds the system side (scheduler
    tie-breaks, policy RNG).
    """
    if kind not in ("scenario", "profile", "compose"):
        raise ValueError(f"unknown cell kind {kind!r}")
    cell_params = dict(params or {})
    if kind == "compose":
        from repro.workload.compose import canonical_spec

        if set(cell_params) != {"spec"}:
            raise ValueError(
                "compose cells take params={'spec': <composition spec>}, "
                f"got keys {sorted(cell_params)}"
            )
        cell_params["spec"] = canonical_spec(cell_params["spec"])
        if seed != 42 or scale != 1.0:
            raise ValueError(
                "compose cells pin seed/scale to their defaults; set "
                "per-leaf seeds/scales inside the composition spec"
            )
    config = {
        "kind": kind,
        "workload": workload,
        "params": cell_params,
        "scale": scale,
        "seed": seed,
        "system_seed": system_seed,
        "placement": placement,
        "downgrade": downgrade,
        "upgrade": upgrade,
        "workers": workers,
        "tiers": tiers,
        "io_model": io_model,
        "engine": engine,
        "preset": preset,
        "cache_mode": cache_mode,
        "tier_aware": tier_aware,
        "conf": dict(conf or {}),
    }
    return Cell(cell_id=cell_hash(config), config=config)


def parse_policy(policy: Any) -> Tuple[Optional[str], Optional[str]]:
    """Normalize a policy spec to a ``(downgrade, upgrade)`` pair.

    Accepts ``"none"`` (no tiering manager), ``"lru:osa"`` style pairs,
    a bare name applied to both sides (``"xgb"``), or a mapping with
    ``downgrade``/``upgrade`` keys.
    """
    if isinstance(policy, Mapping):
        return policy.get("downgrade"), policy.get("upgrade")
    if not isinstance(policy, str):
        raise ValueError(f"policy must be a string or mapping, got {policy!r}")
    if policy == "none":
        return None, None
    if ":" in policy:
        downgrade, upgrade = policy.split(":", 1)
        return downgrade or None, upgrade or None
    return policy, policy


@dataclass(frozen=True)
class SweepSpec:
    """A declarative cross-product of simulation cells.

    Dimensions multiply: ``len(expand())`` is (scenarios + workloads) ×
    grid combinations × policies × tiers × io_models × engines × seeds
    × scales, minus duplicates created by per-scenario parameter
    pruning.
    """

    name: str
    #: Registered scenario names driven through the streaming path.
    scenarios: Tuple[str, ...] = ()
    #: Workload profile names (``FB``/``CMU``) replayed as classic traces.
    workloads: Tuple[str, ...] = ()
    #: Composition specs (see :mod:`repro.workload.compose`) run as
    #: composite cells.  Crossed with policies/tiers/io-models/engines
    #: but not seeds/scales — a composition carries its own per-leaf
    #: seeds and scales, so the cell-level ones stay at their defaults.
    composites: Tuple[Mapping[str, Any], ...] = ()
    #: Scenario parameter grid: key -> list of values (cross product).
    #: Keys a given scenario does not define are pruned for it.
    params: Mapping[str, Sequence[Any]] = field(default_factory=dict)
    #: Policy pairs (see :func:`parse_policy`).
    policies: Tuple[Any, ...] = ("lru:osa",)
    tiers: Tuple[str, ...] = ("default3",)
    io_models: Tuple[str, ...] = ("snapshot",)
    engines: Tuple[str, ...] = ("reference",)
    seeds: Tuple[int, ...] = (42,)
    scales: Tuple[float, ...] = (1.0,)
    workers: int = 11
    placement: str = "octopus"
    #: Preset selection per cell: None/"none" (disabled), "auto"
    #: (scenario-registered preset), or an explicit preset name.
    preset: Optional[str] = None
    #: Extra configuration keys applied to every cell.
    conf: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a sweep needs a name (it keys the results store)")
        if not self.scenarios and not self.workloads and not self.composites:
            raise ValueError(
                f"sweep {self.name!r} lists no scenarios, no workloads, "
                "and no composites"
            )

    @property
    def spec_id(self) -> str:
        """Content hash of the spec (manifest identity for resume checks)."""
        return cell_hash(self.to_dict())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready canonical form (round-trips via :meth:`from_dict`)."""
        from repro.workload.compose import canonical_spec

        return {
            "name": self.name,
            "scenarios": list(self.scenarios),
            "workloads": list(self.workloads),
            "composites": [canonical_spec(c) for c in self.composites],
            "params": {k: list(v) for k, v in sorted(self.params.items())},
            "policies": [
                p if isinstance(p, str) else dict(p) for p in self.policies
            ],
            "tiers": list(self.tiers),
            "io_models": list(self.io_models),
            "engines": list(self.engines),
            "seeds": list(self.seeds),
            "scales": list(self.scales),
            "workers": self.workers,
            "placement": self.placement,
            "preset": self.preset,
            "conf": dict(self.conf),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepSpec":
        """Build a spec from a plain mapping (JSON file contents)."""
        known = {
            "name",
            "scenarios",
            "workloads",
            "composites",
            "params",
            "policies",
            "tiers",
            "io_models",
            "engines",
            "seeds",
            "scales",
            "workers",
            "placement",
            "preset",
            "conf",
        }
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown sweep spec field(s) {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        if "name" not in data:
            raise ValueError("sweep spec needs a 'name'")
        kwargs: Dict[str, Any] = {"name": data["name"]}
        for key in ("scenarios", "workloads", "policies", "tiers",
                    "io_models", "engines", "seeds", "scales"):
            if key in data:
                kwargs[key] = tuple(data[key])
        for key in ("workers", "placement", "preset"):
            if key in data:
                kwargs[key] = data[key]
        if "composites" in data:
            kwargs["composites"] = tuple(dict(c) for c in data["composites"])
        if "params" in data:
            kwargs["params"] = {k: list(v) for k, v in data["params"].items()}
        if "conf" in data:
            kwargs["conf"] = dict(data["conf"])
        return cls(**kwargs)

    @classmethod
    def from_file(cls, path: str) -> "SweepSpec":
        """Load a JSON spec file."""
        return cls.from_dict(json.loads(Path(path).read_text()))

    def _param_grid(self, scenario: Optional[str]) -> List[Dict[str, Any]]:
        """Parameter combinations valid for ``scenario`` (pruned grid)."""
        if scenario is None or not self.params:
            return [{}]
        from repro.workload.scenarios import get_scenario

        known = set(get_scenario(scenario).defaults)
        keys = sorted(k for k in self.params if k in known)
        if not keys:
            return [{}]
        combos = itertools.product(*(self.params[k] for k in keys))
        return [dict(zip(keys, values)) for values in combos]

    def expand(self) -> List[Cell]:
        """The deterministic, deduplicated cell list of this spec.

        Iteration order is stable (spec order per dimension, sorted
        grid keys); pruning scenario-unknown grid keys can alias
        combinations to the same canonical cell, which dedupes by
        content hash keeping the first occurrence.
        """
        cells: List[Cell] = []
        seen = set()
        sources: List[Tuple[str, str]] = [
            ("scenario", name) for name in self.scenarios
        ] + [("profile", name) for name in self.workloads]
        for kind, workload in sources:
            grid = self._param_grid(workload if kind == "scenario" else None)
            for params, policy, tiers, io_model, engine, seed, scale in (
                itertools.product(
                    grid,
                    self.policies,
                    self.tiers,
                    self.io_models,
                    self.engines,
                    self.seeds,
                    self.scales,
                )
            ):
                downgrade, upgrade = parse_policy(policy)
                cell = make_cell(
                    kind=kind,
                    workload=workload,
                    params=params,
                    scale=scale,
                    seed=seed,
                    placement=self.placement,
                    downgrade=downgrade,
                    upgrade=upgrade,
                    workers=self.workers,
                    tiers=tiers,
                    io_model=io_model,
                    engine=engine,
                    preset=self.preset,
                    conf=self.conf,
                )
                if cell.cell_id in seen:
                    continue
                seen.add(cell.cell_id)
                cells.append(cell)
        if self.composites:
            from repro.workload.compose import canonical_spec, compose_name

            for composite in self.composites:
                spec = canonical_spec(composite)
                for policy, tiers, io_model, engine in itertools.product(
                    self.policies, self.tiers, self.io_models, self.engines
                ):
                    downgrade, upgrade = parse_policy(policy)
                    cell = make_cell(
                        kind="compose",
                        workload=compose_name(spec),
                        params={"spec": spec},
                        placement=self.placement,
                        downgrade=downgrade,
                        upgrade=upgrade,
                        workers=self.workers,
                        tiers=tiers,
                        io_model=io_model,
                        engine=engine,
                        preset=self.preset,
                        conf=self.conf,
                    )
                    if cell.cell_id in seen:
                        continue
                    seen.add(cell.cell_id)
                    cells.append(cell)
        return cells


def builtin_specs() -> Dict[str, SweepSpec]:
    """The named specs shipped with the toolkit.

    ``smoke``
        The CI-sized matrix (~12 cells): three fast generated scenarios
        under both I/O models and both engine modes at reduced scale.
    ``scenario-matrix``
        The full scenario benchmark matrix (every registered scenario ×
        both I/O models at full scale) — the reference point for the
        parallel-speedup measurement in ``BENCH_sweep.json``.
    """
    from repro.workload.scenarios import scenario_names

    return {
        "smoke": SweepSpec(
            name="smoke",
            scenarios=("mlscan", "oscillating", "pipeline"),
            policies=("lru:osa",),
            io_models=("snapshot", "fairshare"),
            engines=("reference", "fast"),
            scales=(0.15,),
        ),
        "scenario-matrix": SweepSpec(
            name="scenario-matrix",
            scenarios=tuple(scenario_names()),
            policies=("lru:osa",),
            io_models=("snapshot", "fairshare"),
        ),
    }
