"""Fleet-scale parallel sweeps: declarative specs, a multiprocess
orchestrator, and a resumable on-disk results store.

The paper's evaluation is a matrix — policies × workloads × cluster
scales × tuning knobs — and this package turns that matrix into cheap,
restartable compute: :class:`SweepSpec` (:mod:`repro.sweep.spec`)
expands cross-products into content-hashed cells,
:func:`run_sweep` (:mod:`repro.sweep.orchestrator`) fans them across
worker processes with crash isolation / per-cell timeouts / bounded
retry, :class:`SweepStore` (:mod:`repro.sweep.store`) persists each
cell atomically so ``--resume`` skips finished work, and
:mod:`repro.sweep.report` merges everything into one gateable report.

Entry points: ``repro sweep run|cells|report`` on the CLI; ``--jobs``
on ``benchmarks/bench_scenarios.py`` / ``bench_engine.py`` and on
``repro experiment scenarios`` / ``tuning-presets``.
"""

from repro.sweep.orchestrator import default_jobs, run_cells, run_sweep
from repro.sweep.report import merge_report, render_markdown, report_fingerprints
from repro.sweep.spec import (
    Cell,
    SweepSpec,
    builtin_specs,
    cell_hash,
    fingerprint,
    make_cell,
    parse_policy,
)
from repro.sweep.store import SweepStore
from repro.sweep.worker import run_cell

__all__ = [
    "Cell",
    "SweepSpec",
    "SweepStore",
    "builtin_specs",
    "cell_hash",
    "default_jobs",
    "fingerprint",
    "make_cell",
    "merge_report",
    "parse_policy",
    "render_markdown",
    "report_fingerprints",
    "run_cell",
    "run_cells",
    "run_sweep",
]
