"""Merged sweep reports: one JSON/markdown artifact per sweep.

:func:`merge_report` aggregates the per-cell payloads into a single
report shaped for ``benchmarks/check_regression.py``:

* ``cells`` is a **dict keyed by cell_id** (not a list), so the
  regression gate's flattener produces collision-free dotted keys even
  when two cells differ only in a scenario parameter;
* deterministic simulated metrics sit directly on each cell row and are
  exact-gated; host-dependent fields (``runtime_seconds``,
  ``events_per_second``, ``rss_mb``, ``attempts``, ``jobs``,
  ``cpu_count``) are wall-banded or informational (see the key sets in
  ``check_regression.py``);
* ``summary`` carries the sweep-level counts and the aggregate
  throughput.

:func:`render_markdown` renders the same data as a table for step
summaries and docs.
"""

from __future__ import annotations

import os
import platform
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.sweep.spec import SweepSpec, fingerprint


def merge_report(
    spec: SweepSpec,
    payloads: Sequence[Mapping[str, Any]],
    *,
    jobs: Optional[int] = None,
    sweep_wall_seconds: Optional[float] = None,
) -> Dict[str, Any]:
    """Fold cell payloads into the canonical sweep report."""
    cells: Dict[str, Any] = {}
    completed = failed = retried = 0
    wall_total = 0.0
    events_total = 0
    for payload in sorted(payloads, key=lambda p: p["cell_id"]):
        row: Dict[str, Any] = {
            "cell_id": payload["cell_id"],
            "status": payload["status"],
            "attempts": payload.get("attempts", 1),
        }
        if payload.get("attempts", 1) > 1:
            retried += 1
        if payload["status"] == "ok":
            completed += 1
            row.update(payload["row"])
            wall_total += payload["row"].get("runtime_seconds", 0.0)
            events_total += payload["row"].get("events_processed", 0)
        else:
            failed += 1
            row["error"] = payload.get("error")
        cells[payload["cell_id"]] = row
    report: Dict[str, Any] = {
        "benchmark": "sweep",
        "name": spec.name,
        "spec_id": spec.spec_id,
        "python": platform.python_version(),
        "cpu_count": os.cpu_count(),
        "jobs": jobs,
        "summary": {
            "cells": len(cells),
            "completed": completed,
            "failed": failed,
            "retried": retried,
            "events_total": events_total,
            "wall_seconds_total": round(wall_total, 3),
            "events_per_second_aggregate": (
                round(events_total / wall_total, 1) if wall_total > 0 else 0.0
            ),
        },
        "cells": cells,
    }
    if sweep_wall_seconds is not None:
        report["sweep_wall_seconds"] = round(sweep_wall_seconds, 3)
    return report


def report_fingerprints(report: Mapping[str, Any]) -> Dict[str, Any]:
    """Deterministic view of a report's cells (host metrics stripped).

    Two runs of the same spec — serial, parallel, resumed — must
    produce equal fingerprints; this is the equivalence the tests and
    ``bench_sweep.py`` gate exactly.
    """
    return {
        cell_id: fingerprint(row)
        for cell_id, row in report["cells"].items()
    }


def render_markdown(report: Mapping[str, Any]) -> str:
    """A compact markdown table of the merged report."""
    summary = report["summary"]
    lines: List[str] = [
        f"### Sweep `{report['name']}` "
        f"({summary['completed']}/{summary['cells']} cells ok, "
        f"{summary['failed']} failed, jobs={report.get('jobs')})",
        "",
        "| cell | workload | io | engine | jobs done | hit | task-h "
        "| events | wall s | status |",
        "|---|---|---|---|---|---|---|---|---|---|",
    ]
    for cell_id, row in report["cells"].items():
        workload = row.get("scenario") or row.get("workload") or "?"
        if row["status"] != "ok":
            lines.append(
                f"| `{cell_id}` | {workload} | | | | | | | | "
                f"**{row['status']}**: {row.get('error')} |"
            )
            continue
        lines.append(
            "| `{id}` | {wl} | {io} | {eng} | {jobs} | {hit:.3f} "
            "| {hours:.2f} | {events} | {wall} | ok |".format(
                id=cell_id,
                wl=workload,
                io=row["io_model"],
                eng=row["engine"],
                jobs=f"{row['jobs_finished']}/{row['jobs_submitted']}",
                hit=row["hit_ratio"],
                hours=row["task_hours"],
                events=row["events_processed"],
                wall=row["runtime_seconds"],
            )
        )
    lines.append("")
    return "\n".join(lines)
