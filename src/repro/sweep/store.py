"""Resumable on-disk results store for sweeps.

Layout (all JSON, human-inspectable)::

    <root>/<sweep name>/
        manifest.json          # spec + spec_id + expanded cell ids
        report.json            # last merged report (see repro.sweep.report)
        cells/<cell_id>.json   # one payload per finished cell

Every write is **atomic**: the payload lands in a same-directory temp
file first and is ``os.replace``-d into place, so a worker killed
mid-write (crash, SIGKILL, per-cell timeout) can never leave a
half-written payload that a later ``--resume`` would mistake for a
completed cell.  Unreadable or truncated payloads are treated as
missing for the same reason.

A cell payload records::

    {"cell_id": ..., "cell": {<canonical config>}, "status": "ok"|"failed",
     "attempts": N, "error": null | "...", "row": {<result row>} | null}

``--resume`` skips cells whose stored status is ``ok`` and re-runs
everything else; the manifest's ``spec_id`` must match the spec being
resumed (resuming a *different* spec into the same store is an error,
not silent cell mixing).
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Mapping, Optional, Sequence

from repro.sweep.spec import Cell, SweepSpec

MANIFEST = "manifest.json"
REPORT = "report.json"


def atomic_write_json(path: Path, payload: Mapping[str, Any]) -> None:
    """Write JSON atomically: temp file in the same directory + rename."""
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        prefix=f".{path.name}.", suffix=".tmp", dir=str(path.parent)
    )
    try:
        with os.fdopen(fd, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def read_json(path: Path) -> Optional[Dict[str, Any]]:
    """Read a JSON file; ``None`` when missing, truncated, or corrupt."""
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None


class SweepStore:
    """One sweep's results directory (``<root>/<name>``)."""

    def __init__(self, root: str, name: str) -> None:
        self.root = Path(root)
        self.name = name
        self.dir = self.root / name
        self.cells_dir = self.dir / "cells"

    # -- manifest ------------------------------------------------------------
    def init(self, spec: SweepSpec, cells: Sequence[Cell], resume: bool) -> None:
        """Prepare the store for a run.

        Fresh runs clear any previous cell payloads; resumed runs keep
        them but refuse to resume under a *different* spec (the cell
        ids would silently not line up).
        """
        manifest = read_json(self.dir / MANIFEST)
        if resume and manifest is not None:
            if manifest.get("spec_id") != spec.spec_id:
                raise ValueError(
                    f"store {self.dir} holds sweep spec "
                    f"{manifest.get('spec_id')} but --resume was asked for "
                    f"{spec.spec_id}; use a fresh store (or the same spec)"
                )
        elif not resume:
            self.clear_cells()
        atomic_write_json(
            self.dir / MANIFEST,
            {
                "name": spec.name,
                "spec_id": spec.spec_id,
                "spec": spec.to_dict(),
                "cells": [cell.cell_id for cell in cells],
            },
        )

    def manifest(self) -> Optional[Dict[str, Any]]:
        """The stored manifest, or ``None`` for an uninitialized store."""
        return read_json(self.dir / MANIFEST)

    def clear_cells(self) -> None:
        """Delete every stored cell payload (fresh-run semantics)."""
        if self.cells_dir.is_dir():
            for path in self.cells_dir.glob("*.json"):
                try:
                    path.unlink()
                except OSError:
                    pass

    # -- cells ---------------------------------------------------------------
    def cell_path(self, cell_id: str) -> Path:
        """Path of one cell's payload file."""
        return self.cells_dir / f"{cell_id}.json"

    def write_cell(self, payload: Mapping[str, Any]) -> None:
        """Atomically persist one cell payload (keyed by its cell_id)."""
        atomic_write_json(self.cell_path(payload["cell_id"]), payload)

    def read_cell(self, cell_id: str) -> Optional[Dict[str, Any]]:
        """One cell's payload, or ``None`` when absent/unreadable."""
        return read_json(self.cell_path(cell_id))

    def iter_cells(self) -> Iterator[Dict[str, Any]]:
        """Every readable cell payload, in cell_id order."""
        if not self.cells_dir.is_dir():
            return
        for path in sorted(self.cells_dir.glob("*.json")):
            payload = read_json(path)
            if payload is not None:
                yield payload

    def completed_ids(self) -> set:
        """Cell ids whose stored payload says ``status == "ok"``."""
        return {
            payload["cell_id"]
            for payload in self.iter_cells()
            if payload.get("status") == "ok"
        }

    # -- report --------------------------------------------------------------
    def write_report(self, report: Mapping[str, Any]) -> Path:
        """Persist the merged report next to the cells; returns its path."""
        path = self.dir / REPORT
        atomic_write_json(path, report)
        return path
