"""Multi-core sweep execution: crash isolation, timeouts, retry, resume.

The orchestrator fans cells across **one worker process per cell**
(bounded to ``--jobs`` concurrent processes) rather than a long-lived
pool.  That choice buys the three properties a resumable sweep needs
and a shared ``ProcessPoolExecutor`` cannot give without heroics:

* **crash isolation** — a worker dying (segfault, OOM-kill, the test
  suite's SIGKILL hook) takes down exactly one cell; there is no shared
  pool to break, nothing to rebuild, and the remaining cells are
  untouched;
* **per-cell timeouts** — the parent SIGKILLs exactly the over-deadline
  process; a pooled future cannot be cancelled once running;
* **store-as-result-channel** — each child writes its payload to the
  on-disk store atomically and exits; the parent reads results from
  disk, so a severed pipe can never lose a completed cell, and resume
  comes for free (the store *is* the ledger).

Per-cell interpreter startup (~0.1–0.4 s) is the price; sweep cells are
whole-system simulations that run for seconds to minutes, so the
overhead is noise at exactly the scales where parallelism matters.

Determinism: a cell's simulated metrics are a pure function of its
canonical config (seeded RNG end to end), so parallel and serial runs
of the same spec produce bit-identical rows — the test suite and
``benchmarks/bench_sweep.py`` gate this via
:func:`repro.sweep.spec.fingerprint`, which strips only the
host-dependent wall/throughput/RSS fields.
"""

from __future__ import annotations

import multiprocessing
import os
import tempfile
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.sweep.spec import Cell, SweepSpec
from repro.sweep.store import SweepStore
from repro.sweep.worker import child_main, execute_cell

#: Parent poll interval while waiting on worker processes (seconds).
_POLL_SECONDS = 0.02

Progress = Optional[Callable[[str], None]]


def default_jobs() -> int:
    """The default worker count: every core the scheduler gives us."""
    try:
        return len(os.sched_getaffinity(0))
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _failed_payload(cell: Cell, attempts: int, error: str) -> Dict[str, Any]:
    """The payload recorded for a cell that exhausted its retry budget."""
    return {
        "cell_id": cell.cell_id,
        "cell": dict(cell.config),
        "status": "failed",
        "attempts": attempts,
        "error": error,
        "row": None,
    }


def _run_serial(
    cells: Sequence[Cell],
    store: SweepStore,
    retries: int,
    progress: Progress,
) -> None:
    """The in-process path (``--jobs 1``): the parallel reference point.

    Exceptions are caught and retried like any other cell failure, but
    there is no process boundary, so the SIGKILL/hang crash hooks and
    the per-cell timeout only apply to multi-process runs.
    """
    for cell in cells:
        for attempt in range(1, retries + 2):
            payload = execute_cell(cell, store)
            payload["attempts"] = attempt
            store.write_cell(payload)
            if payload["status"] == "ok":
                break
        if progress:
            progress(f"{payload['status']:>6} {cell.cell_id} {cell.label}")


def _run_parallel(
    cells: Sequence[Cell],
    store: SweepStore,
    jobs: int,
    timeout: Optional[float],
    retries: int,
    progress: Progress,
) -> None:
    """Fan cells across up to ``jobs`` worker processes."""
    ctx = multiprocessing.get_context()
    queue = deque((cell, 1) for cell in cells)
    live: Dict[Any, tuple] = {}

    def finish(cell: Cell, attempt: int, error: str) -> None:
        """Handle one worker exit: success, retry, or final failure."""
        payload = store.read_cell(cell.cell_id)
        if payload is not None and payload.get("status") == "ok":
            payload["attempts"] = attempt
            store.write_cell(payload)
            if progress:
                progress(f"    ok {cell.cell_id} {cell.label}")
            return
        if payload is not None and payload.get("error"):
            error = payload["error"]
        if attempt <= retries:
            queue.append((cell, attempt + 1))
            if progress:
                progress(
                    f" retry {cell.cell_id} {cell.label} "
                    f"(attempt {attempt} failed: {error})"
                )
            return
        store.write_cell(_failed_payload(cell, attempt, error))
        if progress:
            progress(f"failed {cell.cell_id} {cell.label} ({error})")

    while queue or live:
        while queue and len(live) < jobs:
            cell, attempt = queue.popleft()
            proc = ctx.Process(
                target=child_main,
                args=(dict(cell.config), str(store.root), store.name),
                daemon=True,
            )
            proc.start()
            live[proc] = (cell, attempt, time.monotonic())
        time.sleep(_POLL_SECONDS)
        for proc in list(live):
            cell, attempt, started = live[proc]
            if proc.is_alive():
                if timeout is not None and time.monotonic() - started > timeout:
                    proc.kill()
                    proc.join()
                    del live[proc]
                    finish(cell, attempt, f"timeout after {timeout:g}s")
                continue
            proc.join()
            del live[proc]
            exit_note = (
                "worker exited 1 (cell raised)"
                if proc.exitcode == 1
                else f"worker died (exit code {proc.exitcode})"
            )
            finish(cell, attempt, exit_note)
            proc.close()


def run_cells(
    cells: Sequence[Cell],
    store: SweepStore,
    *,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    resume: bool = False,
    progress: Progress = None,
) -> List[Dict[str, Any]]:
    """Execute ``cells`` into ``store``; returns their payloads in order.

    ``resume=True`` skips cells the store already holds as ``ok`` (the
    caller is responsible for having validated the manifest via
    ``store.init``).  ``retries`` bounds *re*-runs after a failure
    (``retries=1`` means at most two attempts per cell).
    """
    jobs = jobs or default_jobs()
    done = store.completed_ids() if resume else set()
    pending = [cell for cell in cells if cell.cell_id not in done]
    if progress:
        progress(
            f"sweep {store.name}: {len(cells)} cell(s), "
            f"reusing {len(cells) - len(pending)}, running {len(pending)} "
            f"(jobs={jobs})"
        )
    if pending:
        if jobs == 1:
            _run_serial(pending, store, retries, progress)
        else:
            _run_parallel(pending, store, jobs, timeout, retries, progress)
    payloads = []
    for cell in cells:
        payload = store.read_cell(cell.cell_id)
        if payload is None:
            payload = _failed_payload(cell, 0, "no payload recorded")
        payloads.append(payload)
    return payloads


def run_sweep(
    spec: SweepSpec,
    *,
    store_root: Optional[str] = None,
    jobs: Optional[int] = None,
    timeout: Optional[float] = None,
    retries: int = 1,
    resume: bool = False,
    progress: Progress = None,
) -> Dict[str, Any]:
    """Expand ``spec``, execute every cell, and return the merged report.

    With ``store_root=None`` the run uses an ephemeral temporary store
    (no resume, nothing left behind) — the mode the ``--jobs`` paths of
    the benchmark scripts and experiment sweeps use.  The merged report
    is also persisted as ``report.json`` inside persistent stores.
    """
    from repro.sweep.report import merge_report

    cells = spec.expand()
    wall_start = time.perf_counter()
    if store_root is None:
        with tempfile.TemporaryDirectory(prefix="repro-sweep-") as tmp:
            store = SweepStore(tmp, spec.name)
            store.init(spec, cells, resume=False)
            payloads = run_cells(
                cells,
                store,
                jobs=jobs,
                timeout=timeout,
                retries=retries,
                resume=False,
                progress=progress,
            )
            return merge_report(
                spec,
                payloads,
                jobs=jobs or default_jobs(),
                sweep_wall_seconds=time.perf_counter() - wall_start,
            )
    store = SweepStore(store_root, spec.name)
    store.init(spec, cells, resume=resume)
    payloads = run_cells(
        cells,
        store,
        jobs=jobs,
        timeout=timeout,
        retries=retries,
        resume=resume,
        progress=progress,
    )
    report = merge_report(
        spec,
        payloads,
        jobs=jobs or default_jobs(),
        sweep_wall_seconds=time.perf_counter() - wall_start,
    )
    store.write_report(report)
    return report
