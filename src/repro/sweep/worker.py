"""Picklable per-cell entry point: one canonical cell config in, one row out.

:func:`run_cell` is the single place a sweep cell becomes a simulation:
it builds the workload (scenario stream or synthesized profile trace),
assembles the :class:`~repro.engine.runner.SystemConfig`, runs the
system end to end, and returns a flat JSON-ready **row** — identity
fields plus every deterministic simulated metric the benchmark scripts
report, plus the host-dependent wall/throughput/RSS measurements
(which :data:`repro.sweep.spec.HOST_KEYS` excludes from equivalence
fingerprints).

Because the function is module-level and takes only a plain dict, it
pickles under every multiprocessing start method; the orchestrator's
child processes call :func:`child_main`, which additionally writes the
payload into the store so the parent never has to trust a pipe that a
dying worker might sever mid-message.

Test-only crash hooks (all under reserved ``sweep.*`` conf keys, which
are stripped before the system sees the configuration) let the test
suite kill workers mid-sweep deterministically:

``sweep.test_crash``
    ``"raise"`` (ordinary exception), ``"sigkill"`` (the process dies
    without cleanup — the mid-write/mid-cell crash case), or ``"hang"``
    (sleep forever — exercises the per-cell timeout).
``sweep.test_crash_seed``
    Restrict the hook to cells with this workload seed.
``sweep.test_crash_once_dir``
    Fire at most once per cell: a marker file named after the cell is
    created on the first execution, and later attempts run normally —
    the transient-failure / bounded-retry / resume-recovery case.
``sweep.test_touch_dir``
    Record every execution (marker file per attempt), letting tests
    assert exactly which cells re-ran after ``--resume``.
"""

from __future__ import annotations

import os
import signal
import time
from pathlib import Path
from typing import Any, Dict, Mapping

from repro.common.proc import current_rss_mb

#: Reserved configuration namespace: stripped from the cell's ``conf``
#: before it reaches SystemConfig.
SWEEP_CONF_PREFIX = "sweep."


def _maybe_crash(cell: Mapping[str, Any], conf: Mapping[str, Any]) -> None:
    """Fire the test-only crash hooks, if armed for this cell."""
    hook = conf.get("sweep.test_crash")
    touch_dir = conf.get("sweep.test_touch_dir")
    cell_id = cell_id_of(cell)
    if touch_dir:
        stamp = Path(touch_dir) / f"{cell_id}.{os.getpid()}.{time.time_ns()}"
        stamp.touch()
    if not hook:
        return
    seed_selector = conf.get("sweep.test_crash_seed")
    if seed_selector is not None and cell["seed"] != seed_selector:
        return
    once_dir = conf.get("sweep.test_crash_once_dir")
    if once_dir:
        marker = Path(once_dir) / cell_id
        if marker.exists():
            return
        marker.parent.mkdir(parents=True, exist_ok=True)
        marker.touch()
    if hook == "raise":
        raise RuntimeError(f"sweep.test_crash: injected failure in {cell_id}")
    if hook == "sigkill":
        os.kill(os.getpid(), signal.SIGKILL)
    if hook == "hang":
        time.sleep(3600.0)
        raise RuntimeError("sweep.test_crash: hang hook was not killed")
    raise ValueError(f"unknown sweep.test_crash hook {hook!r}")


def cell_id_of(cell: Mapping[str, Any]) -> str:
    """Recompute the content hash of a canonical cell config."""
    from repro.sweep.spec import cell_hash

    return cell_hash(cell)


def _build_workload(cell: Mapping[str, Any]):
    """The cell's workload: scenario stream, composition, or trace."""
    if cell["kind"] == "scenario":
        from repro.workload.scenarios import build_scenario

        return build_scenario(
            cell["workload"],
            seed=cell["seed"],
            scale=cell["scale"],
            **cell["params"],
        )
    if cell["kind"] == "compose":
        from repro.workload.compose import build_compose

        # Per-leaf seeds/scales live inside the (canonical) spec; the
        # cell-level seed/scale are pinned by make_cell.
        return build_compose(cell["params"]["spec"], name=cell["workload"])
    from repro.workload.profiles import PROFILES, scaled_profile
    from repro.workload.synthesis import synthesize_trace

    profile = scaled_profile(PROFILES[cell["workload"]], cell["scale"])
    return synthesize_trace(profile, seed=cell["seed"])


def _system_config(cell: Mapping[str, Any], conf: Dict[str, Any]):
    """Map the canonical cell onto a SystemConfig."""
    from repro.engine.runner import SystemConfig

    preset = cell.get("preset")
    kwargs: Dict[str, Any] = dict(
        label=f"{cell['workload']}/{cell['io_model']}",
        placement=cell["placement"],
        downgrade=cell["downgrade"],
        upgrade=cell["upgrade"],
        workers=cell["workers"],
        tiers=cell["tiers"],
        io_model=cell["io_model"],
        engine_mode=cell["engine"],
        cache_mode=cell["cache_mode"],
        tier_aware_scheduler=cell["tier_aware"],
        preset=preset,
        conf=conf,
    )
    if cell.get("system_seed") is not None:
        kwargs["seed"] = cell["system_seed"]
    config = SystemConfig(**kwargs)
    if preset == "auto" and cell["kind"] == "scenario":
        # Auto preset selection keys off the scenario name, exactly as
        # `repro scenario run` sets it.
        config.scenario = cell["workload"]
    return config


def run_cell(cell: Mapping[str, Any]) -> Dict[str, Any]:
    """Execute one cell and return its flat result row.

    The row carries the cell's identity fields (so reports key and
    group without re-reading the spec), every deterministic simulated
    metric the benchmark scripts use, and the host-dependent
    ``runtime_seconds`` / ``events_per_second`` / ``rss_mb`` triple.
    """
    conf = dict(cell.get("conf") or {})
    _maybe_crash(cell, conf)
    system_conf = {
        k: v for k, v in conf.items() if not k.startswith(SWEEP_CONF_PREFIX)
    }
    from repro.engine.runner import WorkloadRunner

    workload = _build_workload(cell)
    config = _system_config(cell, system_conf)
    runner = WorkloadRunner(workload, config)
    start = time.perf_counter()
    result = runner.run()
    wall = time.perf_counter() - start
    sim = runner.sim
    events = sim.events_processed
    row: Dict[str, Any] = {
        # identity
        "kind": cell["kind"],
        ("scenario" if cell["kind"] == "scenario" else "workload"): (
            cell["workload"]
        ),
        "params": dict(cell["params"]),
        "engine": cell["engine"],
        "tiers": cell["tiers"],
        "io_model": cell["io_model"],
        "workers": cell["workers"],
        "scale": cell["scale"],
        "seed": cell["seed"],
        "placement": cell["placement"],
        "downgrade": cell["downgrade"],
        "upgrade": cell["upgrade"],
        # simulated results (deterministic, exact-gated)
        "jobs_submitted": result.jobs_submitted,
        "jobs_finished": result.jobs_finished,
        "deletions_applied": result.deletions_applied,
        "hit_ratio": round(result.metrics.hit_ratio(), 6),
        "byte_hit_ratio": round(result.metrics.byte_hit_ratio(), 6),
        "task_hours": round(result.metrics.total_task_seconds() / 3600.0, 4),
        "transfers_committed": result.transfers_committed,
        "events_processed": events,
        "events_cancelled": sim.events_cancelled,
        "heap_compactions": sim.heap_compactions,
        "max_heap_size": sim.max_heap_size,
        "live_pending_at_end": sim.pending,
        "ticks_skipped": (
            runner.manager.ticks_skipped if runner.manager is not None else 0
        ),
        "pump_lead_mean_seconds": round(result.pump_lead_mean_seconds, 3),
        "pump_lead_max_seconds": round(result.pump_lead_max_seconds, 3),
        "pump_late_events": result.pump_late_events,
        "queue_delay_seconds": round(
            sum(result.queue_delay_by_tier.values()), 3
        ),
        # host measurements (informational; never fingerprinted)
        "runtime_seconds": round(wall, 3),
        "events_per_second": round(events / wall, 1) if wall > 0 else 0.0,
        "rss_mb": round(current_rss_mb(), 1),
    }
    timeseries = runner.timeseries
    if timeseries is not None:
        # Sampled cells only: absent keys keep unsampled sweeps on the
        # exact row schema the committed benchmark baselines gate on.
        row["ts_samples"] = timeseries.samples
        row["ts_peak_inflight"] = (
            max(timeseries.inflight) if timeseries.inflight else 0
        )
        for tier_name, peak in sorted(timeseries.peak_utilization().items()):
            row[f"ts_peak_util_{tier_name}"] = peak
    io_stats = result.io_stats
    if io_stats.get("model") == "fairshare":
        row["flow_recomputes"] = io_stats["recomputes"]
        row["max_component"] = io_stats["max_component"]
        row["vector_solves"] = io_stats["vector_solves"]
        row["peak_concurrency"] = io_stats["peak_concurrency"]
    return row


def child_main(cell: Mapping[str, Any], store_root: str, name: str) -> int:
    """Subprocess entry: run the cell and persist its payload atomically.

    The store is the result channel — the parent reads the payload back
    from disk after the child exits, so a worker that dies mid-cell
    (crash, SIGKILL, timeout) simply leaves no payload behind and the
    orchestrator charges one failed attempt to that cell alone.
    """
    from repro.sweep.store import SweepStore

    store = SweepStore(store_root, name)
    cell_id = cell_id_of(cell)
    try:
        row = run_cell(cell)
    except Exception as exc:  # deliberate: the payload carries the error
        store.write_cell(
            {
                "cell_id": cell_id,
                "cell": dict(cell),
                "status": "failed",
                "attempts": 1,
                "error": f"{type(exc).__name__}: {exc}",
                "row": None,
            }
        )
        return 1
    store.write_cell(
        {
            "cell_id": cell_id,
            "cell": dict(cell),
            "status": "ok",
            "attempts": 1,
            "error": None,
            "row": row,
        }
    )
    return 0


def execute_cell(cell, store) -> Dict[str, Any]:
    """In-process execution (the serial path): run, persist, return payload."""
    try:
        row = run_cell(cell.config)
    except Exception as exc:
        payload = {
            "cell_id": cell.cell_id,
            "cell": dict(cell.config),
            "status": "failed",
            "attempts": 1,
            "error": f"{type(exc).__name__}: {exc}",
            "row": None,
        }
    else:
        payload = {
            "cell_id": cell.cell_id,
            "cell": dict(cell.config),
            "status": "ok",
            "attempts": 1,
            "error": None,
            "row": row,
        }
    store.write_cell(payload)
    return payload
