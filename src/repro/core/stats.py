"""Per-file access statistics (paper Sec 4.1 and 7.7).

For every file the system keeps its size, creation time, and the last
``k`` access timestamps (default 12) — at most ~956 bytes per file in the
paper's accounting.  These statistics feed both the rule-based policies
(recency/frequency) and the ML feature pipeline.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional

from repro.dfs.namespace import INodeFile


class FileStatistics:
    """Recency/frequency/size statistics for one file."""

    __slots__ = (
        "file",
        "size",
        "creation_time",
        "access_times",
        "tier_levels",
        "total_accesses",
    )

    def __init__(self, file: INodeFile, k: int = 12) -> None:
        self.file = file
        self.size = file.size
        self.creation_time = file.creation_time
        self.access_times: Deque[float] = deque(maxlen=k)
        #: Tier level of the file at each tracked access (recorded before
        #: the policies react to that access), aligned with
        #: ``access_times``.  None when the level was not captured.  Lets
        #: the ML feature pipeline use a *historically consistent* tier
        #: feature instead of leaking the current tier into training
        #: points whose reference time lies in the past.
        self.tier_levels: Deque[Optional[int]] = deque(maxlen=k)
        self.total_accesses = 0

    @property
    def inode_id(self) -> int:
        return self.file.inode_id

    @property
    def last_access_time(self) -> Optional[float]:
        return self.access_times[-1] if self.access_times else None

    @property
    def last_access_or_creation(self) -> float:
        """Recency anchor: last access, or creation for never-read files."""
        return self.access_times[-1] if self.access_times else self.creation_time

    def record_access(
        self, timestamp: float, tier_level: Optional[int] = None
    ) -> None:
        self.access_times.append(timestamp)
        self.tier_levels.append(tier_level)
        self.total_accesses += 1

    def tier_level_at(self, reference: float) -> Optional[int]:
        """Tier level recorded at the last access at or before ``reference``.

        Temporally safe for training-point generation: levels are
        captured before the policies react to the access, so a level at
        ``t <= reference`` carries no information from the label window
        after ``reference``.
        """
        result: Optional[int] = None
        for t, level in zip(self.access_times, self.tier_levels):
            if t > reference:
                break
            if level is not None:
                result = level
        return result

    def idle_time(self, now: float) -> float:
        """Seconds since the last access (or creation)."""
        return now - self.last_access_or_creation

    def age(self, now: float) -> float:
        return now - self.creation_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FileStatistics({self.file.path}, n={self.total_accesses}, "
            f"last={self.last_access_time})"
        )


class StatisticsRegistry:
    """All per-file statistics, keyed by inode id."""

    def __init__(self, k: int = 12) -> None:
        self.k = k
        self._stats: Dict[int, FileStatistics] = {}

    def on_create(self, file: INodeFile) -> FileStatistics:
        stats = FileStatistics(file, k=self.k)
        self._stats[file.inode_id] = stats
        return stats

    def on_access(
        self,
        file: INodeFile,
        timestamp: float,
        tier_level: Optional[int] = None,
    ) -> FileStatistics:
        stats = self._stats.get(file.inode_id)
        if stats is None:
            # Files created before the registry attached still get tracked.
            stats = self.on_create(file)
        stats.record_access(timestamp, tier_level)
        return stats

    def on_delete(self, file: INodeFile) -> None:
        self._stats.pop(file.inode_id, None)

    def get(self, file: INodeFile) -> Optional[FileStatistics]:
        return self._stats.get(file.inode_id)

    def get_or_create(self, file: INodeFile) -> FileStatistics:
        stats = self._stats.get(file.inode_id)
        return stats if stats is not None else self.on_create(file)

    def all(self) -> List[FileStatistics]:
        return list(self._stats.values())

    def __len__(self) -> int:
        return len(self._stats)

    def __contains__(self, file: INodeFile) -> bool:
        return file.inode_id in self._stats

    # -- ordering helpers used by the policies -------------------------------
    def lru_order(self, files: Iterable[INodeFile]) -> List[INodeFile]:
        """Sort files least-recently-used first."""
        return sorted(
            files,
            key=lambda f: (
                self.get_or_create(f).last_access_or_creation,
                f.inode_id,
            ),
        )

    def mru_order(self, files: Iterable[INodeFile]) -> List[INodeFile]:
        """Sort files most-recently-used first."""
        return list(reversed(self.lru_order(files)))

    def estimated_bytes_per_file(self) -> int:
        """Metadata footprint estimate mirroring Sec 7.7's 956 bytes."""
        # k access times (8 bytes each) + size/creation/counters and the
        # dict/deque overhead approximated at 64 bytes.
        return self.k * 8 + 64
