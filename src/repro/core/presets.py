"""Scenario-aware policy presets: tuned operating points per load shape.

The paper's thresholds (Sec 5.1: start downgrading at 90% tier
utilization, stop at 85%) and retraining cadence were chosen for the two
production-derived traces.  The scenario library
(:mod:`repro.workload.scenarios`) deliberately stresses the policies
with very different shapes — flash crowds want free headroom *before*
the spike, scan-heavy ML churns whatever the downgrade loop frees,
phase-shifting hot sets punish long memories — so each registered
scenario gets a preset: a small configuration overlay tuning the
downgrade thresholds, the XGB retrain cadence (``trainer.interval``),
and the recency half-life where it matters.

Selection is automatic: :class:`~repro.engine.runner.SystemConfig`
applies the preset matching its ``scenario`` name when ``preset`` is
``"auto"`` (the default).  Explicit ``conf`` keys always win over preset
keys, a preset name forces a specific preset regardless of scenario, and
``None``/``"none"`` disables presets entirely — configurations that
never set ``scenario`` (every pre-preset caller) resolve no preset and
reproduce bit-identically.

The ``tuning-presets`` experiment
(:mod:`repro.experiments.preset_tuning`) records the preset-vs-default
delta per scenario; ``docs/scenarios.md`` tabulates the values.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from repro.common.units import HOURS, MINUTES


@dataclass(frozen=True)
class PolicyPreset:
    """One named configuration overlay (see :mod:`repro.common.config`)."""

    name: str
    description: str
    conf: Mapping[str, Any] = field(default_factory=dict)


PRESETS: Dict[str, PolicyPreset] = {}


def register_preset(name: str, description: str, **conf: Any) -> PolicyPreset:
    """Register a preset under ``name`` (usually a scenario name)."""
    preset = PolicyPreset(name=name, description=description, conf=conf)
    PRESETS[name] = preset
    return preset


def preset_names() -> List[str]:
    return sorted(PRESETS)


def get_preset(name: str) -> PolicyPreset:
    if name not in PRESETS:
        raise ValueError(f"unknown preset {name!r}; available: {preset_names()}")
    return PRESETS[name]


def preset_for_scenario(scenario: Optional[str]) -> Optional[PolicyPreset]:
    """The preset auto-selected for a scenario name (None when unset or
    no preset is registered under that name)."""
    if scenario is None:
        return None
    return PRESETS.get(scenario)


# -- the per-scenario operating points ---------------------------------------
register_preset(
    "fb",
    "The paper's tuned operating point: the defaults were chosen on this "
    "trace, so the preset pins them explicitly.",
    **{
        "downgrade.start_threshold": 0.90,
        "downgrade.stop_threshold": 0.85,
        "trainer.interval": 5 * MINUTES,
    },
)

register_preset(
    "cmu",
    "Cyclic scientific re-reads: more headroom between threshold crossings "
    "and a slower retrain cadence (the access pattern drifts slowly).",
    **{
        "downgrade.start_threshold": 0.85,
        "downgrade.stop_threshold": 0.75,
        "trainer.interval": 10 * MINUTES,
    },
)

register_preset(
    "diurnal",
    "Day/night cycles: clean premium tiers aggressively off-peak and keep "
    "the recency half-life near the demand swing period.",
    **{
        "downgrade.start_threshold": 0.85,
        "downgrade.stop_threshold": 0.70,
        "trainer.interval": 10 * MINUTES,
        "lrfu.half_life": 2 * HOURS,
    },
)

register_preset(
    "flashcrowd",
    "Hot-set spikes: keep free headroom ahead of the crowd and retrain "
    "fast enough to catch a 20-minute spike.",
    **{
        "downgrade.start_threshold": 0.80,
        "downgrade.stop_threshold": 0.70,
        "trainer.interval": 2 * MINUTES,
        "xgb.upgrade_window": 15 * MINUTES,
    },
)

register_preset(
    "mlscan",
    "Epoch-scale scans: avoid churn (scans evict everything anyway), "
    "retrain slowly, and size the downgrade window to the epoch gap.",
    **{
        "downgrade.start_threshold": 0.95,
        "downgrade.stop_threshold": 0.90,
        "trainer.interval": 15 * MINUTES,
        "xgb.downgrade_window": 2 * HOURS,
    },
)

register_preset(
    "oscillating",
    "Phase-shifting hot set: forget fast (short half-life), retrain fast, "
    "and free space eagerly at each phase boundary.",
    **{
        "downgrade.start_threshold": 0.85,
        "downgrade.stop_threshold": 0.75,
        "trainer.interval": 2 * MINUTES,
        "lrfu.half_life": 30 * MINUTES,
    },
)

register_preset(
    "pipeline",
    "Dataset lifecycle: retirement is predictable, so downgrade early and "
    "deep — cooled datasets never come back.",
    **{
        "downgrade.start_threshold": 0.80,
        "downgrade.stop_threshold": 0.65,
        "trainer.interval": 5 * MINUTES,
    },
)

register_preset(
    "static",
    "Stationary skewed mix: the hot set never moves, so pin it high with "
    "generous headroom and retrain rarely (nothing drifts).",
    **{
        "downgrade.start_threshold": 0.90,
        "downgrade.stop_threshold": 0.80,
        "trainer.interval": 15 * MINUTES,
    },
)

register_preset(
    "dynamic",
    "Drifting hot region: the locality moves every phase, so forget fast "
    "and retrain on a cadence shorter than the drift.",
    **{
        "downgrade.start_threshold": 0.80,
        "downgrade.stop_threshold": 0.70,
        "trainer.interval": 2 * MINUTES,
        "lrfu.half_life": 30 * MINUTES,
    },
)

register_preset(
    "phaseshift",
    "Hard periodic working-set swaps: history across a boundary is "
    "anti-signal — keep the shortest memory and free space eagerly.",
    **{
        "downgrade.start_threshold": 0.85,
        "downgrade.stop_threshold": 0.70,
        "trainer.interval": 2 * MINUTES,
        "lrfu.half_life": 15 * MINUTES,
    },
)
