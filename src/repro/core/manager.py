"""The Replication Manager: orchestrates downgrades and upgrades.

Registered as a :class:`FileSystemListener` on the Master, the manager
(paper Fig 3):

* maintains the per-file statistics registry and any policy bookkeeping
  (weight trackers, model trainer) on every file event;
* runs Algorithm 1 (the downgrade loop) whenever data lands on a tier;
* runs Algorithm 2 (the upgrade loop) on every access, and periodically
  for proactive policies;
* delegates the actual data movement to the Replication Monitor.
"""

from __future__ import annotations

from typing import Optional, Set

from repro.cluster.hardware import TierSpec
from repro.common.config import Configuration
from repro.dfs.listeners import FileSystemListener
from repro.dfs.master import Master
from repro.dfs.namespace import INodeFile
from repro.core.context import PolicyContext
from repro.core.monitor import ReplicationMonitor
from repro.core.policy import DowngradePolicy, UpgradePolicy
from repro.core.stats import StatisticsRegistry
from repro.core.training import AccessModelTrainer
from repro.core.weights import ExdWeights, LrfuWeights
from repro.sim.simulator import PeriodicTimer, Simulator


class ReplicationManager(FileSystemListener):
    """Drives the pluggable downgrade/upgrade policies."""

    #: Optional decision tracer (:class:`repro.obs.trace.Tracer`),
    #: installed by the runner when ``obs.trace`` is set; ``None`` keeps
    #: the policy loops free of any tracing work.
    tracer = None

    def __init__(
        self,
        master: Master,
        sim: Simulator,
        conf: Optional[Configuration] = None,
        iomodel=None,
    ) -> None:
        self.master = master
        self.sim = sim
        self.conf = conf if conf is not None else Configuration()
        self.stats = StatisticsRegistry(k=self.conf.get_int("stats.k", 12))
        # ``iomodel`` (when fair-share) makes monitor transfers contend
        # with foreground task I/O instead of taking standalone time.
        self.monitor = ReplicationMonitor(
            master, sim, master.placement, self.conf, iomodel=iomodel
        )
        self._temp_excluded: Set[int] = set()
        self.ctx = PolicyContext(
            master,
            self.stats,
            sim,
            self.conf,
            in_flight=self._in_flight_union,
        )
        self.downgrade_policy: Optional[DowngradePolicy] = None
        self.upgrade_policy: Optional[UpgradePolicy] = None
        self.trainer: Optional[AccessModelTrainer] = None
        # Weight trackers shared by LRFU/EXD policy pairs; updated once
        # per event here, read-only inside the policies.
        self.lrfu_weights: Optional[LrfuWeights] = None
        self.exd_weights: Optional[ExdWeights] = None
        self.max_downgrades_per_run = self.conf.get_int(
            "manager.max_downgrades_per_run", 200
        )
        self.max_upgrades_per_run = self.conf.get_int(
            "manager.max_upgrades_per_run", 50
        )
        # Cache mode (AutoCache, Sec 3.3): upgrades create extra cached
        # replicas instead of moving the existing ones.
        self.cache_mode = self.conf.get_bool("manager.cache_mode", False)
        self._downgrading: Set[TierSpec] = set()
        # Coarsened ticks (fast engine mode): a proactive tick may be
        # skipped when it is provably a no-op — see _can_skip_tick.
        self._coarse_ticks = self.conf.get_bool("manager.coarse_ticks", False)
        self._tick_replica_version = -1
        self._tick_was_inert = False
        #: Downgrade rounds whose start condition held (diagnostics and
        #: the coarse-tick inertness check).
        self.downgrade_rounds_entered = 0
        #: Proactive ticks skipped by the coarse-tick fast path.
        self.ticks_skipped = 0
        self._proactive_timer: Optional[PeriodicTimer] = None
        interval = self.conf.get_duration("manager.proactive_interval", 60.0)
        if interval > 0:
            self._proactive_timer = PeriodicTimer(
                sim, interval, self._proactive_tick, name="proactive-upgrade"
            )
        master.add_listener(self)

    # -- wiring -------------------------------------------------------------
    def set_downgrade_policy(self, policy: Optional[DowngradePolicy]) -> None:
        self.downgrade_policy = policy
        if policy is not None:
            policy.effective_utilization = self.monitor.effective_utilization

    def set_upgrade_policy(self, policy: Optional[UpgradePolicy]) -> None:
        self.upgrade_policy = policy

    def set_trainer(self, trainer: Optional[AccessModelTrainer]) -> None:
        self.trainer = trainer

    def _in_flight_union(self) -> Set[int]:
        return self.monitor.in_flight_files() | self._temp_excluded

    def _tier_level_for_stats(self, file: INodeFile) -> Optional[int]:
        """The file's tier level, captured only when the ML feature
        pipeline consumes it (``FeatureSpec.include_tier``); recorded
        *before* the upgrade policy reacts to this access so training
        points built at past reference times stay leakage-free."""
        trainer = self.trainer
        if trainer is None:
            return None
        if not (
            trainer.upgrade_model.spec.include_tier
            or trainer.downgrade_model.spec.include_tier
        ):
            return None
        return self.ctx.file_tier_level(file)

    def _policies(self):
        return [p for p in (self.downgrade_policy, self.upgrade_policy) if p]

    # -- FileSystemListener ----------------------------------------------------
    def on_file_created(self, file: INodeFile) -> None:
        self.stats.on_create(file)
        now = self.sim.now()
        for tracker in (self.lrfu_weights, self.exd_weights):
            if tracker is not None:
                tracker.on_create(file, now)
        for policy in self._policies():
            policy.on_file_created(file)

    def on_file_accessed(self, file: INodeFile) -> None:
        now = self.sim.now()
        self.stats.on_access(file, now, tier_level=self._tier_level_for_stats(file))
        for tracker in (self.lrfu_weights, self.exd_weights):
            if tracker is not None:
                tracker.on_access(file, now)
        if self.trainer is not None:
            self.trainer.on_access(file)
        for policy in self._policies():
            policy.on_file_accessed(file)
        self.run_upgrade(file)

    def on_file_modified(self, file: INodeFile) -> None:
        for policy in self._policies():
            policy.on_file_modified(file)

    def on_file_deleted(self, file: INodeFile) -> None:
        self.stats.on_delete(file)
        for tracker in (self.lrfu_weights, self.exd_weights):
            if tracker is not None:
                tracker.on_delete(file)
        for policy in self._policies():
            policy.on_file_deleted(file)

    def on_data_added(self, tier: TierSpec) -> None:
        self.run_downgrade(tier)

    # -- Algorithm 1: the downgrade loop ------------------------------------------
    def run_downgrade(self, tier: TierSpec) -> int:
        """Run one downgrade round for ``tier``; returns files scheduled."""
        policy = self.downgrade_policy
        if policy is None or tier in self._downgrading:
            return 0
        self._downgrading.add(tier)
        scheduled_files = 0
        try:
            if not policy.start_downgrade(tier):
                return 0
            self.downgrade_rounds_entered += 1
            self._temp_excluded.clear()
            policy.begin_round(tier)
            for _ in range(self.max_downgrades_per_run):
                file = policy.select_file_to_downgrade(tier)
                if file is None:
                    break
                action = policy.how_to_downgrade(file, tier)
                scheduled = self.monitor.submit_downgrade(file, tier, action)
                if self.tracer is not None:
                    self.tracer.emit(
                        "downgrade_decision",
                        policy=policy.name,
                        tier=tier.name,
                        path=file.path,
                        action=action.value,
                        bytes=file.size,
                        scheduled=scheduled,
                    )
                if scheduled == 0:
                    # Unmovable right now; exclude for this round so the
                    # policy does not return it again.
                    self._temp_excluded.add(file.inode_id)
                else:
                    scheduled_files += 1
                if policy.stop_downgrade(tier):
                    break
        finally:
            self._temp_excluded.clear()
            self._downgrading.discard(tier)
        return scheduled_files

    # -- Algorithm 2: the upgrade loop ----------------------------------------------
    def run_upgrade(self, accessed_file: Optional[INodeFile]) -> int:
        """Run one upgrade round; returns files scheduled."""
        policy = self.upgrade_policy
        if policy is None:
            return 0
        if accessed_file is None and not policy.proactive:
            return 0
        if not policy.start_upgrade(accessed_file):
            return 0
        scheduled_files = 0
        trigger_kind = "proactive" if accessed_file is None else "access"
        trigger = accessed_file
        for _ in range(self.max_upgrades_per_run):
            file = policy.select_file_to_upgrade(trigger)
            trigger = None  # only the first selection sees the trigger
            if file is None:
                break
            tiers = policy.upgrade_tier_candidates(file)
            if tiers:
                scheduled = self.monitor.submit_upgrade(
                    file, tiers, copy=self.cache_mode
                )
                if self.tracer is not None:
                    self.tracer.emit(
                        "upgrade_decision",
                        policy=policy.name,
                        trigger=trigger_kind,
                        path=file.path,
                        tiers=[t.name for t in tiers],
                        bytes=file.size,
                        cache=self.cache_mode,
                        scheduled=scheduled,
                    )
                policy.on_upgrade_scheduled(file, scheduled)
                if scheduled > 0:
                    scheduled_files += 1
            if policy.stop_upgrade():
                break
        return scheduled_files

    def _can_skip_tick(self) -> bool:
        """True when this proactive tick is provably a no-op.

        A tick only acts through (a) the proactive upgrade pass and (b)
        the downgrade safety net, whose start condition depends solely
        on tier utilization (device allocations plus the monitor's
        pending reservations).  So the tick cannot do anything new when:

        * the upgrade policy is absent or not proactive (pass (a) is a
          structural no-op),
        * no replica was added or released since the last executed tick
          (``BlockManager.replica_mutations`` unchanged) and no transfer
          is in flight (no reservations, and none can complete),
        * and the last executed tick itself was inert — it entered no
          downgrade round — so replaying it against identical state
          would be inert again.

        Time-dependent policy internals (e.g. XGB scoring) only run
        *inside* an entered round, which the inertness condition rules
        out; hence skipping never consults — and never diverges — them.
        """
        policy = self.upgrade_policy
        if policy is not None and policy.proactive:
            return False
        if self.downgrade_policy is None:
            return True
        return (
            self._tick_was_inert
            and self.monitor.pending_transfers == 0
            and self.master.blocks.replica_mutations == self._tick_replica_version
        )

    def _proactive_tick(self) -> None:
        if self._coarse_ticks and self._can_skip_tick():
            self.ticks_skipped += 1
            return
        entered_before = self.downgrade_rounds_entered
        self.run_upgrade(None)
        # Safety net: tiers can cross the threshold through transfers that
        # fire no on_data_added for this tier (e.g. pending reservations).
        for tier in self.master.hierarchy:
            self.run_downgrade(tier)
        self._tick_was_inert = self.downgrade_rounds_entered == entered_before
        self._tick_replica_version = self.master.blocks.replica_mutations

    # -- shared tracker helpers (used by the registry) -----------------------------
    def ensure_lrfu_weights(self) -> LrfuWeights:
        if self.lrfu_weights is None:
            half_life = self.conf.get_duration("lrfu.half_life", 6 * 3600.0)
            self.lrfu_weights = LrfuWeights(half_life=half_life)
        return self.lrfu_weights

    def ensure_exd_weights(self) -> ExdWeights:
        if self.exd_weights is None:
            alpha = self.conf.get_float("exd.alpha", 1.16e-5)
            self.exd_weights = ExdWeights(alpha=alpha)
        return self.exd_weights

    def stop(self) -> None:
        """Stop periodic activity (end of experiment)."""
        if self._proactive_timer is not None:
            self._proactive_timer.stop()
        if self.trainer is not None:
            self.trainer.stop()
        self.monitor.stop()
