"""Named construction of policy stacks.

Experiments refer to policies by the paper's acronyms ("lru", "exd",
"xgb", ...).  :func:`configure_policies` builds the requested pair on an
existing :class:`ReplicationManager`, sharing weight trackers between
same-family downgrade/upgrade policies and an
:class:`AccessModelTrainer` between the two XGB policies.
"""

from __future__ import annotations

from typing import Optional

from repro.core.downgrade import (
    ExdDowngradePolicy,
    LfuDowngradePolicy,
    LfuFDowngradePolicy,
    LifeDowngradePolicy,
    LruDowngradePolicy,
    LrfuDowngradePolicy,
    XgbDowngradePolicy,
)
from repro.core.extra_policies import (
    ArcLikeDowngradePolicy,
    MarkerOracleDowngradePolicy,
    RandomDowngradePolicy,
    SizeDowngradePolicy,
)
from repro.core.gds import GreedyDualSizeDowngradePolicy
from repro.core.lecar import LeCaRDowngradePolicy
from repro.core.manager import ReplicationManager
from repro.core.slruk import SlruKDowngradePolicy, SlruKUpgradePolicy
from repro.core.upgrade import (
    ExdUpgradePolicy,
    LrfuUpgradePolicy,
    OsaUpgradePolicy,
    XgbUpgradePolicy,
)
from repro.core.training import AccessModelTrainer

DOWNGRADE_POLICY_NAMES = ("lru", "lfu", "lrfu", "life", "lfu-f", "exd", "xgb")
UPGRADE_POLICY_NAMES = ("osa", "lrfu", "exd", "xgb")

#: Related-work policies beyond the paper's Table 1 (see
#: :mod:`repro.core.extra_policies`, :mod:`repro.core.slruk`,
#: :mod:`repro.core.gds`, :mod:`repro.core.lecar`).
EXTRA_DOWNGRADE_POLICY_NAMES = (
    "random",
    "size",
    "arc",
    "marker",
    "slru-k",
    "gds",
    "lecar",
)

#: Related-work admission policies beyond the paper's Table 2.
EXTRA_UPGRADE_POLICY_NAMES = ("slru-k",)

#: The end-to-end configurations compared in Sec 7.2 (Figs 6-9):
#: (downgrade policy, upgrade policy) pairs keyed by the label used in
#: the figures.
END_TO_END_PAIRS = {
    "LRU-OSA": ("lru", "osa"),
    "LRFU": ("lrfu", "lrfu"),
    "EXD": ("exd", "exd"),
    "XGB": ("xgb", "xgb"),
}


def _ensure_trainer(manager: ReplicationManager, seed: int) -> AccessModelTrainer:
    if manager.trainer is None:
        spec = None
        if manager.conf.get_bool("features.include_tier", False):
            # Tier-aware feature spec sized from the cluster's hierarchy;
            # the trainer and XGB policies feed the tier level through.
            from repro.ml.features import FeatureSpec

            spec = FeatureSpec.for_hierarchy(manager.master.hierarchy)
        trainer = AccessModelTrainer(
            manager.sim, manager.stats, manager.conf, seed=seed, spec=spec
        )
        manager.set_trainer(trainer)
    assert manager.trainer is not None
    return manager.trainer


def configure_policies(
    manager: ReplicationManager,
    downgrade: Optional[str] = None,
    upgrade: Optional[str] = None,
    seed: int = 11,
) -> ReplicationManager:
    """Attach the named policies to ``manager`` (None disables a side)."""
    ctx = manager.ctx
    if downgrade is not None:
        name = downgrade.lower()
        if name == "lru":
            manager.set_downgrade_policy(LruDowngradePolicy(ctx))
        elif name == "lfu":
            manager.set_downgrade_policy(LfuDowngradePolicy(ctx))
        elif name == "lrfu":
            manager.set_downgrade_policy(
                LrfuDowngradePolicy(ctx, weights=manager.ensure_lrfu_weights())
            )
        elif name == "life":
            manager.set_downgrade_policy(LifeDowngradePolicy(ctx))
        elif name == "lfu-f":
            manager.set_downgrade_policy(LfuFDowngradePolicy(ctx))
        elif name == "exd":
            manager.set_downgrade_policy(
                ExdDowngradePolicy(ctx, weights=manager.ensure_exd_weights())
            )
        elif name == "xgb":
            trainer = _ensure_trainer(manager, seed)
            manager.set_downgrade_policy(
                XgbDowngradePolicy(ctx, model=trainer.downgrade_model)
            )
        elif name == "random":
            manager.set_downgrade_policy(RandomDowngradePolicy(ctx, seed=seed))
        elif name == "size":
            manager.set_downgrade_policy(SizeDowngradePolicy(ctx))
        elif name == "arc":
            manager.set_downgrade_policy(ArcLikeDowngradePolicy(ctx))
        elif name == "marker":
            trainer = _ensure_trainer(manager, seed)
            manager.set_downgrade_policy(
                MarkerOracleDowngradePolicy(
                    ctx, model=trainer.downgrade_model, seed=seed
                )
            )
        elif name == "slru-k":
            manager.set_downgrade_policy(SlruKDowngradePolicy(ctx))
        elif name == "gds":
            manager.set_downgrade_policy(GreedyDualSizeDowngradePolicy(ctx))
        elif name == "lecar":
            manager.set_downgrade_policy(LeCaRDowngradePolicy(ctx, seed=seed))
        else:
            raise ValueError(f"unknown downgrade policy {downgrade!r}")
    if upgrade is not None:
        name = upgrade.lower()
        if name == "osa":
            manager.set_upgrade_policy(OsaUpgradePolicy(ctx))
        elif name == "lrfu":
            manager.set_upgrade_policy(
                LrfuUpgradePolicy(ctx, weights=manager.ensure_lrfu_weights())
            )
        elif name == "exd":
            manager.set_upgrade_policy(
                ExdUpgradePolicy(ctx, weights=manager.ensure_exd_weights())
            )
        elif name == "xgb":
            trainer = _ensure_trainer(manager, seed)
            manager.set_upgrade_policy(
                XgbUpgradePolicy(ctx, model=trainer.upgrade_model)
            )
        elif name == "slru-k":
            manager.set_upgrade_policy(SlruKUpgradePolicy(ctx))
        else:
            raise ValueError(f"unknown upgrade policy {upgrade!r}")
    return manager
