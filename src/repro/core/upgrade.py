"""The four upgrade policies of Table 2.

============  ==========================================================
Acronym       When a file moves up
============  ==========================================================
OSA           on every access, straight into memory (never HDD → SSD)
LRFU          when its decayed LRFU weight exceeds a threshold (3)
EXD           when memory has room, or its weight beats the victims'
XGB           when the model predicts access probability above 0.5
============  ==========================================================

Only XGB is proactive: invoked periodically, it scans the most recently
used files and keeps scheduling upgrades until no candidate clears the
discrimination threshold or the scheduled-bytes budget (1GB) is spent
(Sec 6.4).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.hardware import TierSpec
from repro.common.units import GB, HOURS
from repro.dfs.namespace import INodeFile
from repro.core.context import PolicyContext
from repro.core.policy import UpgradePolicy
from repro.core.weights import ExdWeights, LrfuWeights
from repro.ml.access_model import FileAccessModel


class OsaUpgradePolicy(UpgradePolicy):
    """On Single Access: every accessed file is pulled into memory.

    HDD→SSD moves are disallowed (Sec 6.1): the only target is memory,
    so when memory has no room the upgrade is simply skipped.
    """

    name = "osa"

    def start_upgrade(self, accessed_file: Optional[INodeFile]) -> bool:
        if accessed_file is None:
            return False
        return not self.ctx.file_in_tier_or_better(
            accessed_file, self.ctx.highest_tier
        )

    def select_upgrade_tier(self, file: INodeFile) -> Optional[TierSpec]:
        return self.ctx.highest_tier


class LrfuUpgradePolicy(UpgradePolicy):
    """Upgrade recently-and-frequently used files (weight > threshold)."""

    name = "lrfu"

    def __init__(
        self, ctx: PolicyContext, weights: Optional[LrfuWeights] = None
    ) -> None:
        super().__init__(ctx)
        half_life = ctx.conf.get_duration("lrfu.half_life", 6 * HOURS)
        self.weights = weights or LrfuWeights(half_life=half_life)
        self.threshold = ctx.conf.get_float("lrfu.upgrade_threshold", 3.0)

    def start_upgrade(self, accessed_file: Optional[INodeFile]) -> bool:
        if accessed_file is None:
            return False
        if self.ctx.file_in_tier_or_better(accessed_file, self.ctx.highest_tier):
            return False
        weight = self.weights.effective(accessed_file, self.ctx.now())
        return weight > self.threshold


class ExdUpgradePolicy(UpgradePolicy):
    """Big SQL's admission rule.

    If memory can absorb the accessed file, upgrade it.  Otherwise
    upgrade only if its weight exceeds the summed weights of the
    lowest-weight memory residents that would have to leave to make
    room (Sec 6.1).
    """

    name = "exd"

    def __init__(
        self, ctx: PolicyContext, weights: Optional[ExdWeights] = None
    ) -> None:
        super().__init__(ctx)
        alpha = ctx.conf.get_float("exd.alpha", 1.16e-5)
        self.weights = weights or ExdWeights(alpha=alpha)

    def start_upgrade(self, accessed_file: Optional[INodeFile]) -> bool:
        if accessed_file is None:
            return False
        top = self.ctx.highest_tier
        if self.ctx.file_in_tier_or_better(accessed_file, top):
            return False
        free = self.ctx.tier_free(top)
        if free >= accessed_file.size:
            return True
        now = self.ctx.now()
        needed = accessed_file.size - free
        victims = sorted(
            self.ctx.files_on_tier(top),
            key=lambda f: (self.weights.effective(f, now), f.inode_id),
        )
        victim_weight = 0.0
        reclaimed = 0
        blocks = self.ctx.master.blocks
        for victim in victims:
            victim_weight += self.weights.effective(victim, now)
            reclaimed += blocks.file_bytes_on_tier(victim, top)
            if reclaimed >= needed:
                break
        if reclaimed < needed:
            return False  # even evicting everything would not fit the file
        return self.weights.effective(accessed_file, now) > victim_weight


class XgbUpgradePolicy(UpgradePolicy):
    """ML policy: proactively pull soon-to-be-read files up the tiers.

    Evaluates the *upgrade* access model (class window 30min) over the
    ``xgb.candidates`` (default 600) most recently used files that are
    not yet in memory; files whose predicted access probability exceeds
    the discrimination threshold (0.5) are scheduled, highest probability
    first, until the per-round scheduled-bytes budget (default 1GB) is
    exhausted (Sec 6.1/6.4).

    On access-triggered invocations only the accessed file is evaluated;
    the periodic proactive invocation performs the full scan.

    While the model is warming up the policy falls back to plain OSA
    behaviour (upgrade on access), mirroring the XGB downgrade policy's
    LRU fallback — the system keeps working from the first access and
    hands over to the model once its error rate clears the gate.
    """

    name = "xgb"

    proactive = True

    def __init__(self, ctx: PolicyContext, model: FileAccessModel) -> None:
        super().__init__(ctx)
        self.model = model
        self.candidate_limit = ctx.conf.get_int("xgb.candidates", 600)
        self.threshold = ctx.conf.get_float("xgb.upgrade_threshold", 0.5)
        self.budget = ctx.conf.get_bytes("xgb.upgrade_budget", 1 * GB)
        self._queue: List[int] = []
        self._scheduled_bytes = 0

    # -- decision point 1 -------------------------------------------------
    def start_upgrade(self, accessed_file: Optional[INodeFile]) -> bool:
        self._scheduled_bytes = 0
        self._queue = []
        top = self.ctx.highest_tier
        if not self.model.ready:
            # Warm-up fallback: behave like OSA (no proactive scans).
            if accessed_file is None:
                return False
            if self.ctx.file_in_tier_or_better(accessed_file, top):
                return False
            self._queue = [accessed_file.inode_id]
            return True
        if accessed_file is not None:
            if self.ctx.file_in_tier_or_better(accessed_file, top):
                return False
            prob = self._probabilities([accessed_file])[0]
            if prob > self.threshold:
                self._queue = [accessed_file.inode_id]
                return True
            return False
        self._build_queue()
        return bool(self._queue)

    def _probabilities(self, files: List[INodeFile]) -> np.ndarray:
        features = self.ctx.feature_matrix(self.model.spec, files)
        return self.model.model.predict_proba(features)

    def _build_queue(self) -> None:
        stats = self.ctx.stats
        candidates = stats.mru_order(
            self.ctx.files_below_tier(self.ctx.highest_tier)
        )[: self.candidate_limit]
        if not candidates:
            return
        probs = self._probabilities(candidates)
        order = np.argsort(-probs, kind="stable")
        self._queue = [
            candidates[int(i)].inode_id
            for i in order
            if probs[int(i)] > self.threshold
        ]

    # -- decision point 2 ---------------------------------------------------
    def select_file_to_upgrade(
        self, accessed_file: Optional[INodeFile]
    ) -> Optional[INodeFile]:
        busy = self.ctx.in_flight_files()
        while self._queue:
            inode_id = self._queue.pop(0)
            try:
                file = self.ctx.master.get_file_by_id(inode_id)
            except KeyError:
                continue
            if file.inode_id in busy:
                continue
            if self.ctx.file_in_tier_or_better(file, self.ctx.highest_tier):
                continue
            return file
        return None

    # -- decision point 3 -----------------------------------------------------
    def select_upgrade_tier(self, file: INodeFile) -> Optional[TierSpec]:
        best = self.ctx.file_best_tier(file)
        top = self.ctx.highest_tier
        if best is None or best is top:
            return None
        return top

    def upgrade_tier_candidates(self, file: INodeFile) -> List[TierSpec]:
        """Fastest tiers first; any tier above the file's best is acceptable."""
        best = self.ctx.file_best_tier(file)
        if best is None:
            return []
        return list(best.higher_tiers())

    # -- decision point 4 --------------------------------------------------------
    def on_upgrade_scheduled(self, file: INodeFile, scheduled_bytes: int) -> None:
        self._scheduled_bytes += scheduled_bytes

    def stop_upgrade(self) -> bool:
        return not self._queue or self._scheduled_bytes >= self.budget
