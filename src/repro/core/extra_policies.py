"""Extension policies from the paper's related-work section (Sec 2.3).

Beyond the seven Table 1 policies, these implement classic and recent
eviction schemes the paper discusses, adapted to file granularity:

* :class:`RandomDowngradePolicy` — the null baseline;
* :class:`SizeDowngradePolicy` — web caching's SIZE: evict the largest;
* :class:`ArcLikeDowngradePolicy` — an ARC-style adaptive split between
  a recency list (files seen once) and a frequency list (files re-seen),
  with ghost lists steering the balance;
* :class:`MarkerOracleDowngradePolicy` — the Marker algorithm augmented
  with a machine-learned oracle (Lykouris & Vassilvitskii, the paper's
  [36]): unmarked files are eviction candidates and the access model
  breaks ties by predicted re-access probability.

All plug into the same four-decision-point interface, which is the
point: the framework is policy-agnostic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Set

import numpy as np

from repro.cluster.hardware import TierSpec
from repro.dfs.namespace import INodeFile
from repro.core.context import PolicyContext
from repro.core.policy import DowngradePolicy
from repro.ml.access_model import FileAccessModel


class RandomDowngradePolicy(DowngradePolicy):
    """Evict a uniformly random file (seeded; the sanity baseline)."""

    name = "random"

    def __init__(self, ctx: PolicyContext, seed: int = 97) -> None:
        super().__init__(ctx)
        self._rng = np.random.default_rng(seed)

    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        candidates = self.ctx.files_on_tier(tier)
        if not candidates:
            return None
        return candidates[int(self._rng.integers(len(candidates)))]


class SizeDowngradePolicy(DowngradePolicy):
    """Web caching's SIZE policy: evict the largest file first.

    Frees the most room per decision; ignores recency and frequency
    entirely (which is exactly its weakness on reused large inputs).
    """

    name = "size"

    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        candidates = self.ctx.files_on_tier(tier)
        if not candidates:
            return None
        return max(candidates, key=lambda f: (f.size, -f.inode_id))


class ArcLikeDowngradePolicy(DowngradePolicy):
    """ARC adapted to files: recency list T1 vs frequency list T2.

    Files enter T1 on first access; a re-access promotes them to T2.
    Ghost lists B1/B2 remember recent evictions — re-accessing a B1
    ghost grows the recency target ``p``, a B2 ghost shrinks it, so the
    policy continuously re-balances between LRU-like and LFU-like
    behaviour (the adaptivity ARC is known for).
    """

    name = "arc"

    def __init__(self, ctx: PolicyContext, ghost_capacity: int = 512) -> None:
        super().__init__(ctx)
        self._t1: "OrderedDict[int, None]" = OrderedDict()  # seen once
        self._t2: "OrderedDict[int, None]" = OrderedDict()  # seen again
        self._b1: "OrderedDict[int, None]" = OrderedDict()  # ghosts of T1
        self._b2: "OrderedDict[int, None]" = OrderedDict()  # ghosts of T2
        self._ghost_capacity = ghost_capacity
        self.p = 0.5  # target share of evictions taken from T1

    # -- callbacks maintain the lists --------------------------------------
    def on_file_created(self, file: INodeFile) -> None:
        self._t1[file.inode_id] = None
        self._t1.move_to_end(file.inode_id)

    def on_file_accessed(self, file: INodeFile) -> None:
        inode = file.inode_id
        if inode in self._t2:
            self._t2.move_to_end(inode)
        elif inode in self._t1:
            del self._t1[inode]
            self._t2[inode] = None
        elif inode in self._b1:
            # Recency ghost hit: we evicted something we should have kept
            # for recency -> favour T2 evictions (shrink T1's share).
            del self._b1[inode]
            self.p = max(self.p - 0.05, 0.0)
            self._t2[inode] = None
        elif inode in self._b2:
            del self._b2[inode]
            self.p = min(self.p + 0.05, 1.0)
            self._t2[inode] = None
        else:
            self._t1[inode] = None

    def on_file_deleted(self, file: INodeFile) -> None:
        for bucket in (self._t1, self._t2, self._b1, self._b2):
            bucket.pop(file.inode_id, None)

    def _trim_ghosts(self) -> None:
        for ghosts in (self._b1, self._b2):
            while len(ghosts) > self._ghost_capacity:
                ghosts.popitem(last=False)

    # -- selection -----------------------------------------------------------
    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        candidates = {f.inode_id: f for f in self.ctx.files_on_tier(tier)}
        if not candidates:
            return None
        from_t1 = [i for i in self._t1 if i in candidates]
        from_t2 = [i for i in self._t2 if i in candidates]
        pick: Optional[int] = None
        take_t1 = len(from_t1) > 0 and (
            len(from_t2) == 0
            or len(from_t1) >= self.p * (len(from_t1) + len(from_t2))
        )
        if take_t1:
            pick = from_t1[0]  # LRU end of the recency list
            del self._t1[pick]
            self._b1[pick] = None
        elif from_t2:
            pick = from_t2[0]
            del self._t2[pick]
            self._b2[pick] = None
        else:
            # Untracked candidates (pre-attach files): fall back to LRU.
            return self.ctx.stats.lru_order(candidates.values())[0]
        self._trim_ghosts()
        return candidates[pick]


class MarkerOracleDowngradePolicy(DowngradePolicy):
    """Marker with a machine-learned oracle (the paper's [36]).

    Classic Marker: accessed files are *marked*; only unmarked files are
    eviction candidates; when everything is marked, a new phase begins
    and all marks clear.  The learned-advice variant evicts the unmarked
    file the oracle deems least likely to be re-accessed, preserving
    Marker's worst-case competitiveness while gaining from accurate
    predictions.  Falls back to uniform-random unmarked eviction while
    the oracle is warming up.
    """

    name = "marker"

    def __init__(
        self,
        ctx: PolicyContext,
        model: FileAccessModel,
        seed: int = 31,
    ) -> None:
        super().__init__(ctx)
        self.model = model
        self._marked: Set[int] = set()
        self._rng = np.random.default_rng(seed)

    def on_file_accessed(self, file: INodeFile) -> None:
        self._marked.add(file.inode_id)

    def on_file_deleted(self, file: INodeFile) -> None:
        self._marked.discard(file.inode_id)

    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        candidates = self.ctx.files_on_tier(tier)
        if not candidates:
            return None
        unmarked = [f for f in candidates if f.inode_id not in self._marked]
        if not unmarked:
            # Phase change: clear marks, everything is a candidate again.
            self._marked.clear()
            unmarked = candidates
        if not self.model.ready:
            return unmarked[int(self._rng.integers(len(unmarked)))]
        features = self.ctx.feature_matrix(self.model.spec, unmarked)
        probs = self.model.model.predict_proba(features)
        return unmarked[int(np.argmin(probs))]
