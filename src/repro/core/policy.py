"""Policy interfaces: the four decision points of Sec 3.2.

Both policy kinds implement four methods matching Algorithms 1 and 2:

==============================  =======================================
Decision point                  Method
==============================  =======================================
1. when to start                ``start_downgrade`` / ``start_upgrade``
2. which file                   ``select_file_to_downgrade`` / ``..._upgrade``
3. how (action / target tier)   ``how_to_downgrade`` / ``select_upgrade_tier``
4. when to stop                 ``stop_downgrade`` / ``stop_upgrade``
==============================  =======================================

plus the notification callbacks (file created / accessed / modified /
deleted) through which stateful policies maintain their bookkeeping.

Shared behaviour encoded here (Secs 5.1, 5.4): every downgrade policy
starts when a tier's used fraction exceeds ``downgrade.start_threshold``
(default 0.90) and stops below ``downgrade.stop_threshold`` (default
0.85).  Utilization is *effective*: bytes already scheduled to leave the
tier are subtracted, so proactive asynchronous movement does not cause
over-selection.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.cluster.hardware import TierSpec
from repro.dfs.namespace import INodeFile
from repro.core.context import PolicyContext


class DowngradeAction(enum.Enum):
    """How a selected file leaves its tier (Definition 1)."""

    MOVE = "move"
    DELETE = "delete"


class Policy:
    """Common base: context attachment and no-op callbacks."""

    name = "base"

    def __init__(self, ctx: PolicyContext) -> None:
        self.ctx = ctx

    # -- notification callbacks (Sec 3.3) ---------------------------------
    def on_file_created(self, file: INodeFile) -> None:
        """Called after a file's replicas are all placed."""

    def on_file_accessed(self, file: INodeFile) -> None:
        """Called when a file read begins (statistics already updated)."""

    def on_file_modified(self, file: INodeFile) -> None:
        """Called after an append/rewrite."""

    def on_file_deleted(self, file: INodeFile) -> None:
        """Called after a file is removed."""


class DowngradePolicy(Policy):
    """Decides when/which/how to move data *down* the tiers (Sec 5)."""

    name = "downgrade-base"

    def __init__(self, ctx: PolicyContext) -> None:
        super().__init__(ctx)
        conf = ctx.conf
        self.start_threshold = conf.get_float("downgrade.start_threshold", 0.90)
        self.stop_threshold = conf.get_float("downgrade.stop_threshold", 0.85)
        if not 0 < self.stop_threshold <= self.start_threshold <= 1.0:
            raise ValueError("thresholds must satisfy 0 < stop <= start <= 1")
        # Default action for decision point 3: MOVE preserves the replica
        # count (tiering); DELETE drops it (cache semantics — the
        # AutoCache mode, where memory replicas are extras on top of the
        # persistent replication factor).
        action_name = conf.get_str("downgrade.action", "move").lower()
        try:
            self.default_action = DowngradeAction(action_name)
        except ValueError:
            raise ValueError(
                f"downgrade.action must be 'move' or 'delete', got {action_name!r}"
            ) from None
        # Effective utilization callback installed by the manager: it
        # subtracts bytes already scheduled to leave the tier.
        self.effective_utilization = ctx.tier_utilization

    # Decision point 1 (Sec 5.1): proactive start above the threshold.
    def start_downgrade(self, tier: TierSpec) -> bool:
        return self.effective_utilization(tier) > self.start_threshold

    # Called by the manager once per downgrade round, right after the
    # start condition passed and before the first selection.  Policies
    # may use it to precompute per-round state (the fast engine mode
    # sorts the candidate queue here); the default is a no-op.
    def begin_round(self, tier: TierSpec) -> None:
        """Hook invoked at the start of each downgrade round."""

    # Decision point 2 (Sec 5.2): policy-specific.
    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        raise NotImplementedError

    # Decision point 3 (Sec 5.3): move via the multi-objective placement
    # (the monitor resolves the concrete lower tier) by default; DELETE
    # when configured for cache semantics (``downgrade.action=delete``).
    def how_to_downgrade(
        self, file: INodeFile, tier: TierSpec
    ) -> DowngradeAction:
        return self.default_action

    # Decision point 4 (Sec 5.4): stop once enough space was freed.
    def stop_downgrade(self, tier: TierSpec) -> bool:
        return self.effective_utilization(tier) <= self.stop_threshold


class UpgradePolicy(Policy):
    """Decides when/which/how to move data *up* the tiers (Sec 6)."""

    name = "upgrade-base"

    #: Upgrade policies are also invoked periodically for proactive moves
    #: (Algorithm 2); policies that only react to accesses ignore those
    #: invocations.
    proactive = False

    # Decision point 1 (Sec 6.1).
    def start_upgrade(self, accessed_file: Optional[INodeFile]) -> bool:
        raise NotImplementedError

    # Decision point 2 (Sec 6.2): default = the file that triggered it.
    def select_file_to_upgrade(
        self, accessed_file: Optional[INodeFile]
    ) -> Optional[INodeFile]:
        return accessed_file

    # Decision point 3 (Sec 6.3): the target tier; the monitor resolves
    # the concrete node/device through the multi-objective placement.
    def select_upgrade_tier(self, file: INodeFile) -> Optional[TierSpec]:
        best = self.ctx.file_best_tier(file)
        top = self.ctx.highest_tier
        if best is None or best is top:
            return None
        return top

    def upgrade_tier_candidates(self, file: INodeFile) -> "list[TierSpec]":
        """Acceptable target tiers, fastest first (default: just one)."""
        tier = self.select_upgrade_tier(file)
        return [tier] if tier is not None else []

    def on_upgrade_scheduled(self, file: INodeFile, scheduled_bytes: int) -> None:
        """Feedback hook: the monitor scheduled this many bytes upward."""

    # Decision point 4 (Sec 6.4): default = single-file process.
    def stop_upgrade(self) -> bool:
        return True
