"""The paper's contribution: automated tiered storage management.

Components (paper Fig 3):

* :class:`ReplicationManager` — orchestrates the pluggable policies
  around the four decision points of Sec 3.2 (Algorithms 1 and 2);
* :class:`ReplicationMonitor` — executes the resulting replica moves
  asynchronously and repairs replication-factor drift;
* :mod:`repro.core.downgrade` / :mod:`repro.core.upgrade` — the 7+4
  policies of Tables 1 and 2;
* :class:`StatisticsRegistry` — per-file recency/frequency/size state;
* :class:`AccessModelTrainer` — online training of the two XGB models.
"""

from repro.core.context import PolicyContext
from repro.core.manager import ReplicationManager
from repro.core.monitor import ReplicationMonitor, transfer_seconds
from repro.core.policy import DowngradeAction, DowngradePolicy, Policy, UpgradePolicy
from repro.core.gds import GreedyDualSizeDowngradePolicy
from repro.core.lecar import LeCaRDowngradePolicy
from repro.core.registry import (
    DOWNGRADE_POLICY_NAMES,
    END_TO_END_PAIRS,
    EXTRA_DOWNGRADE_POLICY_NAMES,
    EXTRA_UPGRADE_POLICY_NAMES,
    UPGRADE_POLICY_NAMES,
    configure_policies,
)
from repro.core.slruk import SlruKDowngradePolicy, SlruKUpgradePolicy
from repro.core.stats import FileStatistics, StatisticsRegistry
from repro.core.training import AccessModelTrainer
from repro.core.weights import ExdWeights, LrfuWeights
from repro.core.downgrade import (
    ExdDowngradePolicy,
    LfuDowngradePolicy,
    LfuFDowngradePolicy,
    LifeDowngradePolicy,
    LruDowngradePolicy,
    LrfuDowngradePolicy,
    XgbDowngradePolicy,
)
from repro.core.upgrade import (
    ExdUpgradePolicy,
    LrfuUpgradePolicy,
    OsaUpgradePolicy,
    XgbUpgradePolicy,
)

__all__ = [
    "PolicyContext",
    "ReplicationManager",
    "ReplicationMonitor",
    "transfer_seconds",
    "Policy",
    "DowngradePolicy",
    "UpgradePolicy",
    "DowngradeAction",
    "StatisticsRegistry",
    "FileStatistics",
    "AccessModelTrainer",
    "LrfuWeights",
    "ExdWeights",
    "configure_policies",
    "DOWNGRADE_POLICY_NAMES",
    "UPGRADE_POLICY_NAMES",
    "EXTRA_DOWNGRADE_POLICY_NAMES",
    "EXTRA_UPGRADE_POLICY_NAMES",
    "END_TO_END_PAIRS",
    "SlruKDowngradePolicy",
    "SlruKUpgradePolicy",
    "GreedyDualSizeDowngradePolicy",
    "LeCaRDowngradePolicy",
    "LruDowngradePolicy",
    "LfuDowngradePolicy",
    "LrfuDowngradePolicy",
    "LifeDowngradePolicy",
    "LfuFDowngradePolicy",
    "ExdDowngradePolicy",
    "XgbDowngradePolicy",
    "OsaUpgradePolicy",
    "LrfuUpgradePolicy",
    "ExdUpgradePolicy",
    "XgbUpgradePolicy",
]
