"""The Replication Monitor: executes tier transfers asynchronously.

Responsibilities (paper Sec 3.3, Fig 3):

* serve downgrade/upgrade requests from the Replication Manager by
  scheduling timed block transfers on the simulator (reads from the
  source medium, writes to the destination, capped by the network for
  cross-node moves);
* keep *pending* accounting so proactive policies see effective tier
  utilization (bytes scheduled to leave a tier no longer count against
  it) and never select a file whose movement is already in flight;
* periodically scan for under-/over-replicated blocks and repair them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Set

from repro.cluster.hardware import DEFAULT_NETWORK_BANDWIDTH, TierSpec
from repro.common.config import Configuration
from repro.dfs.block import BlockInfo, ReplicaInfo
from repro.dfs.master import Master, TransferTicket
from repro.dfs.namespace import INodeFile
from repro.dfs.placement import PlacementPolicy
from repro.core.policy import DowngradeAction
from repro.sim.simulator import PeriodicTimer, Simulator

if TYPE_CHECKING:  # imported lazily to avoid a core <-> engine cycle
    from repro.engine.iomodel import IoModel


def transfer_seconds(
    num_bytes: int,
    from_tier: TierSpec,
    to_tier: TierSpec,
    cross_node: bool,
    network_bandwidth: float = DEFAULT_NETWORK_BANDWIDTH,
) -> float:
    """Duration of a replica transfer between two media."""
    src = from_tier.media
    dst = to_tier.media
    bandwidth = min(src.read_bw, dst.write_bw)
    if cross_node:
        bandwidth = min(bandwidth, network_bandwidth)
    return src.seek_latency + dst.seek_latency + num_bytes / bandwidth


class ReplicationMonitor:
    """Executes and accounts replica movement."""

    #: Optional decision tracer (:class:`repro.obs.trace.Tracer`),
    #: installed by the runner when ``obs.trace`` is set; ``None`` keeps
    #: transfer scheduling free of any tracing work.
    tracer = None

    def __init__(
        self,
        master: Master,
        sim: Simulator,
        placement: PlacementPolicy,
        conf: Optional[Configuration] = None,
        iomodel: Optional["IoModel"] = None,
    ) -> None:
        self.master = master
        self.sim = sim
        self.placement = placement
        self.conf = conf if conf is not None else Configuration()
        #: Under the fair-share model transfers are flows that contend
        #: with foreground task I/O; without it (or under snapshot
        #: pricing) they keep the standalone transfer_seconds() timing.
        self.iomodel = iomodel if iomodel is not None and iomodel.fairshare else None
        self.network_bandwidth = self.conf.get_float(
            "monitor.network_bandwidth", DEFAULT_NETWORK_BANDWIDTH
        )
        # Cache semantics (the AutoCache mode, Sec 3.3): memory replicas
        # are cache copies *on top of* the persistent replication factor,
        # so replication-health accounting must not count them.
        self.cache_mode = self.conf.get_bool("manager.cache_mode", False)
        self.hierarchy = master.hierarchy
        # Pending byte counts per tier (scheduled but uncommitted).
        self.pending_out: Dict[TierSpec, int] = {t: 0 for t in self.hierarchy}
        self.pending_in: Dict[TierSpec, int] = {t: 0 for t in self.hierarchy}
        # inode id -> number of outstanding transfers for that file.
        self._in_flight: Dict[int, int] = {}
        self._in_flight_blocks: Set[int] = set()
        # Cumulative counters (consumed by experiment metrics).
        self.bytes_downgraded: Dict[TierSpec, int] = {t: 0 for t in self.hierarchy}
        self.bytes_upgraded: Dict[TierSpec, int] = {t: 0 for t in self.hierarchy}
        self.bytes_deleted: Dict[TierSpec, int] = {t: 0 for t in self.hierarchy}
        self.transfers_committed = 0
        self.transfers_aborted = 0
        self.replicas_repaired = 0
        #: Transfer-delay accounting: ideal = standalone transfer time,
        #: realized = wall time actually taken (they differ only when
        #: transfers are priced through the fair-share engine).
        self.transfer_ideal_seconds = 0.0
        self.transfer_realized_seconds = 0.0
        self._health_timer: Optional[PeriodicTimer] = None
        if self.conf.get_bool("monitor.health_checks_enabled", False):
            interval = self.conf.get_duration("monitor.health_interval", 30.0)
            self._health_timer = PeriodicTimer(
                sim, interval, self.health_scan, name="health-scan"
            )

    # -- views used by policies ---------------------------------------------
    def in_flight_files(self) -> Set[int]:
        return set(self._in_flight)

    @property
    def pending_transfers(self) -> int:
        """Number of block transfers currently in flight."""
        return len(self._in_flight_blocks)

    def assert_idle(self) -> None:
        """Raise unless all transfer accounting has drained to zero.

        Complements ``Simulator.pending == 0``: a quiescent simulator
        with transfers still marked in flight means a completion
        callback was lost and pending-byte accounting is permanently
        skewed.
        """
        if self._in_flight or self._in_flight_blocks:
            raise RuntimeError(
                f"transfers leaked: files={sorted(self._in_flight)[:5]} "
                f"blocks={sorted(self._in_flight_blocks)[:5]}"
            )
        skewed = {
            t.name: n
            for counts in (self.pending_in, self.pending_out)
            for t, n in counts.items()
            if n != 0
        }
        if skewed:
            raise RuntimeError(f"pending byte accounting skewed: {skewed}")

    def effective_utilization(self, tier: TierSpec) -> float:
        """Tier utilization net of bytes already scheduled to leave it."""
        capacity = self.master.tier_capacity(tier)
        if capacity == 0:
            return 1.0
        used = self.master.tier_used(tier) - self.pending_out[tier]
        return max(used, 0) / capacity

    # -- downgrade execution ------------------------------------------------------
    def submit_downgrade(
        self,
        file: INodeFile,
        from_tier: TierSpec,
        action: DowngradeAction,
    ) -> int:
        """Schedule moving (or deleting) ``file``'s replicas off ``from_tier``.

        Returns the number of bytes scheduled/freed; 0 means the file
        could not be downgraded (caller should pick another file).
        """
        scheduled = 0
        for block in self.master.blocks.blocks_of(file):
            replicas = block.replicas_on_tier(from_tier)
            if not replicas:
                continue
            replica = replicas[0]
            if action is DowngradeAction.DELETE:
                scheduled += self._delete_replica_if_safe(replica, from_tier)
                continue
            target = self.placement.select_transfer_target(
                block, replica, from_tier.lower_tiers()
            )
            if target is None:
                # No room anywhere below: fall back to deletion
                # (Definition 1 allows it) when the block stays available.
                scheduled += self._delete_replica_if_safe(replica, from_tier)
                continue
            scheduled += self._schedule_move(
                file, block, replica, target, downgrade=True
            )
        return scheduled

    def _delete_replica_if_safe(
        self, replica: ReplicaInfo, tier: TierSpec
    ) -> int:
        if replica.block.replica_count <= 1:
            return 0
        size = replica.size
        if self.tracer is not None:
            # Capture identity before deletion invalidates the replica.
            self.tracer.emit(
                "eviction",
                block=replica.block.block_id,
                tier=tier.name,
                node=replica.node_id,
                bytes=size,
            )
        self.master.delete_replica(replica)
        self.bytes_deleted[tier] += size
        return size

    # -- upgrade execution ------------------------------------------------------------
    def submit_upgrade(
        self,
        file: INodeFile,
        candidate_tiers: List[TierSpec],
        copy: bool = False,
    ) -> int:
        """Schedule one replica of each block up to a faster tier.

        For each block, the first candidate tier that is strictly faster
        than the block's current best *and* has room is used.  With
        ``copy=False`` (tiering, Definition 2(i)) the source replica is
        moved; with ``copy=True`` (caching, Definition 2(ii)) a *new*
        replica is created and the source stays.  Returns scheduled
        bytes (0 = nothing to do / no space).
        """
        scheduled = 0
        for block in self.master.blocks.blocks_of(file):
            if block.block_id in self._in_flight_blocks:
                continue
            best = block.best_tier()
            if best is None:
                continue
            sources = block.replicas_on_tier(max(block.tiers()))
            source = sources[0]
            for tier in candidate_tiers:
                if tier >= best:
                    continue  # not an upgrade for this block
                if copy:
                    target = self.placement.select_cache_target(block, tier)
                    if target is None:
                        continue
                    scheduled += self._schedule_copy(file, block, source, target)
                else:
                    target = self.placement.select_transfer_target(
                        block, source, [tier]
                    )
                    if target is None:
                        continue
                    scheduled += self._schedule_move(
                        file, block, source, target, downgrade=False
                    )
                break
        return scheduled

    def _run_transfer(
        self,
        block: BlockInfo,
        source: ReplicaInfo,
        target,
        finish,
        name: str,
    ) -> None:
        """Time one replica transfer and fire ``finish`` when it lands.

        With a fair-share I/O model the transfer becomes a flow through
        the shared engine (reads the source device, writes the target,
        crosses NICs/endpoints) and experiences — and causes — real
        contention; otherwise it takes the standalone duration, exactly
        as before.
        """
        cross_node = source.node_id != target.node_id
        # Price the ideal against the bandwidth the engine actually
        # enforces, so realized >= ideal holds whatever the monitor's
        # own network knob says (under fairshare that knob no longer
        # governs transfer timing — the shared NIC resources do).
        network = (
            self.iomodel.network_bandwidth
            if self.iomodel is not None
            else self.network_bandwidth
        )
        ideal = transfer_seconds(
            block.size,
            source.tier,
            target.tier,
            cross_node,
            network,
        )
        started = self.sim.now()

        def timed_finish() -> None:
            # Both sides accrue together at completion, so transfers
            # still in flight when a run ends skew neither and the
            # realized-minus-ideal delay never goes negative.
            self.transfer_ideal_seconds += ideal
            self.transfer_realized_seconds += self.sim.now() - started
            finish()

        if self.iomodel is not None:
            self.iomodel.transfer(
                block.size,
                source.device_id,
                source.node_id,
                target.device_id,
                target.node_id,
                on_complete=timed_finish,
                name=name,
            )
        else:
            self.sim.after(ideal, timed_finish, name=name)

    def _schedule_copy(
        self,
        file: INodeFile,
        block: BlockInfo,
        source: ReplicaInfo,
        target,
    ) -> int:
        """Create an additional (cache) replica of ``block`` at ``target``."""
        ticket = self.master.begin_transfer(block, None, target)
        size = block.size
        self.pending_in[target.tier] += size
        self._in_flight[file.inode_id] = self._in_flight.get(file.inode_id, 0) + 1
        self._in_flight_blocks.add(block.block_id)
        if self.tracer is not None:
            self._trace_start("cache", block, file.path, source, target)

        def finish() -> None:
            self._finish_move(
                ticket, file, source.tier, size, downgrade=False, kind="cache"
            )

        self._run_transfer(block, source, target, finish, f"cache-b{block.block_id}")
        return size

    # -- shared transfer machinery ---------------------------------------------------
    def _trace_start(
        self,
        kind: str,
        block: BlockInfo,
        path: str,
        source: ReplicaInfo,
        target,
    ) -> None:
        """Emit a ``migration_start`` record (tracer known non-None)."""
        self.tracer.emit(
            "migration_start",
            kind=kind,
            block=block.block_id,
            path=path,
            bytes=block.size,
            src={"node": source.node_id, "tier": source.tier.name},
            dst={"node": target.node_id, "tier": target.tier.name},
        )

    def _schedule_move(
        self,
        file: INodeFile,
        block: BlockInfo,
        source: ReplicaInfo,
        target,
        downgrade: bool,
    ) -> int:
        ticket = self.master.begin_transfer(block, source, target)
        size = block.size
        from_tier = source.tier
        kind = "downgrade" if downgrade else "upgrade"
        if downgrade:
            self.pending_out[from_tier] += size
        else:
            self.pending_in[target.tier] += size
        self._in_flight[file.inode_id] = self._in_flight.get(file.inode_id, 0) + 1
        self._in_flight_blocks.add(block.block_id)
        if self.tracer is not None:
            self._trace_start(kind, block, file.path, source, target)

        def finish() -> None:
            self._finish_move(ticket, file, from_tier, size, downgrade, kind=kind)

        self._run_transfer(block, source, target, finish, f"move-b{block.block_id}")
        return size

    def _finish_move(
        self,
        ticket: TransferTicket,
        file: INodeFile,
        from_tier: TierSpec,
        size: int,
        downgrade: bool,
        kind: str = "upgrade",
    ) -> None:
        if downgrade:
            self.pending_out[from_tier] -= size
        else:
            self.pending_in[ticket.target.tier] -= size
        remaining = self._in_flight.get(file.inode_id, 0) - 1
        if remaining <= 0:
            self._in_flight.pop(file.inode_id, None)
        else:
            self._in_flight[file.inode_id] = remaining
        self._in_flight_blocks.discard(ticket.block.block_id)
        # The file may have been deleted while the transfer was in flight.
        if not self.master.blocks.has_block(ticket.block.block_id):
            self.master.abort_transfer(ticket)
            self.transfers_aborted += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "migration_abort",
                    kind=kind,
                    block=ticket.block.block_id,
                    bytes=size,
                )
            return
        self.master.commit_transfer(ticket)
        self.transfers_committed += 1
        if downgrade:
            self.bytes_downgraded[from_tier] += size
        else:
            self.bytes_upgraded[ticket.target.tier] += size
        if self.tracer is not None:
            self.tracer.emit(
                "migration_commit",
                kind=kind,
                block=ticket.block.block_id,
                path=file.path,
                bytes=size,
                tier=ticket.target.tier.name,
            )

    # -- replication health (under/over-replicated blocks) ------------------------------
    def _persistent_count(self, block: BlockInfo) -> int:
        """Replicas that count against the replication factor.

        In cache mode, memory replicas are cache copies and are exempt.
        """
        count = block.replica_count
        if self.cache_mode:
            count -= len(block.replicas_on_tier(self.hierarchy.highest))
        return count

    def health_scan(self) -> None:
        """Repair replica counts drifted away from the replication factor."""
        for file in self.master.files():
            for block in self.master.blocks.blocks_of(file):
                if block.block_id in self._in_flight_blocks:
                    continue
                if block.replica_count == 0:
                    continue  # data lost; nothing to copy from
                persistent = self._persistent_count(block)
                if persistent < file.replication:
                    self._repair_under_replicated(file, block)
                elif persistent > file.replication:
                    self._trim_over_replicated(block)

    def _repair_under_replicated(self, file: INodeFile, block: BlockInfo) -> None:
        # Read from the fastest replica; place the copy anywhere suitable
        # (fast tiers first, though usually only HDD has room).  In cache
        # mode only persistent tiers restore the replication factor.
        source = block.replicas_on_tier(block.best_tier())[0]
        tiers = [
            t
            for t in self.hierarchy
            if not (self.cache_mode and t.is_highest)
        ]
        target = self.placement.select_copy_target(block, tiers)
        if target is None:
            return
        ticket = self.master.begin_transfer(block, None, target)
        self._in_flight_blocks.add(block.block_id)
        if self.tracer is not None:
            self._trace_start("repair", block, file.path, source, target)

        def finish() -> None:
            self._in_flight_blocks.discard(block.block_id)
            if not self.master.blocks.has_block(block.block_id):
                self.master.abort_transfer(ticket)
                self.transfers_aborted += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        "migration_abort",
                        kind="repair",
                        block=block.block_id,
                        bytes=block.size,
                    )
                return
            self.master.commit_transfer(ticket)
            self.transfers_committed += 1
            self.replicas_repaired += 1
            if self.tracer is not None:
                self.tracer.emit(
                    "migration_commit",
                    kind="repair",
                    block=block.block_id,
                    path=file.path,
                    bytes=block.size,
                    tier=target.tier.name,
                )

        self._run_transfer(block, source, target, finish, f"repair-b{block.block_id}")

    def _trim_over_replicated(self, block: BlockInfo) -> None:
        # Drop the slowest extra replica; ties broken by replica id.  In
        # cache mode only persistent replicas are candidates for trimming.
        candidates = block.replica_list()
        if self.cache_mode:
            candidates = [r for r in candidates if not r.tier.is_highest]
        extras = sorted(candidates, key=lambda r: (-r.tier.level, r.replica_id))
        replication = self.master.get_file_by_id(block.file_id).replication
        excess = self._persistent_count(block) - replication
        for replica in extras[:excess]:
            self.master.delete_replica(replica)

    def stop(self) -> None:
        """Cancel periodic activity (end of experiment)."""
        if self._health_timer is not None:
            self._health_timer.stop()
