"""The seven downgrade policies of Table 1.

============  ==========================================================
Acronym       Which file leaves the tier
============  ==========================================================
LRU           least recently used
LFU           least frequently used
LRFU          lowest recency+frequency weight (Formula 1)
LIFE          PACMan: old LFU file, else the largest recent file
LFU-F         PACMan: old LFU file, else the recent LFU file
EXD           Big SQL: lowest exponential-decay weight (Formula 2)
XGB           lowest predicted access probability in the distant future
============  ==========================================================

All policies share the proactive start/stop thresholds of the base class
(Sec 5.1/5.4) and the move-via-multi-objective-placement action
(Sec 5.3).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.cluster.hardware import TierSpec
from repro.common.units import HOURS
from repro.dfs.namespace import INodeFile
from repro.core.context import PolicyContext
from repro.core.policy import DowngradePolicy
from repro.core.weights import ExdWeights, LrfuWeights
from repro.ml.access_model import FileAccessModel


class LruDowngradePolicy(DowngradePolicy):
    """Evict the file whose last access (or creation) is oldest."""

    name = "lru"

    def __init__(self, ctx: PolicyContext) -> None:
        super().__init__(ctx)
        # Fast engine mode sorts the candidates once per round instead of
        # re-scanning for the minimum on every selection.  Equivalent to
        # the reference scan because no simulated time passes inside a
        # round: the LRU keys cannot change and the candidate set can
        # only shrink (files become busy or leave the tier), which the
        # pop-time re-validation below accounts for.
        self._fast = ctx.conf.get_str("engine.mode", "reference") == "fast"
        self._round_queue: Optional[List[INodeFile]] = None

    def begin_round(self, tier: TierSpec) -> None:
        if not self._fast:
            return
        stats = self.ctx.stats
        queue = self.ctx.files_on_tier(tier)
        queue.sort(
            key=lambda f: (stats.get_or_create(f).last_access_or_creation, f.inode_id),
            reverse=True,
        )
        self._round_queue = queue

    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        if self._fast and self._round_queue is not None:
            busy = self.ctx.in_flight_files()
            blocks = self.ctx.master.blocks
            queue = self._round_queue
            while queue:
                file = queue.pop()
                if file.inode_id in busy:
                    continue
                if blocks.file_bytes_on_tier(file, tier) == 0:
                    continue
                return file
            return None
        candidates = self.ctx.files_on_tier(tier)
        if not candidates:
            return None
        stats = self.ctx.stats
        return min(
            candidates,
            key=lambda f: (stats.get_or_create(f).last_access_or_creation, f.inode_id),
        )


class LfuDowngradePolicy(DowngradePolicy):
    """Evict the file with the fewest accesses (recency breaks ties)."""

    name = "lfu"

    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        candidates = self.ctx.files_on_tier(tier)
        if not candidates:
            return None
        stats = self.ctx.stats
        return min(
            candidates,
            key=lambda f: (
                stats.get_or_create(f).total_accesses,
                stats.get_or_create(f).last_access_or_creation,
                f.inode_id,
            ),
        )


class LrfuDowngradePolicy(DowngradePolicy):
    """Evict the file with the lowest decayed LRFU weight (Formula 1)."""

    name = "lrfu"

    def __init__(
        self, ctx: PolicyContext, weights: Optional[LrfuWeights] = None
    ) -> None:
        super().__init__(ctx)
        half_life = ctx.conf.get_duration("lrfu.half_life", 6 * HOURS)
        self.weights = weights or LrfuWeights(half_life=half_life)

    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        candidates = self.ctx.files_on_tier(tier)
        if not candidates:
            return None
        now = self.ctx.now()
        return min(
            candidates,
            key=lambda f: (self.weights.effective(f, now), f.inode_id),
        )


class _PartitionedDowngradePolicy(DowngradePolicy):
    """Shared machinery for PACMan's LIFE and LFU-F.

    Files idle for at least ``life.window`` form the "old" partition
    P_old; the rest form P_new.  Both policies first evict the LFU file
    of P_old when it is non-empty and differ only in how they pick from
    P_new.
    """

    def __init__(self, ctx: PolicyContext) -> None:
        super().__init__(ctx)
        self.window = ctx.conf.get_duration("life.window", 9 * HOURS)

    def _partitions(self, tier: TierSpec):
        now = self.ctx.now()
        stats = self.ctx.stats
        old: List[INodeFile] = []
        new: List[INodeFile] = []
        for file in self.ctx.files_on_tier(tier):
            if stats.get_or_create(file).idle_time(now) >= self.window:
                old.append(file)
            else:
                new.append(file)
        return old, new

    def _lfu(self, files: List[INodeFile]) -> INodeFile:
        stats = self.ctx.stats
        return min(
            files,
            key=lambda f: (
                stats.get_or_create(f).total_accesses,
                stats.get_or_create(f).last_access_or_creation,
                f.inode_id,
            ),
        )

    def _select_from_new(self, new: List[INodeFile]) -> INodeFile:
        raise NotImplementedError

    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        old, new = self._partitions(tier)
        if old:
            return self._lfu(old)
        if new:
            return self._select_from_new(new)
        return None


class LifeDowngradePolicy(_PartitionedDowngradePolicy):
    """PACMan LIFE: minimize average job completion time.

    Evicting the *largest* recent file preserves the all-or-nothing
    memory footprint of the largest possible number of (small) files.
    """

    name = "life"

    def _select_from_new(self, new: List[INodeFile]) -> INodeFile:
        return max(new, key=lambda f: (f.size, -f.inode_id))


class LfuFDowngradePolicy(_PartitionedDowngradePolicy):
    """PACMan LFU-F: maximize cluster efficiency via frequency."""

    name = "lfu-f"

    def _select_from_new(self, new: List[INodeFile]) -> INodeFile:
        return self._lfu(new)


class ExdDowngradePolicy(DowngradePolicy):
    """Big SQL's exponential decay: evict the lowest-weight file."""

    name = "exd"

    def __init__(
        self, ctx: PolicyContext, weights: Optional[ExdWeights] = None
    ) -> None:
        super().__init__(ctx)
        alpha = ctx.conf.get_float("exd.alpha", 1.16e-5)
        self.weights = weights or ExdWeights(alpha=alpha)

    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        candidates = self.ctx.files_on_tier(tier)
        if not candidates:
            return None
        now = self.ctx.now()
        return min(
            candidates,
            key=lambda f: (self.weights.effective(f, now), f.inode_id),
        )


class XgbDowngradePolicy(DowngradePolicy):
    """ML policy: evict the file least likely to be accessed again.

    Scans the ``xgb.candidates`` (default 600) least-recently-used files
    on the tier, asks the *downgrade* access model (class window 6h) for
    each file's probability of access, and evicts the least likely.
    The LRU pre-filter avoids cache pollution by files that would never
    otherwise be examined (Sec 5.2); scanning is batched into a single
    vectorized model call per downgrade round.

    Falls back to plain LRU while the model is warming up.
    """

    name = "xgb"

    def __init__(self, ctx: PolicyContext, model: FileAccessModel) -> None:
        super().__init__(ctx)
        self.model = model
        self.candidate_limit = ctx.conf.get_int("xgb.candidates", 600)
        self._queue: List[int] = []  # inode ids, lowest probability first
        self._queue_set: set = set()

    def start_downgrade(self, tier: TierSpec) -> bool:
        if not super().start_downgrade(tier):
            return False
        self._build_queue(tier)
        return True

    def _build_queue(self, tier: TierSpec) -> None:
        self._queue = []
        self._queue_set = set()
        stats = self.ctx.stats
        candidates = stats.lru_order(self.ctx.files_on_tier(tier))
        candidates = candidates[: self.candidate_limit]
        if not candidates:
            return
        if not self.model.ready:
            # Warm-up fallback: plain LRU order.
            self._queue = [f.inode_id for f in candidates]
            self._queue_set = set(self._queue)
            return
        features = self.ctx.feature_matrix(self.model.spec, candidates)
        probs = self.model.model.predict_proba(features)
        order = np.argsort(probs, kind="stable")
        self._queue = [candidates[int(i)].inode_id for i in order]
        self._queue_set = set(self._queue)

    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        busy = self.ctx.in_flight_files()
        blocks = self.ctx.master.blocks
        while self._queue:
            inode_id = self._queue.pop(0)
            self._queue_set.discard(inode_id)
            try:
                file = self.ctx.master.get_file_by_id(inode_id)
            except KeyError:
                continue  # deleted since the scan
            if file.inode_id in busy:
                continue
            if blocks.file_bytes_on_tier(file, tier) == 0:
                continue  # already moved off since the scan
            return file
        return None
