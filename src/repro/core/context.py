"""Shared context handed to every downgrade/upgrade policy.

Policies make decisions from (a) per-file statistics, (b) tier state, and
(c) configuration (paper Sec 3.3: "the policies have access to file and
node statistics maintained by the system").  The context bundles those
and also answers the candidate-set queries, filtering out files whose
movement is already in flight.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Set

import numpy as np

from repro.cluster.hardware import TierHierarchy, TierSpec
from repro.common.config import Configuration
from repro.dfs.master import Master
from repro.dfs.namespace import INodeFile
from repro.core.stats import StatisticsRegistry
from repro.sim.clock import Clock


class PolicyContext:
    """Everything a policy may consult when making decisions."""

    def __init__(
        self,
        master: Master,
        stats: StatisticsRegistry,
        clock: Clock,
        conf: Optional[Configuration] = None,
        in_flight: Optional[Callable[[], Set[int]]] = None,
    ) -> None:
        self.master = master
        self.stats = stats
        self.clock = clock
        self.conf = conf if conf is not None else Configuration()
        # Supplied by the Replication Monitor: inode ids currently moving.
        self._in_flight = in_flight or (lambda: set())

    def now(self) -> float:
        return self.clock.now()

    @property
    def hierarchy(self) -> TierHierarchy:
        """The cluster's tier hierarchy."""
        return self.master.hierarchy

    @property
    def highest_tier(self) -> TierSpec:
        """The fastest tier (the upgrade destination of Sec 6)."""
        return self.master.hierarchy.highest

    def in_flight_files(self) -> Set[int]:
        return self._in_flight()

    # -- tier state ----------------------------------------------------------
    def tier_utilization(self, tier: TierSpec) -> float:
        return self.master.tier_utilization(tier)

    def tier_free(self, tier: TierSpec) -> int:
        return self.master.topology.tier_free(tier)

    # -- candidate sets ---------------------------------------------------------
    def files_on_tier(self, tier: TierSpec) -> List[INodeFile]:
        """Files with at least one replica byte on ``tier`` and not in flight.

        These are the downgrade candidates: moving such a file off the
        tier frees space there.  The namespace walk order is preserved
        (policies that index into the list — the random baseline — rely
        on it); the per-file check is an O(1) probe of the block
        manager's tier index.
        """
        busy = self.in_flight_files()
        on_tier = self.master.blocks.tier_file_bytes(tier)
        return [
            file
            for file in self.master.files()
            if file.inode_id in on_tier and file.inode_id not in busy
        ]

    def files_below_tier(self, tier: TierSpec) -> List[INodeFile]:
        """Files whose complete copy is only available below ``tier``.

        These are the upgrade candidates for ``tier``: files that would
        benefit from having a replica moved up.
        """
        busy = self.in_flight_files()
        result = []
        for file in self.master.files():
            if file.inode_id in busy:
                continue
            best = self.master.blocks.file_best_tier(file)
            if best is not None and best > tier:
                result.append(file)
        return result

    def file_best_tier(self, file: INodeFile) -> Optional[TierSpec]:
        return self.master.blocks.file_best_tier(file)

    def file_tier_level(self, file: INodeFile) -> Optional[int]:
        """Level of the file's best tier (0 = fastest), or None."""
        best = self.master.blocks.file_best_tier(file)
        return None if best is None else best.level

    def feature_matrix(self, spec, files: Sequence[INodeFile]) -> np.ndarray:
        """Stacked feature vectors for ``files`` at the current time.

        Shared by the ML policies (XGB up/downgrade, Marker oracle); the
        per-file tier level is resolved only when ``spec.include_tier``.
        """
        from repro.ml.features import build_feature_vector

        now = self.now()
        stats = self.stats
        rows = []
        for file in files:
            s = stats.get_or_create(file)
            level = self.file_tier_level(file) if spec.include_tier else None
            rows.append(
                build_feature_vector(
                    spec,
                    s.size,
                    s.creation_time,
                    list(s.access_times),
                    now,
                    tier_level=level,
                )
            )
        return np.vstack(rows)

    def file_in_tier_or_better(self, file: INodeFile, tier: TierSpec) -> bool:
        return self.master.blocks.file_has_tier_or_better(file, tier)
