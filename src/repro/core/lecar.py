"""LeCaR: learning cache replacement with regret minimization (paper's [51]).

LeCaR treats LRU and LFU as two *experts* and keeps a probability weight
for each.  Every eviction samples an expert according to the weights and
evicts that expert's victim; the victim's identity and eviction time are
remembered in the expert's ghost history.  When a later access hits a
ghost, the expert that evicted it made a mistake, and its weight decays
multiplicatively by ``exp(-lr * d^age)`` — recent mistakes cost more
than stale ones (``d`` is the discount, ``age`` the number of accesses
since the eviction).  Over time the weights shift toward whichever
expert suits the current workload, which is exactly the adaptivity the
paper attributes to this line of work (Sec 2.3: expert-selection
approaches "outperform only the static policies").

The implementation follows Vietri et al. (HotStorage'18) with file
granularity: victims are chosen among the files currently on the tier,
using the shared statistics registry for LRU/LFU orderings.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

import numpy as np

from repro.cluster.hardware import TierSpec
from repro.dfs.namespace import INodeFile
from repro.core.context import PolicyContext
from repro.core.policy import DowngradePolicy

#: Learning rate of the multiplicative weight update (paper value).
DEFAULT_LEARNING_RATE = 0.45

#: Ghost entries older than this many accesses barely matter: the
#: discount is calibrated so a ghost at full history age costs 0.5% of a
#: fresh one, mirroring LeCaR's ``d = 0.005^(1/N)``.
DEFAULT_HISTORY_CAPACITY = 512


class LeCaRDowngradePolicy(DowngradePolicy):
    """Regret-weighted random choice between an LRU and an LFU expert."""

    name = "lecar"

    def __init__(
        self,
        ctx: PolicyContext,
        learning_rate: Optional[float] = None,
        history_capacity: Optional[int] = None,
        seed: int = 53,
    ) -> None:
        super().__init__(ctx)
        conf = ctx.conf
        self.learning_rate = (
            learning_rate
            if learning_rate is not None
            else conf.get_float("lecar.learning_rate", DEFAULT_LEARNING_RATE)
        )
        self.history_capacity = (
            history_capacity
            if history_capacity is not None
            else conf.get_int("lecar.history_capacity", DEFAULT_HISTORY_CAPACITY)
        )
        if self.learning_rate <= 0:
            raise ValueError("lecar.learning_rate must be positive")
        if self.history_capacity < 1:
            raise ValueError("lecar.history_capacity must be >= 1")
        self.discount = 0.005 ** (1.0 / self.history_capacity)
        #: (w_lru, w_lfu); always positive, always summing to 1.
        self.weights: Tuple[float, float] = (0.5, 0.5)
        # inode id -> access counter at eviction time.
        self._ghost_lru: "OrderedDict[int, int]" = OrderedDict()
        self._ghost_lfu: "OrderedDict[int, int]" = OrderedDict()
        self._accesses = 0
        self._rng = np.random.default_rng(seed)

    # -- regret updates ------------------------------------------------------
    def _penalize(self, expert_index: int, age: int) -> None:
        """Decay the mistaken expert's weight; recent mistakes cost more."""
        regret = self.discount ** max(age, 0)
        factor = float(np.exp(-self.learning_rate * regret))
        w = list(self.weights)
        w[expert_index] *= factor
        total = w[0] + w[1]
        self.weights = (w[0] / total, w[1] / total)

    def on_file_accessed(self, file: INodeFile) -> None:
        self._accesses += 1
        inode = file.inode_id
        evicted_at = self._ghost_lru.pop(inode, None)
        if evicted_at is not None:
            self._penalize(0, self._accesses - evicted_at)
        evicted_at = self._ghost_lfu.pop(inode, None)
        if evicted_at is not None:
            self._penalize(1, self._accesses - evicted_at)

    def on_file_deleted(self, file: INodeFile) -> None:
        self._ghost_lru.pop(file.inode_id, None)
        self._ghost_lfu.pop(file.inode_id, None)

    # -- expert victims ----------------------------------------------------------
    def _lru_victim(self, candidates) -> INodeFile:
        return self.ctx.stats.lru_order(candidates)[0]

    def _lfu_victim(self, candidates) -> INodeFile:
        stats = self.ctx.stats
        return min(
            candidates,
            key=lambda f: (
                stats.get_or_create(f).total_accesses,
                stats.get_or_create(f).last_access_or_creation,
                f.inode_id,
            ),
        )

    def _remember(self, ghost: "OrderedDict[int, int]", inode: int) -> None:
        ghost[inode] = self._accesses
        ghost.move_to_end(inode)
        while len(ghost) > self.history_capacity:
            ghost.popitem(last=False)

    # -- selection -------------------------------------------------------------------
    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        candidates = self.ctx.files_on_tier(tier)
        if not candidates:
            return None
        use_lru = bool(self._rng.random() < self.weights[0])
        if use_lru:
            victim = self._lru_victim(candidates)
            self._remember(self._ghost_lru, victim.inode_id)
        else:
            victim = self._lfu_victim(candidates)
            self._remember(self._ghost_lfu, victim.inode_id)
        return victim
