"""Greedy-Dual-Size: the classic web-cache policy (paper Sec 2.3, [2]).

Every file carries a credit ``H = cost / size + L``, refreshed on each
access, where ``L`` is a monotonically rising *inflation* value.  The
victim is the file with the smallest ``H``, and ``L`` is then raised to
the victim's credit — so files that have not been touched since several
eviction generations ago sink below freshly-credited ones, giving the
policy its recency dimension without any timestamps.

Two cost models are supported (``gds.cost``):

* ``"uniform"`` (default) — cost 1 per file, the GDS(1) variant: among
  files of the same generation, the largest goes first (maximum bytes
  reclaimed per miss incurred);
* ``"size"`` — cost proportional to size, the GDS(size) variant: every
  file earns the same credit, reducing to eviction by generation (FIFO
  over refresh events).

Sizes are expressed in megabytes so the ``cost / size`` term is on a
numerically comfortable scale next to the inflation term.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.cluster.hardware import TierSpec
from repro.common.units import MB
from repro.dfs.namespace import INodeFile
from repro.core.context import PolicyContext
from repro.core.policy import DowngradePolicy

COST_MODES = ("uniform", "size")


class GreedyDualSizeDowngradePolicy(DowngradePolicy):
    """Evict the file with the smallest inflated credit ``H``."""

    name = "gds"

    def __init__(self, ctx: PolicyContext, cost_mode: Optional[str] = None) -> None:
        super().__init__(ctx)
        mode = cost_mode or ctx.conf.get_str("gds.cost", "uniform")
        if mode not in COST_MODES:
            raise ValueError(f"gds.cost must be one of {COST_MODES}, got {mode!r}")
        self.cost_mode = mode
        self.inflation = 0.0
        self._credits: Dict[int, float] = {}

    # -- credit bookkeeping -------------------------------------------------
    def _cost(self, file: INodeFile) -> float:
        if self.cost_mode == "size":
            return max(file.size / MB, 1e-9)
        return 1.0

    def credit(self, file: INodeFile) -> float:
        """The file's current credit (crediting it first if untracked)."""
        value = self._credits.get(file.inode_id)
        if value is None:
            value = self._refresh(file)
        return value

    def _refresh(self, file: INodeFile) -> float:
        size_mb = max(file.size / MB, 1e-9)
        value = self._cost(file) / size_mb + self.inflation
        self._credits[file.inode_id] = value
        return value

    # -- callbacks -------------------------------------------------------------
    def on_file_created(self, file: INodeFile) -> None:
        self._refresh(file)

    def on_file_accessed(self, file: INodeFile) -> None:
        self._refresh(file)

    def on_file_deleted(self, file: INodeFile) -> None:
        self._credits.pop(file.inode_id, None)

    # -- selection ------------------------------------------------------------
    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        candidates = self.ctx.files_on_tier(tier)
        if not candidates:
            return None
        victim = min(candidates, key=lambda f: (self.credit(f), f.inode_id))
        # Raise the inflation floor to the departing credit; every later
        # refresh starts from here, aging untouched files relatively.
        self.inflation = max(self.inflation, self._credits.get(victim.inode_id, 0.0))
        self._credits.pop(victim.inode_id, None)
        return victim
