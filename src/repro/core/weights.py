"""Recency/frequency weight trackers shared by the LRFU and EXD policies.

Both formulas update a per-file weight on every access and *decay* it as
time passes since the last access:

* **LRFU** (Formula 1):  ``W = 1 + H * W / ((t_now - t_last) + H)`` where
  ``H`` is the half-life — after ``H`` idle seconds the carried weight is
  halved.
* **EXD** (Formula 2, Big SQL):  ``W = 1 + W * exp(-a * (t_now - t_last))``.
  The paper sets ``a = 1.16e-8`` per *millisecond* ([16]); this module
  uses seconds, hence the default ``1.16e-5``.

Selections need the weight *as of now* (not as of the last access), so
both trackers expose :meth:`effective`, which applies the decay factor
without mutating the stored value.  The downgrade and upgrade flavours of
each policy share one tracker instance so accesses are counted once.
"""

from __future__ import annotations

import math
from typing import Dict

from repro.common.units import HOURS
from repro.dfs.namespace import INodeFile

#: Per-second decay constant equivalent to Big SQL's 1.16e-8 per ms.
DEFAULT_EXD_ALPHA = 1.16e-5

#: Default LRFU half-life (the paper's running example uses 6 hours).
DEFAULT_LRFU_HALF_LIFE = 6 * HOURS


class _WeightTracker:
    """Shared bookkeeping: per-file (weight, last update time)."""

    def __init__(self) -> None:
        self._weights: Dict[int, float] = {}
        self._updated: Dict[int, float] = {}

    def on_create(self, file: INodeFile, now: float) -> None:
        """Initialize the weight to 1 when the file is created."""
        self._weights[file.inode_id] = 1.0
        self._updated[file.inode_id] = now

    def on_delete(self, file: INodeFile) -> None:
        self._weights.pop(file.inode_id, None)
        self._updated.pop(file.inode_id, None)

    def raw_weight(self, file: INodeFile) -> float:
        return self._weights.get(file.inode_id, 1.0)

    def _decay(self, elapsed: float) -> float:
        raise NotImplementedError

    def on_access(self, file: INodeFile, now: float) -> float:
        """Update the stored weight for an access at ``now``."""
        if file.inode_id not in self._weights:
            self.on_create(file, now)
        elapsed = max(now - self._updated[file.inode_id], 0.0)
        weight = 1.0 + self._weights[file.inode_id] * self._decay(elapsed)
        self._weights[file.inode_id] = weight
        self._updated[file.inode_id] = now
        return weight

    def effective(self, file: INodeFile, now: float) -> float:
        """The decayed weight as of ``now`` (no mutation)."""
        if file.inode_id not in self._weights:
            return 0.0
        elapsed = max(now - self._updated[file.inode_id], 0.0)
        return self._weights[file.inode_id] * self._decay(elapsed)


class LrfuWeights(_WeightTracker):
    """Formula 1: hyperbolic decay with half-life ``H``."""

    def __init__(self, half_life: float = DEFAULT_LRFU_HALF_LIFE) -> None:
        super().__init__()
        if half_life <= 0:
            raise ValueError("half life must be positive")
        self.half_life = float(half_life)

    def _decay(self, elapsed: float) -> float:
        return self.half_life / (elapsed + self.half_life)


class ExdWeights(_WeightTracker):
    """Formula 2: exponential decay with rate ``alpha`` (per second)."""

    def __init__(self, alpha: float = DEFAULT_EXD_ALPHA) -> None:
        super().__init__()
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        self.alpha = float(alpha)

    def _decay(self, elapsed: float) -> float:
        return math.exp(-self.alpha * elapsed)
