"""SLRU-K: Big SQL's second caching algorithm (paper Sec 2.1, [16]).

Where EXD collapses recency and frequency into one exponentially-decayed
weight, SLRU-K keeps the last K access times per file and ranks files by
their *backward K-distance* — the age of the K-th most recent access.
Files accessed fewer than K times have infinite distance and are evicted
first (ranked among themselves by plain recency), which is what makes
LRU-K famously scan-resistant: one touch is not enough to look valuable.

Like EXD in Big SQL, SLRU-K drives both sides:

* :class:`SlruKDowngradePolicy` evicts the file with the largest
  backward K-distance;
* :class:`SlruKUpgradePolicy` admits an accessed file only when memory
  has room, or when the file is strictly K-younger than every resident
  it would displace.

Both reuse the last-``k`` access times the statistics registry already
keeps for the feature pipeline (Sec 4.1), so the policy adds no
per-file state of its own.
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.cluster.hardware import TierSpec
from repro.dfs.namespace import INodeFile
from repro.core.context import PolicyContext
from repro.core.policy import DowngradePolicy, UpgradePolicy
from repro.core.stats import FileStatistics

#: Big SQL's default history depth.
DEFAULT_K = 2


def backward_k_distance(
    stats: FileStatistics, now: float, k: int
) -> float:
    """Age of the K-th most recent access; infinite below K accesses."""
    times = stats.access_times
    if len(times) >= k:
        return now - times[-k]
    return math.inf


def eviction_rank(stats: FileStatistics, now: float, k: int) -> Tuple[int, float]:
    """Sort key: higher ranks are evicted first.

    Files with infinite K-distance form the senior class (rank 1) and
    are ordered among themselves by idle time; fully K-accessed files
    (rank 0) are ordered by their finite K-distance.
    """
    distance = backward_k_distance(stats, now, k)
    if math.isinf(distance):
        return (1, stats.idle_time(now))
    return (0, distance)


class SlruKDowngradePolicy(DowngradePolicy):
    """Evict the file with the largest backward K-distance."""

    name = "slru-k"

    def __init__(self, ctx: PolicyContext, k: Optional[int] = None) -> None:
        super().__init__(ctx)
        self.k = k if k is not None else ctx.conf.get_int("slruk.k", DEFAULT_K)
        if self.k < 1:
            raise ValueError("slruk.k must be >= 1")
        if self.k > ctx.stats.k:
            raise ValueError(
                f"slruk.k={self.k} exceeds the {ctx.stats.k} access times "
                "the statistics registry retains (raise stats.k)"
            )

    def select_file_to_downgrade(self, tier: TierSpec) -> Optional[INodeFile]:
        candidates = self.ctx.files_on_tier(tier)
        if not candidates:
            return None
        now = self.ctx.now()
        stats = self.ctx.stats
        return max(
            candidates,
            key=lambda f: (
                eviction_rank(stats.get_or_create(f), now, self.k),
                -f.inode_id,
            ),
        )


class SlruKUpgradePolicy(UpgradePolicy):
    """Admit a file into memory only when it out-ranks the victims.

    On access of a file ``f`` without a memory replica: if memory can
    absorb ``f``, admit it.  Otherwise find the residents that would be
    evicted (largest K-distance first) until ``f`` fits, and admit only
    if ``f``'s own K-distance is strictly smaller than each victim's —
    i.e. caching ``f`` strictly improves the K-recency of the memory
    tier's contents.
    """

    name = "slru-k"

    def __init__(self, ctx: PolicyContext, k: Optional[int] = None) -> None:
        super().__init__(ctx)
        self.k = k if k is not None else ctx.conf.get_int("slruk.k", DEFAULT_K)
        if self.k < 1:
            raise ValueError("slruk.k must be >= 1")

    def start_upgrade(self, accessed_file: Optional[INodeFile]) -> bool:
        if accessed_file is None:
            return False
        top = self.ctx.highest_tier
        if self.ctx.file_in_tier_or_better(accessed_file, top):
            return False
        free = self.ctx.tier_free(top)
        if free >= accessed_file.size:
            return True
        now = self.ctx.now()
        stats = self.ctx.stats
        victims = self._victims(accessed_file.size - free, now)
        if victims is None:
            return False  # even evicting everything would not make room
        own_rank = eviction_rank(stats.get_or_create(accessed_file), now, self.k)
        return all(own_rank < rank for _, rank in victims)

    def _victims(
        self, needed: int, now: float
    ) -> Optional[List[Tuple[INodeFile, Tuple[int, float]]]]:
        """Residents that would leave, most evictable first; None = no fit."""
        stats = self.ctx.stats
        blocks = self.ctx.master.blocks
        residents = sorted(
            self.ctx.files_on_tier(self.ctx.highest_tier),
            key=lambda f: (
                eviction_rank(stats.get_or_create(f), now, self.k),
                -f.inode_id,
            ),
            reverse=True,
        )
        victims: List[Tuple[INodeFile, Tuple[int, float]]] = []
        reclaimed = 0
        for resident in residents:
            rank = eviction_rank(stats.get_or_create(resident), now, self.k)
            victims.append((resident, rank))
            reclaimed += blocks.file_bytes_on_tier(resident, self.ctx.highest_tier)
            if reclaimed >= needed:
                return victims
        return None
