"""Online training-data generation for the access models (Sec 4.2).

The trainer owns the two :class:`FileAccessModel` instances (upgrade,
30-minute window; downgrade, 6-hour window) and feeds them training
points from two sources:

* **after every file access** — a point for the accessed file, whose
  label is positive by construction (the access just happened inside the
  class window), ensuring a supply of positive examples;
* **periodically** — points for a random sample of all files, supplying
  the negative/mixed examples that teach the models what "cold" looks
  like.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.common.config import Configuration
from repro.common.units import MINUTES, HOURS
from repro.dfs.namespace import INodeFile
from repro.core.stats import FileStatistics, StatisticsRegistry
from repro.ml.access_model import FileAccessModel
from repro.ml.features import FeatureSpec
from repro.sim.simulator import PeriodicTimer, Simulator


class AccessModelTrainer:
    """Feeds observations into the upgrade and downgrade access models."""

    #: Optional decision tracer (:class:`repro.obs.trace.Tracer`),
    #: installed by the runner when ``obs.trace`` is set; ``None`` keeps
    #: the sampling pass free of any tracing work.
    tracer = None

    def __init__(
        self,
        sim: Simulator,
        stats: StatisticsRegistry,
        conf: Optional[Configuration] = None,
        upgrade_model: Optional[FileAccessModel] = None,
        downgrade_model: Optional[FileAccessModel] = None,
        seed: int = 11,
        spec: Optional[FeatureSpec] = None,
    ) -> None:
        conf = conf if conf is not None else Configuration()
        self.sim = sim
        self.stats = stats
        upgrade_window = conf.get_duration("xgb.upgrade_window", 30 * MINUTES)
        # The paper suggests e.g. 6 hours for the downgrade window
        # (Sec 4.4), but a window as long as the whole trace cannot
        # generate any training data inside it (reference time would
        # precede every file's creation); 1 hour preserves the intent —
        # "will this file stay cold for a while" — at trace scale.
        downgrade_window = conf.get_duration("xgb.downgrade_window", 1 * HOURS)
        self.upgrade_model = upgrade_model or FileAccessModel(
            window=upgrade_window, spec=spec
        )
        self.downgrade_model = downgrade_model or FileAccessModel(
            window=downgrade_window, spec=spec
        )
        self.sample_size = conf.get_int("trainer.sample_size", 100)
        self.interval = conf.get_duration("trainer.interval", 5 * MINUTES)
        self._rng = np.random.default_rng(seed)
        self.points_generated = 0
        self._timer = PeriodicTimer(
            sim, self.interval, self.sample_files, name="model-trainer"
        )

    # -- event-driven positives ---------------------------------------------
    def on_access(self, file: INodeFile) -> None:
        """Generate a (positive) training point right after an access."""
        stats = self.stats.get(file)
        if stats is None:
            return
        now = self.sim.now()
        for model in (self.upgrade_model, self.downgrade_model):
            point = model.add_observation(
                stats.size, stats.creation_time, list(stats.access_times), now,
                tier_level=self._tier_level_at(model, stats, now),
            )
            if point is not None:
                self.points_generated += 1

    # -- periodic sampling ------------------------------------------------------
    def sample_files(self) -> None:
        """Generate training points for a random sample of tracked files."""
        all_stats = self.stats.all()
        if not all_stats:
            return
        count = min(self.sample_size, len(all_stats))
        picks = self._rng.choice(len(all_stats), size=count, replace=False)
        now = self.sim.now()
        for index in picks:
            stats = all_stats[int(index)]
            for model in (self.upgrade_model, self.downgrade_model):
                point = model.add_observation(
                    stats.size, stats.creation_time, list(stats.access_times), now,
                    tier_level=self._tier_level_at(model, stats, now),
                )
                if point is not None:
                    self.points_generated += 1
        if self.tracer is not None:
            self.tracer.emit(
                "retrain", sampled=count, points=self.points_generated
            )

    @staticmethod
    def _tier_level_at(
        model: FileAccessModel, stats: FileStatistics, now: float
    ) -> Optional[int]:
        """Tier level as of the model's reference time ``now - window``.

        Uses the level recorded at the last access at or before the
        reference time, so the feature carries no information from the
        label window — feeding the *current* tier would leak the upgrade
        policy's own reaction to in-window accesses into the label.
        """
        if not model.spec.include_tier:
            return None
        return stats.tier_level_at(now - model.window)

    def stop(self) -> None:
        self._timer.stop()
