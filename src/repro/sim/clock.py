"""Clock abstractions.

Components that only need to *read* the current time depend on the
:class:`Clock` protocol rather than the full simulator, which keeps them
testable with a :class:`ManualClock`.
"""

from __future__ import annotations


class Clock:
    """Read-only view of simulated time (seconds since simulation start)."""

    def now(self) -> float:
        """Return the current simulation time in seconds."""
        raise NotImplementedError


class ManualClock(Clock):
    """A clock advanced explicitly by tests."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> None:
        """Move the clock forward by ``delta`` seconds (must be >= 0)."""
        if delta < 0:
            raise ValueError("cannot move time backwards")
        self._now += delta

    def set(self, timestamp: float) -> None:
        """Jump the clock to ``timestamp`` (must not go backwards)."""
        if timestamp < self._now:
            raise ValueError("cannot move time backwards")
        self._now = float(timestamp)
