"""The discrete-event simulator.

Events are ``(time, sequence, callback)`` triples in a binary heap; the
sequence number breaks ties so same-timestamp events run in scheduling
order (FIFO), which makes runs fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional

from repro.common.errors import SimulationError
from repro.sim.clock import Clock


@dataclass(order=True)
class Event:
    """A scheduled callback.  Ordering is by (time, seq)."""

    time: float
    seq: int
    callback: Callable[[], Any] = field(compare=False)
    name: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        self.cancelled = True


class Simulator(Clock):
    """Event loop with a simulated clock.

    The simulator is also a :class:`Clock`, so components can hold a
    reference to it purely for ``now()``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0

    # -- Clock ------------------------------------------------------------
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for tests/diagnostics)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of events still queued (including cancelled ones)."""
        return len(self._heap)

    # -- scheduling --------------------------------------------------------
    def at(self, time: float, callback: Callable[[], Any], name: str = "") -> Event:
        """Schedule ``callback`` at absolute simulation ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        event = Event(time=time, seq=next(self._seq), callback=callback, name=name)
        heapq.heappush(self._heap, event)
        return event

    def after(
        self, delay: float, callback: Callable[[], Any], name: str = ""
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self._now + delay, callback, name)

    # -- running ------------------------------------------------------------
    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Drain the event queue.  Returns the number of callbacks executed.

        ``until`` stops the loop once the next event would be later than the
        given time (the clock is then advanced exactly to ``until``).
        ``max_events`` guards against runaway loops in tests.  The guard
        counts *executed callbacks* only: cancelled events — whether
        skipped by this loop or popped inside :meth:`step` — never
        consume budget, so ``run(max_events=n)`` always permits ``n``
        real callbacks regardless of how many tombstones the heap holds.
        """
        executed = 0
        while self._heap:
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            if max_events is not None and executed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            if self.step():
                executed += 1
        if until is not None and until > self._now:
            self._now = until
        return executed


class PeriodicTimer:
    """Re-schedules a callback every ``interval`` seconds until stopped.

    Mirrors daemon threads in the real system (e.g. the Replication
    Monitor's periodic scan).  The callback runs first at
    ``start_delay`` (default: one full interval) after creation.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        name: str = "timer",
        start_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError("interval must be positive")
        self._sim = sim
        self._interval = float(interval)
        self._callback = callback
        self._name = name
        self._stopped = False
        self._event: Optional[Event] = None
        delay = interval if start_delay is None else start_delay
        self._schedule(delay)

    def _schedule(self, delay: float) -> None:
        self._event = self._sim.after(delay, self._fire, name=self._name)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._schedule(self._interval)

    def stop(self) -> None:
        """Cancel the timer; the callback will not run again."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped
