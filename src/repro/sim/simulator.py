"""The discrete-event simulator.

Events are ``(time, sequence, callback)`` entries in a binary heap; the
sequence number breaks ties so same-timestamp events run in scheduling
order (FIFO), which makes runs fully deterministic.

Cancellation is lazy: :meth:`Event.cancel` marks the entry and the run
loop skips it when popped.  Under workloads that cancel heavily (the
fair-share I/O engine reschedules in-flight completions on every flow
start/finish) tombstones would otherwise dominate the heap and tax every
push/pop with extra ``log n`` depth, so the simulator counts live
tombstones and amortizes an O(n) compaction — filter out cancelled
entries and re-heapify — whenever they outnumber the live events.
Compaction preserves the (time, seq) order exactly, so execution is
bit-identical with or without it.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional

from repro.common.errors import SimulationError
from repro.sim.clock import Clock

#: Never compact below this many tombstones: tiny heaps gain nothing
#: and re-heapifying them on every cancel would be pure overhead.
_COMPACT_MIN_TOMBSTONES = 64


class Event:
    """A scheduled callback.  Heap ordering is by (time, priority, seq).

    ``priority`` defaults to 0 everywhere, in which case ordering
    reduces to the classic (time, seq) FIFO — bit-identical to the
    pre-priority behaviour.  The streaming workload pump schedules trace
    events at priority -1 so they win same-timestamp ties against
    system events exactly as eagerly pre-scheduled trace events do (pre-
    scheduling gives them the lowest sequence numbers; a lazily pumped
    event needs the explicit priority to claim the same slot).
    """

    __slots__ = ("time", "seq", "callback", "name", "cancelled", "priority", "_sim")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], Any],
        name: str = "",
        sim: Optional["Simulator"] = None,
        priority: int = 0,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.name = name
        self.cancelled = False
        self.priority = priority
        # Back-reference used for tombstone accounting; cleared when the
        # event leaves the heap so late cancels don't skew the counter.
        self._sim = sim

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        if self.priority != other.priority:
            return self.priority < other.priority
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        if self._sim is not None:
            self._sim._note_cancel()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"Event(t={self.time}, seq={self.seq}, {self.name!r}{state})"


class Simulator(Clock):
    """Event loop with a simulated clock.

    The simulator is also a :class:`Clock`, so components can hold a
    reference to it purely for ``now()``.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        #: Cancelled events still sitting in the heap.
        self._tombstones = 0
        #: Cumulative counters (diagnostics / benchmarks).
        self.events_cancelled = 0
        self.heap_compactions = 0
        #: Peak raw heap length ever reached (tombstones included) —
        #: the event-queue-depth half of the back-pressure picture.
        self.max_heap_size = 0

    # -- Clock ------------------------------------------------------------
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks executed so far (for tests/diagnostics)."""
        return self._events_processed

    @property
    def pending(self) -> int:
        """Number of *live* events still queued.

        Cancelled events awaiting garbage collection in the heap are not
        counted: ``pending == 0`` means nothing will ever run again.
        """
        return len(self._heap) - self._tombstones

    @property
    def heap_size(self) -> int:
        """Raw heap length, tombstones included (diagnostics only)."""
        return len(self._heap)

    def stats(self) -> dict:
        """Point-in-time engine introspection (JSON-safe scalars).

        The shared core-counter view consumed by the service control
        plane and the telemetry exporters; engine subclasses extend it
        with representation-specific gauges (see
        :meth:`repro.sim.fastsim.FastSimulator.stats`).
        """
        return {
            "now": self._now,
            "events_processed": self._events_processed,
            "events_cancelled": self.events_cancelled,
            "pending": self.pending,
            "heap_size": len(self._heap),
            "heap_peak": self.max_heap_size,
            "heap_compactions": self.heap_compactions,
        }

    # -- scheduling --------------------------------------------------------
    def at(
        self,
        time: float,
        callback: Callable[[], Any],
        name: str = "",
        priority: int = 0,
    ) -> Event:
        """Schedule ``callback`` at absolute simulation ``time``.

        Lower ``priority`` runs first among same-time events; the
        default 0 preserves FIFO scheduling order.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        event = Event(time, next(self._seq), callback, name, self, priority)
        heappush(self._heap, event)
        if len(self._heap) > self.max_heap_size:
            self.max_heap_size = len(self._heap)
        return event

    def after(
        self, delay: float, callback: Callable[[], Any], name: str = ""
    ) -> Event:
        """Schedule ``callback`` after ``delay`` seconds (>= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay}")
        return self.at(self._now + delay, callback, name)

    # -- tombstone accounting ----------------------------------------------
    def _note_cancel(self) -> None:
        self.events_cancelled += 1
        self._tombstones += 1
        if (
            self._tombstones >= _COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (order-preserving).

        Mutates the heap list in place so that callers holding a local
        binding to it (the :meth:`run` drain loop) stay valid.
        """
        self._heap[:] = [e for e in self._heap if not e.cancelled]
        heapify(self._heap)
        self._tombstones = 0
        self.heap_compactions += 1

    def _pop(self) -> Event:
        event = heappop(self._heap)
        if event.cancelled:
            self._tombstones -= 1
        event._sim = None
        return event

    # -- running ------------------------------------------------------------
    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        while self._heap:
            event = self._pop()
            if event.cancelled:
                continue
            self._now = event.time
            self._events_processed += 1
            event.callback()
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Drain the event queue.  Returns the number of callbacks executed.

        ``until`` stops the loop once the next event would be later than the
        given time (the clock is then advanced exactly to ``until``).
        ``max_events`` guards against runaway loops in tests.  The guard
        counts *executed callbacks* only: cancelled events — whether
        skipped by this loop or popped inside :meth:`step` — never
        consume budget, so ``run(max_events=n)`` always permits ``n``
        real callbacks regardless of how many tombstones the heap holds.
        """
        executed = 0
        # The drain loop is the single hottest frame of every run;
        # binding the heap and heappop locally and inlining step()'s pop
        # saves an attribute lookup and a method call per event.  The
        # heap list itself is stable: _compact() mutates it in place.
        heap = self._heap
        pop = heappop
        while heap:
            head = heap[0]
            if head.cancelled:
                pop(heap)
                self._tombstones -= 1
                head._sim = None
                continue
            if until is not None and head.time > until:
                break
            if max_events is not None and executed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            pop(heap)
            head._sim = None
            self._now = head.time
            self._events_processed += 1
            head.callback()
            executed += 1
        if until is not None and until > self._now:
            self._now = until
        return executed


class PeriodicTimer:
    """Re-schedules a callback every ``interval`` seconds until stopped.

    Mirrors daemon threads in the real system (e.g. the Replication
    Monitor's periodic scan).  The callback runs first at
    ``start_delay`` (default: one full interval) after creation.
    """

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[[], Any],
        name: str = "timer",
        start_delay: Optional[float] = None,
    ) -> None:
        if interval <= 0:
            raise SimulationError("interval must be positive")
        self._sim = sim
        self._interval = float(interval)
        self._callback = callback
        self._name = name
        self._stopped = False
        self._event: Optional[Event] = None
        delay = interval if start_delay is None else start_delay
        self._schedule(delay)

    def _schedule(self, delay: float) -> None:
        self._event = self._sim.after(delay, self._fire, name=self._name)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback()
        if not self._stopped:
            self._schedule(self._interval)

    def stop(self) -> None:
        """Cancel the timer; the callback will not run again."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    @property
    def stopped(self) -> bool:
        return self._stopped
