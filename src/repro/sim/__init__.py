"""Discrete-event simulation kernel.

A tiny but complete event-driven simulator: a priority queue of timestamped
events, a clock, and helpers for periodic timers.  Every time-dependent
component of the reproduction (the DFS, the replication monitor, the task
scheduler, the workload replayer) is driven off one shared
:class:`Simulator` instance so that causality is globally consistent.
"""

from repro.sim.clock import Clock, ManualClock
from repro.sim.simulator import Event, PeriodicTimer, Simulator

__all__ = ["Clock", "ManualClock", "Event", "PeriodicTimer", "Simulator"]
