"""Slab-allocated event loop: the opt-in fast simulation core.

:class:`FastSimulator` keeps the exact execution semantics of
:class:`~repro.sim.simulator.Simulator` — events run in (time, priority,
seq) order, cancellation is lazy with tombstone counting and amortized
compaction — but stores the event queue as plain tuples over
slab-allocated parallel arrays instead of one Python ``Event`` object
per heap entry:

* The binary heap holds ``(time, priority, seq, slot)`` tuples, so heap
  sift comparisons run entirely in C (tuple comparison) instead of
  calling ``Event.__lt__`` once or twice per level.
* Callback/liveness state lives in preallocated parallel lists indexed
  by ``slot``; slots are recycled through a free list, so a steady-state
  run allocates no per-event storage at all.
* Each slot carries a generation counter, bumped on every recycle.  A
  handle's ``cancel()`` is ignored unless its generation still matches,
  which makes cancel-after-pop safe under slot reuse (e.g. a
  ``PeriodicTimer`` stopped from inside its own callback while a new
  event already occupies the slot).

Scheduling still returns a handle object (:class:`FastEvent`) because
callers hold it to cancel or inspect (``flows.py`` checks ``.time`` and
``.cancelled`` before rescheduling a completion) — but the handle never
enters the heap, so the hot pop/push path never touches it.

Ordering is bit-identical to the reference simulator: seq numbers are
unique, so the tuple order ``(time, priority, seq)`` is the same total
order as ``Event.__lt__`` and the ``slot`` element is never compared.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from typing import Any, Callable, List, Optional

from repro.common.errors import SimulationError
from repro.sim.simulator import Simulator

#: Slots added per slab growth (then doubling); sized so a typical run
#: grows the slab a handful of times and then recycles forever.
_SLAB_CHUNK = 1024

#: Same compaction floor as the reference simulator.
_COMPACT_MIN_TOMBSTONES = 64


class FastEvent:
    """Cancellation handle for a slab-scheduled event.

    Mirrors the parts of :class:`~repro.sim.simulator.Event` that
    engine code consumes (``time``, ``cancelled``, ``cancel()``); the
    heavy state (callback, liveness) lives in the simulator's slabs.
    """

    __slots__ = ("time", "cancelled", "_slot", "_gen", "_sim")

    def __init__(self, time: float, slot: int, gen: int, sim: "FastSimulator") -> None:
        self.time = time
        self.cancelled = False
        self._slot = slot
        self._gen = gen
        self._sim = sim

    def cancel(self) -> None:
        """Mark the event so the simulator skips it when popped."""
        if self.cancelled:
            return
        self.cancelled = True
        self._sim._cancel_slot(self._slot, self._gen)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"FastEvent(t={self.time}, slot={self._slot}{state})"


class FastSimulator(Simulator):
    """Drop-in :class:`Simulator` with slab-allocated event storage.

    Public surface (``at``/``after``/``step``/``run``, the clock, and
    every diagnostic counter) matches the reference simulator; only the
    internal representation differs.  Execution order and tombstone /
    compaction accounting are bit-identical.
    """

    def __init__(self, start: float = 0.0) -> None:
        super().__init__(start)
        # The reference heap holds Event objects; ours holds tuples.
        # Slabs: parallel per-slot arrays, grown in chunks.
        self._heap: List[tuple] = []
        self._slab_callback: List[Optional[Callable[[], Any]]] = []
        self._slab_live: List[bool] = []
        self._slab_gen: List[int] = []
        self._free: List[int] = []
        self._seq_next = 0

    # -- slab bookkeeping ---------------------------------------------------
    def _grow_slab(self) -> None:
        base = len(self._slab_callback)
        chunk = max(_SLAB_CHUNK, base)
        self._slab_callback.extend([None] * chunk)
        self._slab_live.extend([False] * chunk)
        self._slab_gen.extend([0] * chunk)
        # LIFO free list: hand out low slots first for cache locality.
        self._free.extend(range(base + chunk - 1, base - 1, -1))

    def _free_slot(self, slot: int) -> None:
        """Recycle ``slot``: bump its generation and clear its state."""
        self._slab_gen[slot] += 1
        self._slab_callback[slot] = None
        self._slab_live[slot] = False
        self._free.append(slot)

    @property
    def slab_capacity(self) -> int:
        """Total slots ever allocated (diagnostics / tests)."""
        return len(self._slab_callback)

    def stats(self) -> dict:
        """Core counters plus slab-allocator gauges (occupancy, growth)."""
        stats = super().stats()
        stats["slab_capacity"] = len(self._slab_callback)
        stats["slab_free"] = len(self._free)
        return stats

    # -- scheduling ---------------------------------------------------------
    def at(
        self,
        time: float,
        callback: Callable[[], Any],
        name: str = "",
        priority: int = 0,
    ) -> FastEvent:
        """Schedule ``callback`` at absolute simulation ``time``.

        Same contract as the reference simulator; ``name`` is accepted
        for API compatibility but not stored (it is debugging-only).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        free = self._free
        if not free:
            self._grow_slab()
        slot = free.pop()
        self._slab_callback[slot] = callback
        self._slab_live[slot] = True
        seq = self._seq_next
        self._seq_next = seq + 1
        heappush(self._heap, (time, priority, seq, slot))
        if len(self._heap) > self.max_heap_size:
            self.max_heap_size = len(self._heap)
        return FastEvent(time, slot, self._slab_gen[slot], self)

    # -- tombstone accounting -----------------------------------------------
    def _cancel_slot(self, slot: int, gen: int) -> None:
        if self._slab_gen[slot] != gen:
            return  # already popped (and possibly recycled): late no-op
        self._slab_live[slot] = False
        self.events_cancelled += 1
        self._tombstones += 1
        if (
            self._tombstones >= _COMPACT_MIN_TOMBSTONES
            and self._tombstones * 2 > len(self._heap)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (order-preserving)."""
        live = self._slab_live
        kept = []
        for entry in self._heap:
            if live[entry[3]]:
                kept.append(entry)
            else:
                self._free_slot(entry[3])
        self._heap[:] = kept
        heapify(self._heap)
        self._tombstones = 0
        self.heap_compactions += 1

    # -- running ------------------------------------------------------------
    def step(self) -> bool:
        """Run the next event.  Returns False when the queue is empty."""
        heap = self._heap
        live = self._slab_live
        while heap:
            time_, _priority, _seq, slot = heappop(heap)
            if not live[slot]:
                self._tombstones -= 1
                self._free_slot(slot)
                continue
            callback = self._slab_callback[slot]
            self._free_slot(slot)
            self._now = time_
            self._events_processed += 1
            callback()
            return True
        return False

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> int:
        """Drain the event queue; same contract as the reference loop."""
        executed = 0
        heap = self._heap
        live = self._slab_live
        callbacks = self._slab_callback
        pop = heappop
        while heap:
            head = heap[0]
            slot = head[3]
            if not live[slot]:
                pop(heap)
                self._tombstones -= 1
                self._free_slot(slot)
                continue
            if until is not None and head[0] > until:
                break
            if max_events is not None and executed >= max_events:
                raise SimulationError(f"exceeded max_events={max_events}")
            pop(heap)
            callback = callbacks[slot]
            self._free_slot(slot)
            self._now = head[0]
            self._events_processed += 1
            callback()
            executed += 1
        if until is not None and until > self._now:
            self._now = until
        return executed
