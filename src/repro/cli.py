"""Command-line interface: run workloads and regenerate experiments.

Usage::

    python -m repro simulate --workload FB --downgrade xgb --upgrade xgb
    python -m repro experiment fig06 fig07
    python -m repro synthesize --workload CMU --out cmu.json
    python -m repro list-experiments

The ``experiment`` subcommand maps directly onto the per-figure runners
in :mod:`repro.experiments`, printing the same text tables the benchmark
harness emits.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, Tuple

from repro.cluster.hardware import get_hierarchy, hierarchy_names
from repro.common.units import GB
from repro.engine.iomodel import IO_MODEL_NAMES
from repro.engine.runner import SystemConfig
from repro.workload.profiles import PROFILES, scaled_profile
from repro.workload.synthesis import synthesize_trace


def _experiment_registry() -> Dict[str, Tuple[Callable[[], object], Callable]]:
    """Lazy imports keep CLI startup fast."""
    from repro.experiments import ablations as ab
    from repro.experiments import autocache as ac
    from repro.experiments import downgrade_only as dg
    from repro.experiments import endtoend as ee
    from repro.experiments import extended_policies as ep
    from repro.experiments import fault_tolerance as ft
    from repro.experiments import fig02_dfsio as f2
    from repro.experiments import fig05_cdfs as f5
    from repro.experiments import learning_modes as lm
    from repro.experiments import model_eval as me
    from repro.experiments import overheads as oh
    from repro.experiments import scalability as sc
    from repro.experiments import table03_bins as t3
    from repro.experiments import tuning as tu
    from repro.experiments import upgrade_only as ug

    def endtoend_fb():
        return ee.run_endtoend("FB")

    def endtoend_cmu():
        return ee.run_endtoend("CMU")

    return {
        "fig02": (f2.run_fig02, f2.render_fig02),
        "table03": (t3.run_table03, t3.render_table03),
        "fig05": (f5.run_fig05, f5.render_fig05),
        "fig06": (endtoend_fb, ee.render_fig06),
        "fig06-cmu": (endtoend_cmu, ee.render_fig06),
        "fig07": (endtoend_fb, ee.render_fig07),
        "fig07-cmu": (endtoend_cmu, ee.render_fig07),
        "fig08": (endtoend_fb, ee.render_fig08),
        "fig09": (endtoend_fb, ee.render_fig09),
        "fig10": (dg.run_downgrade_only, dg.render_fig10),
        "fig11": (dg.run_downgrade_only, dg.render_fig11),
        "fig12": (ug.run_upgrade_only, ug.render_fig12),
        "table04": (ug.run_upgrade_only, ug.render_table04),
        "fig13": (sc.run_fig13, sc.render_fig13),
        "fig14": (me.run_fig14, me.render_fig14),
        "fig15": (me.run_fig15, me.render_fig15),
        "fig16": (lm.run_fig16, lm.render_fig16),
        "fig17": (lm.run_fig17, lm.render_fig17),
        "overheads": (oh.run_overheads, oh.render_overheads),
        "ablation-thresholds": (
            ab.run_threshold_sweep,
            lambda r: ab.render_ablation(r, "Downgrade threshold sweep"),
        ),
        "ablation-candidates": (
            ab.run_candidate_sweep,
            lambda r: ab.render_ablation(r, "XGB candidate width sweep"),
        ),
        "tuning": (tu.run_tuning, tu.render_tuning),
        "autocache": (ac.run_autocache, ac.render_autocache),
        "fault-tolerance": (
            ft.run_fault_tolerance,
            ft.render_fault_tolerance,
        ),
        "extended-policies": (
            ep.run_extended_policies,
            ep.render_extended_policies,
        ),
    }


def cmd_list_experiments(_args: argparse.Namespace) -> int:
    for name in sorted(_experiment_registry()):
        print(name)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    registry = _experiment_registry()
    cache: Dict[int, object] = {}
    for name in args.names:
        if name not in registry:
            print(f"unknown experiment {name!r}; try list-experiments", file=sys.stderr)
            return 2
        runner, renderer = registry[name]
        key = id(runner)
        if key not in cache:
            cache[key] = runner()
        print(renderer(cache[key]))
        print()
    return 0


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.engine.runner import WorkloadRunner

    profile = scaled_profile(PROFILES[args.workload], args.scale)
    trace = synthesize_trace(profile, seed=args.seed)
    conf = {}
    if args.outages:
        conf["monitor.health_checks_enabled"] = True
    config = SystemConfig(
        label=f"{args.placement}/{args.downgrade}/{args.upgrade}",
        placement=args.placement,
        downgrade=args.downgrade,
        upgrade=args.upgrade,
        workers=args.workers,
        tiers=args.tiers,
        io_model=args.io_model,
        cache_mode=args.cache_mode,
        tier_aware_scheduler=args.tier_aware,
        conf=conf,
    )
    runner = WorkloadRunner(trace, config)
    if args.outages:
        from repro.dfs.faults import FaultInjector

        injector = FaultInjector(runner.sim, runner.master, runner.scheduler)
        injector.schedule_random_outages(
            count=args.outages,
            start=0.15 * trace.duration,
            end=0.75 * trace.duration,
            downtime=1800.0,
            seed=args.seed,
        )
    wall_start = time.perf_counter()
    result = runner.run()
    wall = time.perf_counter() - wall_start
    if args.outages:
        print(
            f"outages:          {injector.stats.failures} "
            f"(lost {injector.stats.replicas_lost} replicas, "
            "repaired "
            f"{runner.manager.monitor.replicas_repaired if runner.manager else 0})"
        )
    print(f"jobs finished:    {result.jobs_finished}/{len(trace.jobs)}")
    print(f"hit ratio:        {result.metrics.hit_ratio():.3f}")
    print(f"byte hit ratio:   {result.metrics.byte_hit_ratio():.3f}")
    print(f"task hours:       {result.metrics.total_task_seconds() / 3600:.2f}")
    print(f"upgraded to mem:  {result.bytes_upgraded_memory / GB:.2f} GB")
    print(f"downgraded:       {result.bytes_downgraded_memory / GB:.2f} GB")
    if args.tiers != "default3" and result.bytes_downgraded_by_tier:
        hierarchy = get_hierarchy(args.tiers)
        for tier in hierarchy:
            up = result.bytes_upgraded_by_tier.get(tier.name, 0)
            down = result.bytes_downgraded_by_tier.get(tier.name, 0)
            print(
                f"  tier {tier.name:<7} upgraded-in {up / GB:6.2f} GB, "
                f"downgraded-out {down / GB:6.2f} GB"
            )
    for name, bin_metrics in result.metrics.bins.items():
        if bin_metrics.jobs_completed:
            print(
                f"  bin {name}: {bin_metrics.jobs_completed:4d} jobs, "
                f"mean completion {bin_metrics.mean_completion_time:.1f}s"
            )
    if args.perf:
        sim = runner.sim
        print("-- engine performance " + "-" * 30)
        print(f"wall clock:       {wall:.3f} s")
        print(f"events processed: {sim.events_processed}")
        print(f"events/second:    {sim.events_processed / wall:,.0f}")
        print(f"events cancelled: {sim.events_cancelled}")
        print(f"heap compactions: {sim.heap_compactions}")
        print(f"live pending:     {sim.pending} (heap {sim.heap_size})")
        io_stats = result.io_stats
        if io_stats.get("model") == "fairshare":
            print(f"flow recomputes:  {io_stats['recomputes']}")
            print(f"peak concurrency: {io_stats['peak_concurrency']}")
            print(f"max component:    {io_stats['max_component']}")
            print(f"vector solves:    {io_stats['vector_solves']}")
            print(f"rescheduled:      {io_stats['events_rescheduled']}")
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.workload.serialize import save_trace

    profile = scaled_profile(PROFILES[args.workload], args.scale)
    trace = synthesize_trace(profile, seed=args.seed)
    save_trace(trace, args.out)
    print(
        f"wrote {args.out}: {len(trace.jobs)} jobs, {trace.file_count} files, "
        f"{trace.total_bytes / GB:.1f} GB"
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="Octopus++ reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list-experiments", help="list experiment names")
    p_list.set_defaults(func=cmd_list_experiments)

    p_exp = sub.add_parser("experiment", help="run experiments by name")
    p_exp.add_argument("names", nargs="+")
    p_exp.set_defaults(func=cmd_experiment)

    p_sim = sub.add_parser("simulate", help="run one workload configuration")
    p_sim.add_argument("--workload", choices=sorted(PROFILES), default="FB")
    p_sim.add_argument("--placement", default="octopus")
    p_sim.add_argument("--downgrade", default=None)
    p_sim.add_argument("--upgrade", default=None)
    p_sim.add_argument("--workers", type=int, default=11)
    p_sim.add_argument(
        "--tiers",
        choices=hierarchy_names(),
        default="default3",
        help="tier hierarchy preset (default3 = the paper's memory/SSD/HDD)",
    )
    p_sim.add_argument(
        "--io-model",
        choices=IO_MODEL_NAMES,
        default="snapshot",
        help=(
            "I/O pricing: snapshot = price once at operation start "
            "(pre-flow behaviour, bit-identical); fairshare = max-min "
            "fair re-pricing with shared remote-endpoint/rack resources"
        ),
    )
    p_sim.add_argument("--scale", type=float, default=1.0)
    p_sim.add_argument("--seed", type=int, default=42)
    p_sim.add_argument(
        "--cache-mode",
        action="store_true",
        help="AutoCache semantics: upgrades copy, downgrades delete",
    )
    p_sim.add_argument(
        "--tier-aware",
        action="store_true",
        help="tier-aware task scheduler (default: stock tier-unaware)",
    )
    p_sim.add_argument(
        "--outages",
        type=int,
        default=0,
        help="inject this many random 30-minute worker outages",
    )
    p_sim.add_argument(
        "--perf",
        action="store_true",
        help=(
            "print engine performance counters after the run "
            "(events/sec, heap compactions, flow re-solve statistics)"
        ),
    )
    p_sim.set_defaults(func=cmd_simulate)

    p_syn = sub.add_parser("synthesize", help="export a synthesized trace")
    p_syn.add_argument("--workload", choices=sorted(PROFILES), default="FB")
    p_syn.add_argument("--scale", type=float, default=1.0)
    p_syn.add_argument("--seed", type=int, default=42)
    p_syn.add_argument("--out", required=True)
    p_syn.set_defaults(func=cmd_synthesize)
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): not an error.
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
