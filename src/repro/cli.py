"""Command-line interface: run workloads, scenarios, and experiments.

Usage::

    python -m repro simulate --workload FB --downgrade xgb --upgrade xgb
    python -m repro scenario list
    python -m repro scenario stats diurnal --param tenants=5
    python -m repro scenario run flashcrowd --downgrade lru --upgrade osa
    python -m repro scenario run --events mytrace.jsonl.gz
    python -m repro scenario run fb --trace trace.jsonl --timeseries ts.json
    python -m repro scenario run compose --spec composition.json
    python -m repro fuzz --budget 50 --freeze-dir tests/regression_scenarios
    python -m repro trace summarize trace.jsonl
    python -m repro scenario run fb --out - | python -m repro live -
    python -m repro experiment fig06 fig07
    python -m repro experiment scenarios --jobs 4
    python -m repro sweep run --smoke --jobs 2 --out report.json
    python -m repro sweep run myspec.json --store sweeps --resume
    python -m repro synthesize --workload CMU --out cmu.json
    python -m repro list scenarios
    python -m repro list-experiments

The ``experiment`` subcommand maps directly onto the per-figure runners
in :mod:`repro.experiments`, printing the same text tables the benchmark
harness emits; ``scenario`` drives the streaming workload subsystem
(:mod:`repro.workload.scenarios`); ``live`` replays a JSONL event
stream arriving over a pipe, FIFO, or socket through the full system
online (:mod:`repro.workload.live`); ``sweep`` fans experiment matrices
across worker processes with a resumable results store
(:mod:`repro.sweep`); ``fuzz`` adversarially searches composed-scenario
space for policy pathologies and freezes found cases as regression
scenarios (:mod:`repro.workload.fuzz`); ``list`` enumerates every
pluggable dimension from one registry helper
(:mod:`repro.common.catalog`).
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import Any, Callable, Dict, Tuple

from repro.cluster.hardware import get_hierarchy, hierarchy_names
from repro.common.catalog import catalog
from repro.common.units import GB
from repro.engine.iomodel import IO_MODEL_NAMES
from repro.engine.runner import SystemConfig
from repro.workload.profiles import PROFILES, scaled_profile
from repro.workload.synthesis import synthesize_trace


def _experiment_registry(
    jobs: int = 1,
) -> Dict[str, Tuple[Callable[[], object], Callable]]:
    """Lazy imports keep CLI startup fast.

    ``jobs`` is threaded into the experiments that can fan their cells
    across worker processes (``scenarios``, ``tuning-presets`` — see
    :mod:`repro.sweep`); the per-figure reproductions stay serial.
    """
    from repro.experiments import ablations as ab
    from repro.experiments import autocache as ac
    from repro.experiments import downgrade_only as dg
    from repro.experiments import endtoend as ee
    from repro.experiments import extended_policies as ep
    from repro.experiments import fault_tolerance as ft
    from repro.experiments import fig02_dfsio as f2
    from repro.experiments import fig05_cdfs as f5
    from repro.experiments import learning_modes as lm
    from repro.experiments import model_eval as me
    from repro.experiments import overheads as oh
    from repro.experiments import preset_tuning as pt
    from repro.experiments import scalability as sc
    from repro.experiments import scenarios as sn
    from repro.experiments import table03_bins as t3
    from repro.experiments import tuning as tu
    from repro.experiments import upgrade_only as ug

    def endtoend_fb():
        return ee.run_endtoend("FB")

    def endtoend_cmu():
        return ee.run_endtoend("CMU")

    return {
        "fig02": (f2.run_fig02, f2.render_fig02),
        "table03": (t3.run_table03, t3.render_table03),
        "fig05": (f5.run_fig05, f5.render_fig05),
        "fig06": (endtoend_fb, ee.render_fig06),
        "fig06-cmu": (endtoend_cmu, ee.render_fig06),
        "fig07": (endtoend_fb, ee.render_fig07),
        "fig07-cmu": (endtoend_cmu, ee.render_fig07),
        "fig08": (endtoend_fb, ee.render_fig08),
        "fig09": (endtoend_fb, ee.render_fig09),
        "fig10": (dg.run_downgrade_only, dg.render_fig10),
        "fig11": (dg.run_downgrade_only, dg.render_fig11),
        "fig12": (ug.run_upgrade_only, ug.render_fig12),
        "table04": (ug.run_upgrade_only, ug.render_table04),
        "fig13": (sc.run_fig13, sc.render_fig13),
        "fig14": (me.run_fig14, me.render_fig14),
        "fig15": (me.run_fig15, me.render_fig15),
        "fig16": (lm.run_fig16, lm.render_fig16),
        "fig17": (lm.run_fig17, lm.render_fig17),
        "overheads": (oh.run_overheads, oh.render_overheads),
        "ablation-thresholds": (
            ab.run_threshold_sweep,
            lambda r: ab.render_ablation(r, "Downgrade threshold sweep"),
        ),
        "ablation-candidates": (
            ab.run_candidate_sweep,
            lambda r: ab.render_ablation(r, "XGB candidate width sweep"),
        ),
        "tuning": (tu.run_tuning, tu.render_tuning),
        "tuning-presets": (
            lambda: pt.run_preset_tuning(jobs=jobs),
            pt.render_preset_tuning,
        ),
        "autocache": (ac.run_autocache, ac.render_autocache),
        "fault-tolerance": (
            ft.run_fault_tolerance,
            ft.render_fault_tolerance,
        ),
        "extended-policies": (
            ep.run_extended_policies,
            ep.render_extended_policies,
        ),
        "scenarios": (
            lambda: sn.run_scenarios(jobs=jobs),
            sn.render_scenarios,
        ),
    }


def cmd_list_experiments(_args: argparse.Namespace) -> int:
    for name in sorted(_experiment_registry()):
        print(name)
    return 0


def cmd_experiment(args: argparse.Namespace) -> int:
    registry = _experiment_registry(jobs=args.jobs)
    cache: Dict[int, object] = {}
    for name in args.names:
        if name not in registry:
            print(f"unknown experiment {name!r}; try list-experiments", file=sys.stderr)
            return 2
        runner, renderer = registry[name]
        key = id(runner)
        if key not in cache:
            cache[key] = runner()
        print(renderer(cache[key]))
        print()
    return 0


def _coerce_param(value: str) -> Any:
    """Best-effort numeric coercion for ``--param key=value`` values."""
    for cast in (int, float):
        try:
            return cast(value)
        except ValueError:
            continue
    return value


def _parse_params(pairs) -> Dict[str, Any]:
    params: Dict[str, Any] = {}
    for pair in pairs or ():
        if "=" not in pair:
            raise SystemExit(f"--param expects key=value, got {pair!r}")
        key, value = pair.split("=", 1)
        params[key.strip()] = _coerce_param(value.strip())
    return params


def _system_config(args: argparse.Namespace, conf: Dict[str, Any]) -> SystemConfig:
    """Build a SystemConfig from the shared system flags."""
    return SystemConfig(
        label=f"{args.placement}/{args.downgrade}/{args.upgrade}",
        placement=args.placement,
        downgrade=args.downgrade,
        upgrade=args.upgrade,
        workers=args.workers,
        tiers=args.tiers,
        io_model=args.io_model,
        cache_mode=args.cache_mode,
        tier_aware_scheduler=args.tier_aware,
        preset=args.preset,
        engine_mode=args.engine,
        conf=conf,
    )


def _obs_conf(args: argparse.Namespace) -> Dict[str, Any]:
    """Configuration keys implied by the observability output flags.

    Tracing and sampling stay off (and the run bit-identical) unless an
    output file asks for them.
    """
    conf: Dict[str, Any] = {}
    if getattr(args, "trace", None) or getattr(args, "chrome_trace", None):
        conf["obs.trace"] = True
    if getattr(args, "timeseries", None):
        conf["obs.sample_interval"] = args.sample_interval
    return conf


def _export_obs(runner, args: argparse.Namespace) -> None:
    """Write the trace/timeseries outputs requested on the command line."""
    tracer = getattr(runner, "tracer", None)
    if tracer is not None and getattr(args, "trace", None):
        from repro.obs.export import write_jsonl

        count = write_jsonl(tracer.records, args.trace)
        print(f"wrote {count} trace records to {args.trace}", file=sys.stderr)
    if tracer is not None and getattr(args, "chrome_trace", None):
        from repro.obs.export import write_chrome

        count = write_chrome(tracer.records, args.chrome_trace)
        print(
            f"wrote {count} chrome trace events to {args.chrome_trace}",
            file=sys.stderr,
        )
    timeseries = getattr(runner, "timeseries", None)
    if timeseries is not None and getattr(args, "timeseries", None):
        import json

        payload = timeseries.to_dict()
        with open(args.timeseries, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        print(
            f"wrote {len(payload['t'])} timeseries samples to {args.timeseries}",
            file=sys.stderr,
        )


def _timed_run(runner, args: argparse.Namespace):
    """Execute ``runner.run()``; returns (result, wall seconds).

    With ``--profile`` the run happens under :mod:`cProfile` and the
    hottest functions (by cumulative time) are printed first, so the
    next optimization round is measured rather than guessed.
    """
    if getattr(args, "profile", False):
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        wall_start = time.perf_counter()
        profiler.enable()
        try:
            result = runner.run()
        finally:
            profiler.disable()
        wall = time.perf_counter() - wall_start
        stats = pstats.Stats(profiler, stream=sys.stdout)
        print("-- profile (top 25 by cumulative time) " + "-" * 13)
        stats.strip_dirs().sort_stats("cumulative").print_stats(25)
        return result, wall
    wall_start = time.perf_counter()
    result = runner.run()
    return result, time.perf_counter() - wall_start


def cmd_simulate(args: argparse.Namespace) -> int:
    from repro.engine.runner import WorkloadRunner

    profile = scaled_profile(PROFILES[args.workload], args.scale)
    trace = synthesize_trace(profile, seed=args.seed)
    conf = _obs_conf(args)
    if args.outages:
        conf["monitor.health_checks_enabled"] = True
    config = _system_config(args, conf)
    runner = WorkloadRunner(trace, config)
    if args.outages:
        from repro.dfs.faults import FaultInjector

        injector = FaultInjector(runner.sim, runner.master, runner.scheduler)
        injector.schedule_random_outages(
            count=args.outages,
            start=0.15 * trace.duration,
            end=0.75 * trace.duration,
            downtime=1800.0,
            seed=args.seed,
        )
    result, wall = _timed_run(runner, args)
    if args.outages:
        print(
            f"outages:          {injector.stats.failures} "
            f"(lost {injector.stats.replicas_lost} replicas, "
            "repaired "
            f"{runner.manager.monitor.replicas_repaired if runner.manager else 0})"
        )
    _print_run(result, runner, args, wall)
    _export_obs(runner, args)
    return 0


def _print_run(result, runner, args: argparse.Namespace, wall: float) -> None:
    """The shared result report of ``simulate`` and ``scenario run``."""
    print(f"jobs finished:    {result.jobs_finished}/{result.jobs_submitted}")
    print(f"hit ratio:        {result.metrics.hit_ratio():.3f}")
    print(f"byte hit ratio:   {result.metrics.byte_hit_ratio():.3f}")
    print(f"task hours:       {result.metrics.total_task_seconds() / 3600:.2f}")
    print(f"upgraded to mem:  {result.bytes_upgraded_memory / GB:.2f} GB")
    print(f"downgraded:       {result.bytes_downgraded_memory / GB:.2f} GB")
    if result.deletions_applied:
        print(f"files deleted:    {result.deletions_applied}")
    if args.tiers != "default3" and result.bytes_downgraded_by_tier:
        hierarchy = get_hierarchy(args.tiers)
        for tier in hierarchy:
            up = result.bytes_upgraded_by_tier.get(tier.name, 0)
            down = result.bytes_downgraded_by_tier.get(tier.name, 0)
            print(
                f"  tier {tier.name:<7} upgraded-in {up / GB:6.2f} GB, "
                f"downgraded-out {down / GB:6.2f} GB"
            )
    for name, bin_metrics in result.metrics.bins.items():
        if bin_metrics.jobs_completed:
            print(
                f"  bin {name}: {bin_metrics.jobs_completed:4d} jobs, "
                f"mean completion {bin_metrics.mean_completion_time:.1f}s"
            )
    if args.perf:
        sim = runner.sim
        print("-- engine performance " + "-" * 30)
        print(f"wall clock:       {wall:.3f} s")
        print(f"events processed: {sim.events_processed}")
        print(f"events/second:    {sim.events_processed / wall:,.0f}")
        print(f"events cancelled: {sim.events_cancelled}")
        print(f"heap compactions: {sim.heap_compactions}")
        print(
            f"live pending:     {sim.pending} "
            f"(heap {sim.heap_size}, peak {sim.max_heap_size})"
        )
        io_stats = result.io_stats
        if io_stats.get("model") == "fairshare":
            print(f"flow recomputes:  {io_stats['recomputes']}")
            print(f"peak concurrency: {io_stats['peak_concurrency']}")
            print(f"max component:    {io_stats['max_component']}")
            print(f"vector solves:    {io_stats['vector_solves']}")
            print(f"rescheduled:      {io_stats['events_rescheduled']}")
        _print_backpressure(result)


def _print_backpressure(result) -> None:
    """The back-pressure block of ``--perf`` (pump, queues, transport)."""
    lines = []
    if result.pump_events:
        lines.append(
            f"pump lead:        mean {result.pump_lead_mean_seconds:.2f}s, "
            f"max {result.pump_lead_max_seconds:.2f}s "
            f"({result.pump_events} events, {result.pump_late_events} late)"
        )
    delays = {
        name: delay
        for name, delay in result.queue_delay_by_tier.items()
        if delay > 0.0
    }
    if delays:
        rendered = " ".join(f"{name}={delay:.1f}s" for name, delay in delays.items())
        lines.append(f"queue delay/tier: {rendered}")
    if result.live_stats:
        live = result.live_stats
        lines.append(
            f"live transport:   {live['events_received']} received, "
            f"{live['events_reordered']} reordered "
            f"(max disorder {live['max_disorder_seconds']:.1f}s), "
            f"{live['events_late']} late ({live['events_clamped']} clamped, "
            f"{live['events_dropped']} dropped)"
        )
    if lines:
        print("-- back-pressure " + "-" * 35)
        for line in lines:
            print(line)


def cmd_list(args: argparse.Namespace) -> int:
    """``repro list [KIND]``: every registered pluggable, by dimension."""
    names = catalog()
    kinds = [args.kind] if args.kind else sorted(names)
    for kind in kinds:
        if kind not in names:
            print(
                f"unknown dimension {kind!r}; try one of {sorted(names)}",
                file=sys.stderr,
            )
            return 2
        print(f"{kind}: {' '.join(names[kind])}")
    return 0


def _build_stream(args: argparse.Namespace):
    """The stream named by ``scenario``/``--events``/``--spec`` flags."""
    from repro.workload.scenarios import build_scenario

    if getattr(args, "spec", None) or args.name == "compose":
        from repro.workload.compose import build_compose

        if not getattr(args, "spec", None):
            print(
                "the 'compose' pseudo-scenario needs --spec "
                "(inline JSON or a spec file)",
                file=sys.stderr,
            )
            raise SystemExit(2)
        if args.name not in (None, "compose") or getattr(args, "events", None):
            print(
                "--spec composes registered scenarios; it is mutually "
                "exclusive with --events and scenario names other than "
                "'compose'",
                file=sys.stderr,
            )
            raise SystemExit(2)
        # A composition spec carries its own per-leaf seeds/scales/params;
        # the outer generator knobs would be silently ignored, so reject.
        if args.param or args.scale != 1.0:
            print(
                "--scale/--param do not apply to --spec compositions "
                "(set seed/scale/params per leaf inside the spec)",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return build_compose(args.spec)
    if getattr(args, "events", None):
        from repro.workload.external import ExternalTraceStream

        if args.name:
            print(
                "--events and a scenario name are mutually exclusive",
                file=sys.stderr,
            )
            raise SystemExit(2)
        # External traces replay verbatim: generator knobs would be
        # silently ignored, so reject them instead.
        if args.param or args.scale != 1.0:
            print(
                "--scale/--param do not apply to --events replays "
                "(external traces replay verbatim)",
                file=sys.stderr,
            )
            raise SystemExit(2)
        return ExternalTraceStream(args.events)
    if not args.name:
        print("need a scenario name or --events FILE", file=sys.stderr)
        raise SystemExit(2)
    params = _parse_params(args.param)
    reserved = sorted(set(params) & {"seed", "scale"})
    if reserved:
        print(
            f"use the dedicated --{reserved[0]} flag instead of "
            f"--param {reserved[0]}=...",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return build_scenario(args.name, seed=args.seed, scale=args.scale, **params)


def cmd_scenario_list(_args: argparse.Namespace) -> int:
    """``repro scenario list``: registered scenarios with descriptions."""
    from repro.workload.scenarios import SCENARIOS, scenario_names

    for name in scenario_names():
        scenario = SCENARIOS[name]
        print(f"{name}: {scenario.description}")
        if scenario.defaults:
            pairs = " ".join(f"{k}={v}" for k, v in sorted(scenario.defaults.items()))
            print(f"  params: {pairs}")
    return 0


def cmd_scenario_stats(args: argparse.Namespace) -> int:
    """``repro scenario stats``: one bounded pass of summary statistics."""
    stream = _build_stream(args)
    wall_start = time.perf_counter()
    stats = stream.stats(max_events=args.max_events)
    wall = time.perf_counter() - wall_start
    print(f"scenario:         {stats.name}")
    print(f"duration:         {stats.duration / 3600:.2f} h")
    print(f"events:           {stats.events}")
    print(f"  jobs:           {stats.jobs}")
    print(f"  creations:      {stats.creations}")
    print(f"  deletions:      {stats.deletions}")
    print(f"bytes created:    {stats.bytes_created / GB:.2f} GB")
    print(f"bytes read:       {stats.bytes_read / GB:.2f} GB")
    print(f"bytes written:    {stats.bytes_written / GB:.2f} GB")
    bins = " ".join(f"{k}={v}" for k, v in stats.jobs_per_bin.items())
    print(f"jobs per bin:     {bins}")
    rate = stats.events / wall if wall > 0 else float("inf")
    print(f"generator rate:   {rate:,.0f} events/s")
    return 0


def cmd_scenario_run(args: argparse.Namespace) -> int:
    """``repro scenario run``: drive a workload stream through the system."""
    from repro.engine.runner import WorkloadRunner

    stream = _build_stream(args)
    if args.out:
        # Export mode: serialize the event stream instead of running the
        # system.  With --out - this is the producing end of the live
        # pipe demo (`... --out - | repro live -`); the end sentinel lets
        # the consumer finish without relying on EOF.
        from repro.workload.serialize import save_events

        written = save_events(stream, args.out, end_sentinel=True)
        print(
            f"wrote {written} events to "
            f"{'stdout' if args.out == '-' else args.out}",
            file=sys.stderr,
        )
        return 0
    config = _system_config(args, conf=_obs_conf(args))
    config.label = stream.name
    # Name the scenario on the config so preset auto-selection applies
    # (external traces carry no scenario name, hence no auto preset).
    config.scenario = args.name
    runner = WorkloadRunner(stream, config)
    result, wall = _timed_run(runner, args)
    print(f"scenario:         {stream.name}")
    preset = config.resolve_preset()
    if preset is not None:
        print(f"preset:           {preset.name}")
    _print_run(result, runner, args, wall)
    _export_obs(runner, args)
    return 0


def cmd_live(args: argparse.Namespace) -> int:
    from repro.engine.runner import WorkloadRunner
    from repro.workload.live import LiveStream

    stream = LiveStream(
        args.source,
        reorder_depth=args.reorder_depth,
        late=args.late,
        name=args.name,
        duration=args.duration,
        compression="gzip" if args.gzip else None,
        pace=args.pace,
    )
    config = _system_config(args, conf=_obs_conf(args))
    config.label = stream.name
    config.scenario = args.scenario
    runner = WorkloadRunner(stream, config)
    try:
        result, wall = _timed_run(runner, args)
    finally:
        stream.close()
    print(f"live stream:      {stream.name}")
    live = stream.live_stats
    print(
        f"events received:  {live.events_received} "
        f"({live.events_late} late, {live.events_dropped} dropped, "
        f"{live.events_clamped} clamped)"
    )
    print(
        f"reordered:        {live.events_reordered} "
        f"(max disorder {live.max_disorder_seconds:.1f}s, "
        f"buffer peak {live.max_buffer_depth}/{stream.reorder_depth})"
    )
    preset = config.resolve_preset()
    if preset is not None:
        print(f"preset:           {preset.name}")
    _print_run(result, runner, args, wall)
    _export_obs(runner, args)
    return 0


def cmd_serve(args: argparse.Namespace) -> int:
    """Run the multi-tenant tiering daemon until drained.

    Binds the data plane (``--port``) and control plane
    (``--control-port``), prints both bound addresses (machine-parsable
    first line), then serves until a graceful shutdown — SIGTERM,
    SIGINT, or ``POST /shutdown`` — drains all tenants, and prints the
    final run summary as JSON.  See ``docs/service.md``.
    """
    import json

    from repro.service import TieringService, result_to_dict

    config = _system_config(args, conf=_obs_conf(args))
    config.label = "service"
    service = TieringService(
        config,
        host=args.host,
        port=args.port,
        control_port=args.control_port,
        pace=args.pace,
        reorder_depth=args.reorder_depth,
        late=args.late,
        drain_grace=args.drain_grace,
        results_log=args.results_log,
    )
    service.install_signal_handlers()
    service.start()
    print(
        f"serving data=tcp://{args.host}:{service.data_port} "
        f"control=http://{args.host}:{service.control_port}",
        flush=True,
    )
    # Poll rather than block indefinitely so SIGTERM/SIGINT handlers
    # run promptly on every platform.
    while service.engine.alive():
        service.wait(timeout=0.5)
    result = service.stop()
    if result is not None:
        print(json.dumps(result_to_dict(result), indent=2))
    _export_obs(service.engine.runner, args)
    return 0


def cmd_trace_summarize(args: argparse.Namespace) -> int:
    """``repro trace summarize``: per-type counts and byte totals."""
    from repro.obs.export import read_jsonl
    from repro.obs.summary import render_summary, summarize

    print(render_summary(summarize(read_jsonl(args.path))))
    return 0


def cmd_trace_explain(args: argparse.Namespace) -> int:
    """``repro trace explain``: one file's decision history."""
    from repro.obs.export import read_jsonl
    from repro.obs.summary import explain, render_explain

    records = read_jsonl(args.path)
    print(render_explain(args.file, explain(records, args.file)))
    return 0


def cmd_fuzz(args: argparse.Namespace) -> int:
    """``repro fuzz``: adversarial search for policy pathologies.

    Searches composed-scenario parameter space (one bounded
    ``hypothesis`` search per scoring dimension) for workloads that
    cross a pathology threshold.  ``--freeze-dir`` writes each found
    case as a frozen regression scenario; ``--check`` turns the run
    into a CI gate that fails when a found pathology's dimension is not
    pinned by the frozen corpus.
    """
    from repro.workload.fuzz import (
        DEFAULT_THRESHOLDS,
        DIMENSION_NAMES,
        FuzzSystem,
        compose_name,
        find_pathology,
        freeze_case,
        unfrozen,
    )

    thresholds = dict(DEFAULT_THRESHOLDS)
    for pair in args.threshold or ():
        if "=" not in pair:
            print(f"--threshold expects DIM=VALUE, got {pair!r}", file=sys.stderr)
            return 2
        dim, value = pair.split("=", 1)
        if dim not in DIMENSION_NAMES:
            print(
                f"unknown dimension {dim!r}; expected one of "
                f"{list(DIMENSION_NAMES)}",
                file=sys.stderr,
            )
            return 2
        thresholds[dim] = float(value)
    system = FuzzSystem(
        workers=args.workers,
        memory_mb=args.memory_mb,
        downgrade=args.downgrade,
        upgrade=args.upgrade,
        io_model=args.io_model,
    )
    dimensions = args.dimension or list(DIMENSION_NAMES)
    found = []
    for dimension in dimensions:
        pathology = find_pathology(
            dimension,
            seed=args.seed,
            budget=args.budget,
            threshold=thresholds[dimension],
            system=system,
        )
        if pathology is None:
            print(
                f"{dimension}: no case crossed {thresholds[dimension]:g} "
                f"in {args.budget} examples (seed {args.seed})"
            )
            continue
        found.append(pathology)
        print(
            f"{dimension}: {compose_name(pathology.spec)} scores "
            f"{pathology.score:g} >= {pathology.threshold:g} "
            f"({pathology.metric})"
        )
        if args.freeze_dir:
            path = freeze_case(pathology, args.freeze_dir)
            print(f"  frozen: {path}")
    if args.check:
        holes = unfrozen(found, args.check)
        if holes:
            for pathology in holes:
                print(
                    f"UNFROZEN pathology dimension {pathology.dimension!r}: "
                    f"{compose_name(pathology.spec)} scores "
                    f"{pathology.score:g} but no frozen case under "
                    f"{args.check} pins that dimension — freeze it with "
                    f"`repro fuzz --dimension {pathology.dimension} "
                    f"--freeze-dir {args.check}`",
                    file=sys.stderr,
                )
            return 1
        print(
            f"check: every found pathology dimension is pinned under "
            f"{args.check}"
        )
    return 0


def cmd_synthesize(args: argparse.Namespace) -> int:
    from repro.workload.serialize import save_events, save_trace

    profile = scaled_profile(PROFILES[args.workload], args.scale)
    trace = synthesize_trace(profile, seed=args.seed)
    if args.out.endswith((".jsonl", ".jsonl.gz")):
        save_events(trace, args.out)
    else:
        save_trace(trace, args.out)
    print(
        f"wrote {args.out}: {len(trace.jobs)} jobs, {trace.file_count} files, "
        f"{trace.total_bytes / GB:.1f} GB"
    )
    return 0


def _resolve_spec(args: argparse.Namespace):
    """The SweepSpec named by ``sweep`` flags: builtin, file, or --smoke."""
    from repro.sweep import SweepSpec, builtin_specs

    if getattr(args, "smoke", False):
        if args.spec:
            print("--smoke and an explicit spec are mutually exclusive",
                  file=sys.stderr)
            raise SystemExit(2)
        return builtin_specs()["smoke"]
    if not args.spec:
        print(
            "need a sweep spec: a JSON file, a builtin name "
            f"({' '.join(sorted(builtin_specs()))}), or --smoke",
            file=sys.stderr,
        )
        raise SystemExit(2)
    builtins = builtin_specs()
    if args.spec in builtins:
        return builtins[args.spec]
    if not os.path.exists(args.spec):
        print(
            f"no such sweep spec {args.spec!r} (not a builtin, not a file)",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return SweepSpec.from_file(args.spec)


def cmd_sweep_run(args: argparse.Namespace) -> int:
    from repro.sweep import render_markdown, run_sweep

    spec = _resolve_spec(args)
    report = run_sweep(
        spec,
        store_root=args.store,
        jobs=args.jobs,
        timeout=args.timeout,
        retries=args.retries,
        resume=args.resume,
        progress=lambda line: print(line, file=sys.stderr),
    )
    if args.out:
        import json
        from pathlib import Path

        from repro.sweep.store import atomic_write_json

        if args.out == "-":
            print(json.dumps(report, indent=2))
        else:
            atomic_write_json(Path(args.out), report)
            print(f"wrote {args.out}", file=sys.stderr)
    summary = report["summary"]
    print(
        f"sweep {report['name']}: {summary['completed']}/{summary['cells']} "
        f"cells ok, {summary['failed']} failed "
        f"(jobs={report['jobs']}, "
        f"wall {report.get('sweep_wall_seconds', 0.0):.1f}s, "
        f"cell-wall total {summary['wall_seconds_total']:.1f}s)"
    )
    if args.markdown:
        print(render_markdown(report))
    return 1 if summary["failed"] else 0


def cmd_sweep_cells(args: argparse.Namespace) -> int:
    spec = _resolve_spec(args)
    cells = spec.expand()
    for cell in cells:
        print(f"{cell.cell_id}  {cell.label}")
    print(f"{len(cells)} cell(s) (spec {spec.spec_id})", file=sys.stderr)
    return 0


def cmd_sweep_report(args: argparse.Namespace) -> int:
    from repro.sweep import SweepSpec, merge_report, render_markdown
    from repro.sweep.store import SweepStore

    store = SweepStore(args.store, args.name)
    manifest = store.manifest()
    if manifest is None:
        print(f"no sweep manifest under {store.dir}", file=sys.stderr)
        return 2
    spec = SweepSpec.from_dict(manifest["spec"])
    payloads = list(store.iter_cells())
    report = merge_report(spec, payloads)
    store.write_report(report)
    print(render_markdown(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The full ``repro`` argument parser (every subcommand wired)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Octopus++ reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list-experiments", help="list experiment names")
    p_list.set_defaults(func=cmd_list_experiments)

    p_exp = sub.add_parser("experiment", help="run experiments by name")
    p_exp.add_argument("names", nargs="+")
    p_exp.add_argument(
        "--jobs",
        type=int,
        default=1,
        help=(
            "worker processes for the sweep-capable experiments "
            "(scenarios, tuning-presets); default 1 = in-process serial"
        ),
    )
    p_exp.set_defaults(func=cmd_experiment)

    p_catalog = sub.add_parser(
        "list", help="list registered tiers, io-models, scenarios, ..."
    )
    p_catalog.add_argument(
        "kind",
        nargs="?",
        default=None,
        help="one dimension (e.g. scenarios); default: all of them",
    )
    p_catalog.set_defaults(func=cmd_list)

    p_sim = sub.add_parser("simulate", help="run one workload configuration")
    p_sim.add_argument("--workload", choices=sorted(PROFILES), default="FB")
    _add_system_flags(p_sim)
    _add_obs_flags(p_sim)
    p_sim.add_argument("--scale", type=float, default=1.0)
    p_sim.add_argument("--seed", type=int, default=42)
    p_sim.add_argument(
        "--outages",
        type=int,
        default=0,
        help="inject this many random 30-minute worker outages",
    )
    p_sim.set_defaults(func=cmd_simulate)

    p_scn = sub.add_parser("scenario", help="streaming scenarios: list, stats, run")
    scn_sub = p_scn.add_subparsers(dest="scenario_command", required=True)

    p_scn_list = scn_sub.add_parser(
        "list", help="registered scenarios with their parameters"
    )
    p_scn_list.set_defaults(func=cmd_scenario_list)

    p_scn_stats = scn_sub.add_parser(
        "stats", help="stream a scenario and print summary statistics"
    )
    _add_stream_flags(p_scn_stats)
    p_scn_stats.add_argument(
        "--max-events",
        type=int,
        default=None,
        help="stop after this many events (bounds unbounded streams)",
    )
    p_scn_stats.set_defaults(func=cmd_scenario_stats)

    p_scn_run = scn_sub.add_parser(
        "run", help="drive a scenario (or external trace) through the system"
    )
    _add_stream_flags(p_scn_run)
    _add_system_flags(p_scn_run)
    _add_obs_flags(p_scn_run)
    p_scn_run.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help=(
            "serialize the event stream to FILE (JSONL, .gz aware; '-' = "
            "stdout for piping into `repro live -`) instead of running it"
        ),
    )
    p_scn_run.set_defaults(func=cmd_scenario_run)

    p_live = sub.add_parser(
        "live",
        help="replay a JSONL event stream arriving over a pipe/FIFO/socket",
    )
    p_live.add_argument(
        "source",
        help=(
            "event source: '-' (stdin), a file/FIFO path (.gz aware), "
            "tcp://host:port (dial out), or listen://[host:]port (bind "
            "and wait for one producer)"
        ),
    )
    p_live.add_argument(
        "--reorder-depth",
        type=int,
        default=64,
        help="events held for re-sorting out-of-order arrivals (default 64)",
    )
    p_live.add_argument(
        "--late",
        choices=("clamp", "drop", "error"),
        default="clamp",
        help="events later than the reorder bound: clamp to last emitted "
        "time (default), drop, or error out",
    )
    p_live.add_argument(
        "--gzip",
        action="store_true",
        help="gunzip the source on the fly (implied by a .gz path)",
    )
    p_live.add_argument("--name", default=None, help="workload label override")
    p_live.add_argument(
        "--duration",
        type=float,
        default=None,
        help="nominal submission-window end (default: stream header, else "
        "run until the stream is exhausted)",
    )
    p_live.add_argument(
        "--scenario",
        default=None,
        help="scenario name for preset auto-selection (see --preset)",
    )
    p_live.add_argument(
        "--pace",
        type=float,
        default=None,
        help="wall-clock replay speed in simulated seconds per wall "
        "second (1.0 = real time; default: as fast as the source "
        "delivers)",
    )
    _add_system_flags(p_live)
    _add_obs_flags(p_live)
    p_live.set_defaults(func=cmd_live)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived multi-tenant tiering daemon (see docs/service.md)",
    )
    p_serve.add_argument(
        "--port",
        type=int,
        default=0,
        help="data-plane TCP port: each connection is one tenant JSONL "
        "stream session (0 = ephemeral, reported at startup)",
    )
    p_serve.add_argument(
        "--control-port",
        type=int,
        default=0,
        help="HTTP/JSON control-plane port: /healthz /metrics /tenants "
        "(0 = ephemeral, reported at startup)",
    )
    p_serve.add_argument(
        "--host",
        default="127.0.0.1",
        help="bind address for both planes (default loopback)",
    )
    p_serve.add_argument(
        "--pace",
        type=float,
        default=None,
        help="wall-clock pacing applied to every tenant (simulated "
        "seconds per wall second; default: as fast as streams deliver)",
    )
    p_serve.add_argument(
        "--reorder-depth",
        type=int,
        default=64,
        help="per-session reorder buffer (as for `repro live`)",
    )
    p_serve.add_argument(
        "--late",
        choices=("clamp", "drop", "error"),
        default="clamp",
        help="per-session late-event policy (as for `repro live`)",
    )
    p_serve.add_argument(
        "--drain-grace",
        type=float,
        default=30.0,
        help="seconds open sessions get to finish after SIGTERM or "
        "POST /shutdown before their transports are force-closed",
    )
    p_serve.add_argument(
        "--results-log",
        default=None,
        metavar="FILE",
        help="append one JSONL record per finished/failed tenant; a "
        "restarted daemon loads the file and reports past tenants "
        "under GET /tenants ('past')",
    )
    _add_system_flags(p_serve)
    _add_obs_flags(p_serve)
    p_serve.set_defaults(func=cmd_serve)

    p_sweep = sub.add_parser(
        "sweep",
        help="parallel experiment sweeps: run, cells, report",
    )
    sweep_sub = p_sweep.add_subparsers(dest="sweep_command", required=True)

    p_sweep_run = sweep_sub.add_parser(
        "run", help="execute a sweep spec across worker processes"
    )
    _add_sweep_spec_flags(p_sweep_run)
    p_sweep_run.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (default: every available core; 1 = serial "
        "in-process execution)",
    )
    p_sweep_run.add_argument(
        "--resume",
        action="store_true",
        help="skip cells the store already holds as completed (requires "
        "--store and the identical spec)",
    )
    p_sweep_run.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-cell wall-clock limit in seconds (over-deadline workers "
        "are killed and the cell retried; multi-process runs only)",
    )
    p_sweep_run.add_argument(
        "--retries",
        type=int,
        default=1,
        help="re-runs allowed after a cell fails or crashes (default 1)",
    )
    p_sweep_run.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="results-store root (sweeps land in DIR/<name>/); default: an "
        "ephemeral temporary store, which disables --resume",
    )
    p_sweep_run.add_argument(
        "--out",
        default=None,
        metavar="FILE",
        help="write the merged report JSON here ('-' = stdout)",
    )
    p_sweep_run.add_argument(
        "--markdown",
        action="store_true",
        help="print the merged report as a markdown table",
    )
    p_sweep_run.set_defaults(func=cmd_sweep_run)

    p_sweep_cells = sweep_sub.add_parser(
        "cells", help="expand a spec and list its content-hashed cells"
    )
    _add_sweep_spec_flags(p_sweep_cells)
    p_sweep_cells.set_defaults(func=cmd_sweep_cells)

    p_sweep_report = sweep_sub.add_parser(
        "report", help="re-merge a stored sweep into its report"
    )
    p_sweep_report.add_argument("name", help="sweep name (store subdirectory)")
    p_sweep_report.add_argument(
        "--store", default="sweeps", metavar="DIR", help="results-store root"
    )
    p_sweep_report.set_defaults(func=cmd_sweep_report)

    p_trace = sub.add_parser(
        "trace",
        help="inspect a decision trace written with --trace (summarize, explain)",
    )
    trace_sub = p_trace.add_subparsers(dest="trace_command", required=True)

    p_trace_sum = trace_sub.add_parser(
        "summarize", help="record counts, byte totals, and time span"
    )
    p_trace_sum.add_argument("path", help="trace JSONL file (.gz aware)")
    p_trace_sum.set_defaults(func=cmd_trace_summarize)

    p_trace_explain = trace_sub.add_parser(
        "explain",
        help="reconstruct one file's placement→migration history",
    )
    p_trace_explain.add_argument("path", help="trace JSONL file (.gz aware)")
    p_trace_explain.add_argument("file", help="DFS file path to explain")
    p_trace_explain.set_defaults(func=cmd_trace_explain)

    p_fuzz = sub.add_parser(
        "fuzz",
        help="adversarial search for policy pathologies over composed "
        "scenarios (see docs/scenarios.md)",
    )
    p_fuzz.add_argument(
        "--dimension",
        action="append",
        choices=("churn", "starvation", "regret"),
        help="scoring dimension(s) to search (repeatable; default: all)",
    )
    p_fuzz.add_argument(
        "--budget",
        "--max-examples",
        dest="budget",
        type=int,
        default=50,
        help="hypothesis examples per dimension (default 50; each example "
        "is one or more sub-second simulation runs)",
    )
    p_fuzz.add_argument(
        "--seed",
        type=int,
        default=0,
        help="search seed (fixed seed + fixed budget = deterministic "
        "search for a given hypothesis version)",
    )
    p_fuzz.add_argument(
        "--threshold",
        action="append",
        metavar="DIM=VALUE",
        help="override a dimension's pathology threshold (repeatable)",
    )
    p_fuzz.add_argument(
        "--freeze-dir",
        default=None,
        metavar="DIR",
        help="write each found case as a frozen regression scenario "
        "(tests/regression_scenarios for the tier-1 corpus)",
    )
    p_fuzz.add_argument(
        "--check",
        default=None,
        metavar="DIR",
        help="CI gate: exit 1 if a found pathology's dimension is not "
        "pinned by any frozen case under DIR",
    )
    p_fuzz.add_argument(
        "--workers", type=int, default=3, help="cluster size candidates run on"
    )
    p_fuzz.add_argument(
        "--memory-mb",
        type=int,
        default=512,
        help="top-tier capacity per node in MB (deliberately small: "
        "pathologies need tier pressure to manifest)",
    )
    p_fuzz.add_argument("--downgrade", default="lru")
    p_fuzz.add_argument("--upgrade", default="osa")
    p_fuzz.add_argument(
        "--io-model",
        choices=IO_MODEL_NAMES,
        default="snapshot",
        help="I/O pricing model candidates run under (frozen cases pin "
        "observed scores under both models regardless)",
    )
    p_fuzz.set_defaults(func=cmd_fuzz)

    p_syn = sub.add_parser("synthesize", help="export a synthesized trace")
    p_syn.add_argument("--workload", choices=sorted(PROFILES), default="FB")
    p_syn.add_argument("--scale", type=float, default=1.0)
    p_syn.add_argument("--seed", type=int, default=42)
    p_syn.add_argument(
        "--out",
        required=True,
        help="output path (.json whole-trace, .jsonl[.gz] streaming JSONL)",
    )
    p_syn.set_defaults(func=cmd_synthesize)
    return parser


def _add_sweep_spec_flags(parser: argparse.ArgumentParser) -> None:
    """Flags naming a sweep spec: builtin name, JSON file, or --smoke."""
    parser.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="builtin spec name (see: repro list sweeps) or a JSON spec file",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="shorthand for the builtin CI-sized 'smoke' spec (~12 cells)",
    )


def _add_stream_flags(parser: argparse.ArgumentParser) -> None:
    """Flags selecting a workload stream: a named scenario or a file."""
    parser.add_argument(
        "name",
        nargs="?",
        default=None,
        help="registered scenario name (see: repro scenario list)",
    )
    parser.add_argument(
        "--events",
        default=None,
        metavar="FILE",
        help="ingest an external CSV/JSONL(.gz) trace instead of a scenario "
        "(formerly --trace, which now names the decision-trace output)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=42,
        help="scenario seed (unused with --events: external traces are fixed)",
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="length multiplier (duration for generators, jobs for fb/cmu)",
    )
    parser.add_argument(
        "--param",
        action="append",
        metavar="KEY=VALUE",
        help="override a scenario parameter (repeatable)",
    )
    parser.add_argument(
        "--spec",
        default=None,
        metavar="SPEC",
        help="composition spec: inline JSON, a spec file, or a frozen "
        "regression case (use with the pseudo-scenario 'compose'; "
        "see docs/scenarios.md, 'Composition algebra')",
    )


def _add_obs_flags(parser: argparse.ArgumentParser) -> None:
    """Observability outputs shared by simulate/scenario run/live/serve.

    All default to off; the run is bit-identical without them (tracing
    appends records but schedules nothing, sampling only starts when
    ``--timeseries`` asks for an output).
    """
    parser.add_argument(
        "--trace",
        default=None,
        metavar="FILE",
        help="write the decision trace (placements, migrations, policy "
        "decisions) as JSONL (.gz aware) when the run finishes",
    )
    parser.add_argument(
        "--chrome-trace",
        default=None,
        metavar="FILE",
        help="also export the trace as Chrome trace-event JSON "
        "(load in chrome://tracing or https://ui.perfetto.dev)",
    )
    parser.add_argument(
        "--timeseries",
        default=None,
        metavar="FILE",
        help="sample per-tier occupancy/queue-delay/hit-ratio at a fixed "
        "simulated-time interval and write the columnar JSON here",
    )
    parser.add_argument(
        "--sample-interval",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="simulated seconds between timeseries samples (default 300)",
    )


def _add_system_flags(parser: argparse.ArgumentParser) -> None:
    """The system-configuration flags shared by simulate/scenario run."""
    parser.add_argument("--placement", default="octopus")
    parser.add_argument("--downgrade", default=None)
    parser.add_argument("--upgrade", default=None)
    parser.add_argument("--workers", type=int, default=11)
    parser.add_argument(
        "--tiers",
        choices=hierarchy_names(),
        default="default3",
        help="tier hierarchy preset (default3 = the paper's memory/SSD/HDD)",
    )
    parser.add_argument(
        "--io-model",
        choices=IO_MODEL_NAMES,
        default="snapshot",
        help=(
            "I/O pricing: snapshot = price once at operation start "
            "(pre-flow behaviour, bit-identical); fairshare = max-min "
            "fair re-pricing with shared remote-endpoint/rack resources"
        ),
    )
    parser.add_argument(
        "--cache-mode",
        action="store_true",
        help="AutoCache semantics: upgrades copy, downgrades delete",
    )
    parser.add_argument(
        "--tier-aware",
        action="store_true",
        help="tier-aware task scheduler (default: stock tier-unaware)",
    )
    parser.add_argument(
        "--preset",
        default="auto",
        help=(
            "policy preset: 'auto' (default) applies the preset registered "
            "for the scenario being run, 'none' disables presets, or name "
            "one explicitly (see: repro list presets)"
        ),
    )
    parser.add_argument(
        "--engine",
        choices=("reference", "fast"),
        default="reference",
        help=(
            "simulation core: reference = classic object-per-event loop "
            "(default, bit-identical reproduction); fast = slab-allocated "
            "events with batched fast paths (validated metric-identical)"
        ),
    )
    parser.add_argument(
        "--perf",
        action="store_true",
        help=(
            "print engine performance counters after the run "
            "(events/sec, heap compactions, flow re-solve statistics)"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run under cProfile and print the hottest functions by "
            "cumulative time (measure before optimizing)"
        ),
    )


def main(argv=None) -> int:
    """CLI entry point: parse, dispatch, and map errors to exit codes."""
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a closed reader (e.g. `| head`): not an error.
        # Point stdout at /dev/null so the interpreter's shutdown flush
        # does not hit EPIPE again (which would override this clean exit
        # with status 120 and stderr noise).
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
