"""Storage tiers, media performance profiles, and devices.

Bandwidth numbers are calibrated so the DFSIO experiment (Fig 2) produces
paper-shaped throughput ratios: an HDD-only pipeline bottlenecks writes
around ~90 MB/s per node, while serving reads from memory/SSD replicas
yields the ~2-4x read speedups reported for HDFS-with-cache and OctopusFS.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.common.errors import InsufficientSpaceError
from repro.common.units import MB


@enum.unique
class StorageTier(enum.IntEnum):
    """Storage tiers ordered from highest (fastest) to lowest.

    Lower integer value = higher tier, so ``min()`` over tiers picks the
    fastest and comparisons read naturally:
    ``StorageTier.MEMORY < StorageTier.SSD < StorageTier.HDD``.
    """

    MEMORY = 0
    SSD = 1
    HDD = 2

    @property
    def is_highest(self) -> bool:
        return self is StorageTier.MEMORY

    @property
    def is_lowest(self) -> bool:
        return self is StorageTier.HDD

    def higher_tiers(self) -> "tuple[StorageTier, ...]":
        """Tiers strictly faster than this one, fastest first."""
        return tuple(t for t in StorageTier if t < self)

    def lower_tiers(self) -> "tuple[StorageTier, ...]":
        """Tiers strictly slower than this one, fastest first."""
        return tuple(t for t in StorageTier if t > self)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class MediaProfile:
    """Performance characteristics of one storage medium.

    ``read_bw``/``write_bw`` are sustained sequential bandwidths in
    bytes/second for a single stream; ``seek_latency`` is the fixed
    per-request cost in seconds.
    """

    tier: StorageTier
    read_bw: float
    write_bw: float
    seek_latency: float

    def read_time(self, num_bytes: int) -> float:
        """Seconds to read ``num_bytes`` sequentially from this medium."""
        return self.seek_latency + num_bytes / self.read_bw

    def write_time(self, num_bytes: int) -> float:
        """Seconds to write ``num_bytes`` sequentially to this medium."""
        return self.seek_latency + num_bytes / self.write_bw


#: Default profiles calibrated against the paper's Fig 2 throughputs.
DEFAULT_MEDIA_PROFILES: Dict[StorageTier, MediaProfile] = {
    StorageTier.MEMORY: MediaProfile(
        tier=StorageTier.MEMORY,
        read_bw=3000 * MB,
        write_bw=2000 * MB,
        seek_latency=0.0001,
    ),
    StorageTier.SSD: MediaProfile(
        tier=StorageTier.SSD,
        read_bw=450 * MB,
        write_bw=350 * MB,
        seek_latency=0.0005,
    ),
    StorageTier.HDD: MediaProfile(
        tier=StorageTier.HDD,
        read_bw=130 * MB,
        write_bw=110 * MB,
        seek_latency=0.008,
    ),
}


class StorageDevice:
    """One storage device (a memory slice, an SSD, or an HDD).

    Tracks byte-level capacity and the set of replica ids it stores.
    Capacity accounting is exact: ``allocate`` raises
    :class:`InsufficientSpaceError` rather than over-committing.
    """

    def __init__(
        self,
        device_id: str,
        profile: MediaProfile,
        capacity: int,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.device_id = device_id
        self.profile = profile
        self.capacity = int(capacity)
        self.used = 0
        self._replicas: Set[int] = set()

    @property
    def tier(self) -> StorageTier:
        return self.profile.tier

    @property
    def free(self) -> int:
        return self.capacity - self.used

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use, in [0, 1]."""
        return self.used / self.capacity

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    def has_space(self, num_bytes: int) -> bool:
        return self.free >= num_bytes

    def allocate(self, replica_id: int, num_bytes: int) -> None:
        """Reserve space for a replica.  Raises if full or duplicate."""
        if replica_id in self._replicas:
            raise ValueError(f"replica {replica_id} already on {self.device_id}")
        if not self.has_space(num_bytes):
            raise InsufficientSpaceError(
                f"{self.device_id}: need {num_bytes}, free {self.free}"
            )
        self._replicas.add(replica_id)
        self.used += int(num_bytes)

    def release(self, replica_id: int, num_bytes: int) -> None:
        """Free the space held by a replica.  Raises if unknown."""
        if replica_id not in self._replicas:
            raise ValueError(f"replica {replica_id} not on {self.device_id}")
        self._replicas.discard(replica_id)
        self.used -= int(num_bytes)
        if self.used < 0:  # defensive: accounting must never go negative
            raise InsufficientSpaceError(f"{self.device_id}: negative usage")

    def holds(self, replica_id: int) -> bool:
        return replica_id in self._replicas

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StorageDevice({self.device_id}, {self.tier.name}, "
            f"{self.used}/{self.capacity})"
        )


def make_device(
    device_id: str,
    tier: StorageTier,
    capacity: int,
    profile: Optional[MediaProfile] = None,
) -> StorageDevice:
    """Convenience constructor using the default profile for ``tier``."""
    return StorageDevice(
        device_id=device_id,
        profile=profile or DEFAULT_MEDIA_PROFILES[tier],
        capacity=capacity,
    )
