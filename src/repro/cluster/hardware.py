"""Storage tiers, media performance profiles, and devices.

The tier model is data-driven: a :class:`TierSpec` describes one tier
(name, ordering level, media performance, provisioning defaults) and a
:class:`TierHierarchy` is an ordered, immutable registry of specs built
per cluster.  Built-in presets cover the paper's 3-tier testbed
(``default3``), a degenerate 2-tier setup (``mem-hdd``), a 4-tier NVMe
hierarchy (``nvme4``), and a 5-tier hierarchy with a rack-remote cold
tier (``remote5``).  Custom hierarchies can be registered with
:func:`register_hierarchy`.

Bandwidth numbers for the default tiers are calibrated so the DFSIO
experiment (Fig 2) produces paper-shaped throughput ratios: an HDD-only
pipeline bottlenecks writes around ~90 MB/s per node, while serving
reads from memory/SSD replicas yields the ~2-4x read speedups reported
for HDFS-with-cache and OctopusFS.

:class:`StorageTier` remains as a compatibility facade over the default
3-tier hierarchy (``StorageTier.MEMORY`` etc.), so code and experiments
written against the paper's fixed memory/SSD/HDD triple keep working
unchanged and reproduce bit-identically.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from repro.common.errors import InsufficientSpaceError
from repro.common.units import GB, MB, TB


@dataclass(frozen=True)
class MediaProfile:
    """Performance characteristics of one storage medium.

    ``read_bw``/``write_bw`` are sustained sequential bandwidths in
    bytes/second for a single stream; ``seek_latency`` is the fixed
    per-request cost in seconds.
    """

    read_bw: float
    write_bw: float
    seek_latency: float

    def read_time(self, num_bytes: int) -> float:
        """Seconds to read ``num_bytes`` sequentially from this medium."""
        return self.seek_latency + num_bytes / self.read_bw

    def write_time(self, num_bytes: int) -> float:
        """Seconds to write ``num_bytes`` sequentially to this medium."""
        return self.seek_latency + num_bytes / self.write_bw


@dataclass(frozen=True, eq=False)
class TierSpec:
    """One tier of a storage hierarchy.

    Identity semantics: two specs are equal only if they are the same
    object, which holds because hierarchies are built once and shared
    (see :func:`get_hierarchy`).  Ordering is by ``level``: lower level =
    faster tier, so ``min()`` over tiers picks the fastest and
    comparisons read naturally (``memory < ssd < hdd``).

    ``default_capacity``/``default_devices`` are per-node provisioning
    defaults used by the cluster builders; ``score`` is the relative
    throughput attractiveness consumed by the multi-objective placement;
    ``remote`` marks network-attached tiers (e.g. a rack-remote cold
    store) that baseline HDFS-style placement must not use.
    """

    name: str
    media: MediaProfile
    default_capacity: int
    default_devices: int = 1
    score: float = 0.0
    remote: bool = False
    #: Position in the owning hierarchy, assigned by TierHierarchy
    #: (0 = highest/fastest).  A spec outside a hierarchy has level -1.
    level: int = -1

    # -- hierarchy navigation ------------------------------------------------
    @property
    def hierarchy(self) -> "TierHierarchy":
        owner = getattr(self, "_hierarchy", None)
        if owner is None:
            raise ValueError(
                f"tier {self.name!r} is not bound to a TierHierarchy yet"
            )
        return owner

    @property
    def is_highest(self) -> bool:
        return self.hierarchy.tiers[0] is self

    @property
    def is_lowest(self) -> bool:
        return self.hierarchy.tiers[-1] is self

    @property
    def higher(self) -> Optional["TierSpec"]:
        """The next faster tier, or None at the top."""
        return None if self.is_highest else self.hierarchy.tiers[self.level - 1]

    @property
    def lower(self) -> Optional["TierSpec"]:
        """The next slower tier, or None at the bottom."""
        return None if self.is_lowest else self.hierarchy.tiers[self.level + 1]

    def higher_tiers(self) -> Tuple["TierSpec", ...]:
        """Tiers strictly faster than this one, fastest first."""
        return self.hierarchy.tiers[: self.level]

    def lower_tiers(self) -> Tuple["TierSpec", ...]:
        """Tiers strictly slower than this one, fastest first."""
        return self.hierarchy.tiers[self.level + 1 :]

    # -- ordering (by level; only within one hierarchy) -----------------------
    def __lt__(self, other: "TierSpec") -> bool:
        return self.level < other.level

    def __le__(self, other: "TierSpec") -> bool:
        return self.level <= other.level

    def __gt__(self, other: "TierSpec") -> bool:
        return self.level > other.level

    def __ge__(self, other: "TierSpec") -> bool:
        return self.level >= other.level

    def __int__(self) -> int:
        return self.level

    def __index__(self) -> int:
        return self.level

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TierSpec({self.name}, level={self.level})"


class TierHierarchy:
    """An ordered, immutable set of tiers, fastest first.

    The constructor re-binds the given specs: each is copied with its
    ``level`` set to its position and its name upper-cased, so the
    hierarchy fully owns its specs and identity comparisons are safe.
    """

    def __init__(self, name: str, specs: Sequence[TierSpec]) -> None:
        if not specs:
            raise ValueError("a hierarchy needs at least one tier")
        names = [s.name.upper() for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate tier names in hierarchy {name!r}")
        self.name = name
        # Tiers without an explicit placement score get one derived from
        # their media bandwidth relative to the fastest tier, so custom
        # hierarchies never silently zero the placement throughput term.
        top_bw = max(s.media.read_bw for s in specs)
        bound: List[TierSpec] = []
        for level, spec in enumerate(specs):
            score = spec.score if spec.score > 0 else spec.media.read_bw / top_bw
            copy = dataclasses.replace(
                spec, name=spec.name.upper(), level=level, score=score
            )
            object.__setattr__(copy, "_hierarchy", self)
            bound.append(copy)
        self.tiers: Tuple[TierSpec, ...] = tuple(bound)
        self._by_name: Dict[str, TierSpec] = {s.name: s for s in bound}
        self._local_tiers: Tuple[TierSpec, ...] = tuple(
            t for t in bound if not t.remote
        )

    # -- lookups --------------------------------------------------------------
    @property
    def highest(self) -> TierSpec:
        """The fastest tier (level 0)."""
        return self.tiers[0]

    @property
    def lowest(self) -> TierSpec:
        """The slowest tier."""
        return self.tiers[-1]

    @property
    def local_tiers(self) -> Tuple[TierSpec, ...]:
        """Tiers backed by node-local media (non-remote), fastest first."""
        return self._local_tiers

    @property
    def lowest_local(self) -> TierSpec:
        """The slowest node-local tier (HDFS-style baseline placement)."""
        local = self.local_tiers
        if not local:
            raise ValueError(f"hierarchy {self.name!r} has no local tiers")
        return local[-1]

    def tier(self, name: Union[str, TierSpec]) -> TierSpec:
        """Look a tier up by (case-insensitive) name."""
        if isinstance(name, TierSpec):
            return name
        key = str(name).upper()
        try:
            return self._by_name[key]
        except KeyError:
            raise KeyError(
                f"hierarchy {self.name!r} has no tier {name!r}; "
                f"tiers are {[t.name for t in self.tiers]}"
            ) from None

    def adjacent_pairs(self) -> List[Tuple[TierSpec, TierSpec]]:
        """(higher, lower) pairs for every adjacent tier boundary."""
        return list(zip(self.tiers, self.tiers[1:]))

    # -- container protocol ----------------------------------------------------
    def __iter__(self) -> Iterator[TierSpec]:
        return iter(self.tiers)

    def __len__(self) -> int:
        return len(self.tiers)

    def __getitem__(self, index: int) -> TierSpec:
        return self.tiers[index]

    def __contains__(self, item: object) -> bool:
        if isinstance(item, TierSpec):
            return item in self.tiers
        if isinstance(item, str):
            return item.upper() in self._by_name
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TierHierarchy({self.name}, {[t.name for t in self.tiers]})"


# ---------------------------------------------------------------------------
# Media profiles for the built-in tiers.
# ---------------------------------------------------------------------------

#: Node-to-node network bandwidth: 10GbE (Fig 2 read throughputs require
#: more than 1GbE).  This is the single shared definition — the I/O
#: model, Replication Monitor, and Worker facade all import it.
DEFAULT_NETWORK_BANDWIDTH = 1250 * MB

#: Aggregate bandwidth of the shared endpoint in front of a rack-remote
#: cold store (one 10GbE ingress link): the cluster-wide cap the
#: fair-share I/O model enforces on the REMOTE tier, so cold-tier
#: throughput no longer scales with worker count.
DEFAULT_REMOTE_ENDPOINT_BANDWIDTH = 1250 * MB

#: Calibrated against the paper's Fig 2 throughputs.
MEMORY_MEDIA = MediaProfile(read_bw=3000 * MB, write_bw=2000 * MB, seek_latency=0.0001)
NVME_MEDIA = MediaProfile(read_bw=2000 * MB, write_bw=1500 * MB, seek_latency=0.0002)
SSD_MEDIA = MediaProfile(read_bw=450 * MB, write_bw=350 * MB, seek_latency=0.0005)
HDD_MEDIA = MediaProfile(read_bw=130 * MB, write_bw=110 * MB, seek_latency=0.008)
#: A rack-remote cold store: every request crosses the network, so the
#: sustained bandwidth is below HDD and the fixed cost is dominated by
#: round trips rather than seeks.
REMOTE_MEDIA = MediaProfile(read_bw=110 * MB, write_bw=90 * MB, seek_latency=0.04)


def _memory_spec() -> TierSpec:
    return TierSpec(
        name="MEMORY", media=MEMORY_MEDIA, default_capacity=4 * GB, score=1.0
    )


def _nvme_spec() -> TierSpec:
    return TierSpec(
        name="NVME", media=NVME_MEDIA, default_capacity=32 * GB, score=0.8
    )


def _ssd_spec() -> TierSpec:
    return TierSpec(
        name="SSD", media=SSD_MEDIA, default_capacity=64 * GB, score=0.55
    )


def _hdd_spec() -> TierSpec:
    return TierSpec(
        name="HDD",
        media=HDD_MEDIA,
        default_capacity=400 * GB,
        default_devices=3,
        score=0.25,
    )


def _remote_spec() -> TierSpec:
    return TierSpec(
        name="REMOTE",
        media=REMOTE_MEDIA,
        default_capacity=4 * TB,
        score=0.1,
        remote=True,
    )


# ---------------------------------------------------------------------------
# Hierarchy presets.
# ---------------------------------------------------------------------------

_PRESET_FACTORIES: Dict[str, Callable[[], TierHierarchy]] = {}
_PRESET_CACHE: Dict[str, TierHierarchy] = {}


def register_hierarchy(
    name: str, factory: Callable[[], TierHierarchy], replace: bool = False
) -> None:
    """Register a named hierarchy preset (built lazily, cached forever).

    Caching matters beyond speed: every cluster built from the same
    preset shares the same :class:`TierSpec` objects, so identity-based
    tier comparisons hold across runs.
    """
    if name in _PRESET_FACTORIES:
        if not replace:
            raise ValueError(f"hierarchy preset {name!r} already registered")
        if name in _PRESET_CACHE:
            # The preset was already materialized: clusters (and, for
            # default3, the StorageTier facade) hold its TierSpec
            # objects, whose equality is identity-based.  Replacing it
            # would orphan them, so presets are replaceable only before
            # first use.
            raise ValueError(
                f"hierarchy preset {name!r} is already in use and cannot "
                "be replaced; register a new preset name instead"
            )
    _PRESET_FACTORIES[name] = factory


def hierarchy_names() -> Tuple[str, ...]:
    """Names of all registered hierarchy presets, sorted."""
    return tuple(sorted(_PRESET_FACTORIES))


def get_hierarchy(name: Union[str, TierHierarchy]) -> TierHierarchy:
    """Resolve a preset name (or pass a hierarchy through unchanged)."""
    if isinstance(name, TierHierarchy):
        return name
    if name not in _PRESET_FACTORIES:
        raise KeyError(
            f"unknown tier hierarchy {name!r}; "
            f"available: {', '.join(hierarchy_names())}"
        )
    if name not in _PRESET_CACHE:
        _PRESET_CACHE[name] = _PRESET_FACTORIES[name]()
    return _PRESET_CACHE[name]


register_hierarchy(
    "default3",
    lambda: TierHierarchy("default3", [_memory_spec(), _ssd_spec(), _hdd_spec()]),
)
register_hierarchy(
    "mem-hdd",
    lambda: TierHierarchy("mem-hdd", [_memory_spec(), _hdd_spec()]),
)
register_hierarchy(
    "nvme4",
    lambda: TierHierarchy(
        "nvme4", [_memory_spec(), _nvme_spec(), _ssd_spec(), _hdd_spec()]
    ),
)
#: The REMOTE tier is provisioned as a per-node device (each node's
#: mover slice of the cold store), but under ``--io-model fairshare``
#: every REMOTE access additionally crosses the cluster-wide shared
#: endpoint resource (see :mod:`repro.engine.iomodel`), so aggregate
#: cold-tier bandwidth is capped regardless of worker count.
register_hierarchy(
    "remote5",
    lambda: TierHierarchy(
        "remote5",
        [_memory_spec(), _nvme_spec(), _ssd_spec(), _hdd_spec(), _remote_spec()],
    ),
)

#: The paper's 3-tier hierarchy; the default everywhere a hierarchy is
#: not given explicitly.
DEFAULT_HIERARCHY: TierHierarchy = get_hierarchy("default3")


class _StorageTierMeta(type):
    """Make the StorageTier facade iterable like the old IntEnum."""

    def __iter__(cls) -> Iterator[TierSpec]:
        return iter(DEFAULT_HIERARCHY.tiers)

    def __len__(cls) -> int:
        return len(DEFAULT_HIERARCHY)

    def __getitem__(cls, name: str) -> TierSpec:
        return DEFAULT_HIERARCHY.tier(name)


class StorageTier(metaclass=_StorageTierMeta):
    """Compatibility facade over the default 3-tier hierarchy.

    Historically a 3-member IntEnum; now the attributes are the
    ``default3`` hierarchy's :class:`TierSpec` objects, so existing code
    and tests using ``StorageTier.MEMORY``, iteration, ordering, or
    ``is`` comparisons keep working against default clusters.  New code
    should take tiers from the cluster's hierarchy instead.
    """

    MEMORY: TierSpec = DEFAULT_HIERARCHY.tier("MEMORY")
    SSD: TierSpec = DEFAULT_HIERARCHY.tier("SSD")
    HDD: TierSpec = DEFAULT_HIERARCHY.tier("HDD")


#: Default profiles keyed by the default hierarchy's tiers (legacy view).
DEFAULT_MEDIA_PROFILES: Dict[TierSpec, MediaProfile] = {
    t: t.media for t in DEFAULT_HIERARCHY
}


class StorageDevice:
    """One storage device (a memory slice, an SSD, an HDD, ...).

    Tracks byte-level capacity and the set of replica ids it stores.
    Capacity accounting is exact: ``allocate`` raises
    :class:`InsufficientSpaceError` rather than over-committing.
    """

    def __init__(
        self,
        device_id: str,
        tier: TierSpec,
        capacity: int,
        profile: Optional[MediaProfile] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.device_id = device_id
        self.tier = tier
        self.profile = profile if profile is not None else tier.media
        self.capacity = int(capacity)
        self.used = 0
        self._replicas: Set[int] = set()
        #: Installed by ClusterTopology.add_node: called with the signed
        #: byte delta on every allocate/release so the topology can keep
        #: aggregate per-tier usage without rescanning every device.
        self.usage_listener: Optional[Callable[["StorageDevice", int], None]] = None

    @property
    def free(self) -> int:
        return self.capacity - self.used

    @property
    def utilization(self) -> float:
        """Fraction of capacity in use, in [0, 1]."""
        return self.used / self.capacity

    @property
    def replica_count(self) -> int:
        return len(self._replicas)

    def has_space(self, num_bytes: int) -> bool:
        return self.free >= num_bytes

    def allocate(self, replica_id: int, num_bytes: int) -> None:
        """Reserve space for a replica.  Raises if full or duplicate."""
        if replica_id in self._replicas:
            raise ValueError(f"replica {replica_id} already on {self.device_id}")
        if not self.has_space(num_bytes):
            raise InsufficientSpaceError(
                f"{self.device_id}: need {num_bytes}, free {self.free}"
            )
        self._replicas.add(replica_id)
        delta = int(num_bytes)
        self.used += delta
        if self.usage_listener is not None:
            self.usage_listener(self, delta)

    def release(self, replica_id: int, num_bytes: int) -> None:
        """Free the space held by a replica.  Raises if unknown."""
        if replica_id not in self._replicas:
            raise ValueError(f"replica {replica_id} not on {self.device_id}")
        self._replicas.discard(replica_id)
        delta = int(num_bytes)
        self.used -= delta
        if self.used < 0:  # defensive: accounting must never go negative
            raise InsufficientSpaceError(f"{self.device_id}: negative usage")
        if self.usage_listener is not None:
            self.usage_listener(self, -delta)

    def holds(self, replica_id: int) -> bool:
        return replica_id in self._replicas

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"StorageDevice({self.device_id}, {self.tier.name}, "
            f"{self.used}/{self.capacity})"
        )


def make_device(
    device_id: str,
    tier: TierSpec,
    capacity: int,
    profile: Optional[MediaProfile] = None,
) -> StorageDevice:
    """Convenience constructor using the tier's media profile by default."""
    return StorageDevice(
        device_id=device_id, tier=tier, capacity=capacity, profile=profile
    )
