"""Cluster nodes: a bundle of storage devices plus task slots.

A :class:`Node` corresponds to a Worker in the paper's architecture
(Fig 3): it stores block replicas on its locally attached media and runs
map/reduce tasks in a fixed number of slots.  Which tiers a node exposes
— and how much of each — comes from a list of :class:`TierProvision`
entries, so heterogeneous nodes (e.g. some without SSDs) are expressed
by provisioning a subset of the cluster's :class:`TierHierarchy`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from repro.cluster.hardware import (
    MediaProfile,
    StorageDevice,
    TierHierarchy,
    TierSpec,
)


@dataclass(frozen=True)
class TierProvision:
    """How much of one tier a node exposes, and across how many devices.

    The paper's local workers expose 4GB memory, one 64GB SSD, and three
    HDDs totalling 400GB for file blocks (Sec 7).  ``num_devices`` and
    ``profile`` default to the tier spec's values.
    """

    tier: TierSpec
    capacity: int
    num_devices: int = 1
    profile: Optional[MediaProfile] = None

    def device_capacity(self) -> int:
        return self.capacity // self.num_devices


def provision_for(
    spec: TierSpec,
    capacity: Optional[int] = None,
    num_devices: Optional[int] = None,
) -> TierProvision:
    """A provision for ``spec`` using its defaults unless overridden."""
    return TierProvision(
        tier=spec,
        capacity=capacity if capacity is not None else spec.default_capacity,
        num_devices=(
            num_devices if num_devices is not None else spec.default_devices
        ),
    )


class Node:
    """A worker node with storage devices grouped by tier and task slots."""

    def __init__(
        self,
        node_id: str,
        rack: str,
        tier_specs: Sequence[TierProvision],
        task_slots: int = 8,
    ) -> None:
        if not tier_specs:
            raise ValueError("a node needs at least one tier provision")
        self.node_id = node_id
        self.rack = rack
        self.task_slots = task_slots
        #: Cleared by the fault injector while the node is down; dead
        #: nodes receive no new replicas and no new tasks.
        self.alive = True
        self.hierarchy: TierHierarchy = tier_specs[0].tier.hierarchy
        self._devices: Dict[TierSpec, List[StorageDevice]] = {
            tier: [] for tier in self.hierarchy
        }
        for spec in tier_specs:
            if spec.tier.hierarchy is not self.hierarchy:
                raise ValueError(
                    f"tier {spec.tier.name} belongs to a different hierarchy "
                    f"than {self.hierarchy.name!r}"
                )
            base = spec.device_capacity()
            remainder = spec.capacity - base * spec.num_devices
            for i in range(spec.num_devices):
                # The first device absorbs the integer-division remainder
                # so the tier total matches the spec exactly.
                capacity = base + (remainder if i == 0 else 0)
                device = StorageDevice(
                    device_id=f"{node_id}:{spec.tier.name.lower()}{i}",
                    tier=spec.tier,
                    capacity=capacity,
                    profile=spec.profile,
                )
                self._devices[spec.tier].append(device)

    # -- device access ------------------------------------------------------
    def devices(self, tier: Optional[TierSpec] = None) -> List[StorageDevice]:
        """All devices, or only those of ``tier``."""
        if tier is not None:
            return list(self._devices[tier])
        return [d for tier_devs in self._devices.values() for d in tier_devs]

    def tiers(self) -> List[TierSpec]:
        """Tiers this node actually has devices for, fastest first."""
        return [t for t in self.hierarchy if self._devices[t]]

    def has_tier(self, tier: TierSpec) -> bool:
        # Plain indexing on purpose: the dict is pre-seeded with every
        # tier of this node's hierarchy, so a KeyError always means a
        # spec from a *different* hierarchy leaked in — raising beats
        # silently reporting an empty tier.
        return bool(self._devices[tier])

    # -- capacity accounting -------------------------------------------------
    def tier_capacity(self, tier: TierSpec) -> int:
        return sum(d.capacity for d in self._devices[tier])

    def tier_used(self, tier: TierSpec) -> int:
        return sum(d.used for d in self._devices[tier])

    def tier_free(self, tier: TierSpec) -> int:
        return sum(d.free for d in self._devices[tier])

    def tier_utilization(self, tier: TierSpec) -> float:
        """Used fraction of the tier; 1.0 for tiers with no capacity."""
        capacity = self.tier_capacity(tier)
        if capacity == 0:
            return 1.0
        return self.tier_used(tier) / capacity

    def best_device_for(
        self, tier: TierSpec, num_bytes: int
    ) -> Optional[StorageDevice]:
        """The emptiest device of ``tier`` that fits ``num_bytes``, if any.

        Single pass with a strict ``<`` comparison: ties keep the first
        fitting device, exactly like ``min()`` over the filtered list.
        """
        best: Optional[StorageDevice] = None
        best_utilization = 0.0
        for device in self._devices[tier]:
            if device.capacity - device.used >= num_bytes:
                utilization = device.used / device.capacity
                if best is None or utilization < best_utilization:
                    best = device
                    best_utilization = utilization
        return best

    def total_capacity(self) -> int:
        return sum(d.capacity for d in self.devices())

    def total_used(self) -> int:
        return sum(d.used for d in self.devices())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{t.name}={self.tier_used(t)}/{self.tier_capacity(t)}"
            for t in self.tiers()
        )
        return f"Node({self.node_id}, {parts})"


def iter_tier_devices(
    nodes: Iterable[Node], tier: TierSpec
) -> Iterable[StorageDevice]:
    """Yield every device of ``tier`` across ``nodes``."""
    for node in nodes:
        yield from node.devices(tier)
