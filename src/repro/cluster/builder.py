"""Cluster construction presets matching the paper's two testbeds.

``build_local_cluster`` mirrors the 12-node lab cluster of Sec 7 (1 master
plus 11 workers; 4GB memory / 64GB SSD / 400GB HDD of file-block space per
worker).  ``build_ec2_cluster`` mirrors the m4.2xlarge EC2 setup of
Sec 7.5 used for the scalability study.  ``build_tiered_cluster`` builds
the same shape of cluster over any :class:`TierHierarchy` preset
(``default3``, ``mem-hdd``, ``nvme4``, ``remote5``, or a custom one),
provisioning each node from the tier specs' capacity defaults.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Union

from repro.cluster.hardware import TierHierarchy, get_hierarchy
from repro.cluster.node import Node, TierProvision, provision_for
from repro.cluster.topology import ClusterTopology
from repro.common.units import GB

#: Workers per rack for generated topologies (HDFS-style two-level network).
DEFAULT_RACK_SIZE = 16


def build_cluster(
    num_workers: int,
    tier_specs: Sequence[TierProvision],
    task_slots: int = 8,
    rack_size: int = DEFAULT_RACK_SIZE,
    name_prefix: str = "worker",
) -> ClusterTopology:
    """Build a topology of ``num_workers`` identical nodes.

    Nodes are spread across racks of ``rack_size``; each node gets fresh
    devices from ``tier_specs``.
    """
    if num_workers <= 0:
        raise ValueError("num_workers must be positive")
    if rack_size <= 0:
        raise ValueError("rack_size must be positive")
    topology = ClusterTopology()
    for i in range(num_workers):
        rack = f"rack{i // rack_size}"
        node = Node(
            node_id=f"{name_prefix}{i:03d}",
            rack=rack,
            tier_specs=tier_specs,
            task_slots=task_slots,
        )
        topology.add_node(node)
    return topology


def build_tiered_cluster(
    num_workers: int,
    tiers: Union[str, TierHierarchy] = "default3",
    capacity_overrides: Optional[Dict[str, int]] = None,
    task_slots: int = 8,
    rack_size: int = DEFAULT_RACK_SIZE,
) -> ClusterTopology:
    """Build ``num_workers`` identical nodes over any tier hierarchy.

    Per-node capacities come from each tier spec's defaults;
    ``capacity_overrides`` maps tier names (case-insensitive) to byte
    capacities for deviations (e.g. ``{"MEMORY": 8 * GB}``).  Unknown
    override names raise so typos do not silently provision defaults.
    """
    hierarchy = get_hierarchy(tiers)
    overrides = {
        hierarchy.tier(name).name: capacity
        for name, capacity in (capacity_overrides or {}).items()
    }
    specs = [provision_for(t, capacity=overrides.get(t.name)) for t in hierarchy]
    return build_cluster(
        num_workers, specs, task_slots=task_slots, rack_size=rack_size
    )


def build_local_cluster(
    num_workers: int = 11,
    memory_per_node: int = 4 * GB,
    ssd_per_node: int = 64 * GB,
    hdd_per_node: int = 400 * GB,
    task_slots: int = 8,
    rack_size: int = DEFAULT_RACK_SIZE,
) -> ClusterTopology:
    """The paper's local testbed: 11 workers, 3 tiers, 3 HDDs per worker.

    The default rack size keeps clusters of up to 16 workers on a single
    rack, like the paper's lab testbed; pass a smaller ``rack_size`` to
    exercise rack-aware behaviour.
    """
    hierarchy = get_hierarchy("default3")
    specs = [
        TierProvision(hierarchy.tier("MEMORY"), memory_per_node, num_devices=1),
        TierProvision(hierarchy.tier("SSD"), ssd_per_node, num_devices=1),
        TierProvision(hierarchy.tier("HDD"), hdd_per_node, num_devices=3),
    ]
    return build_cluster(num_workers, specs, task_slots=task_slots, rack_size=rack_size)


def build_ec2_cluster(
    num_workers: int,
    task_slots: int = 8,
    memory_per_node: Optional[int] = None,
) -> ClusterTopology:
    """The EC2 m4.2xlarge scale-out testbed (Sec 7.5).

    Same per-worker tier sizes as the local cluster so results are
    comparable; only the worker count changes (11 → 88 in the paper).
    """
    return build_local_cluster(
        num_workers=num_workers,
        memory_per_node=memory_per_node or 4 * GB,
        task_slots=task_slots,
    )
