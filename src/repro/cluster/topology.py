"""Network topology: racks of nodes with HDFS-style distance semantics.

Distances follow HDFS conventions: 0 for the same node, 2 within a rack,
4 across racks.  The placement policies use these to trade locality
against fault tolerance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.cluster.hardware import DEFAULT_HIERARCHY, TierHierarchy, TierSpec
from repro.cluster.node import Node


class Rack:
    """A named group of nodes sharing a top-of-rack switch.

    ``uplink_bandwidth`` optionally caps the rack's aggregate traffic to
    the rest of the cluster (bytes/second); ``None`` leaves the uplink
    unconstrained.  Only the fair-share I/O model enforces it — cross-
    rack flows then traverse a shared uplink resource per rack.
    """

    def __init__(self, name: str, uplink_bandwidth: Optional[float] = None) -> None:
        self.name = name
        self.nodes: List[Node] = []
        self.uplink_bandwidth = uplink_bandwidth

    def add(self, node: Node) -> None:
        self.nodes.append(node)

    def __len__(self) -> int:
        return len(self.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Rack({self.name}, nodes={len(self.nodes)})"


class ClusterTopology:
    """The set of worker nodes organized into racks."""

    SAME_NODE = 0
    SAME_RACK = 2
    OFF_RACK = 4

    def __init__(self, hierarchy: Optional[TierHierarchy] = None) -> None:
        self._racks: Dict[str, Rack] = {}
        self._nodes: Dict[str, Node] = {}
        self._hierarchy = hierarchy
        # Aggregate per-tier byte accounting, maintained incrementally
        # via each device's usage_listener (capacity is static once a
        # node joins).  Exact integer bookkeeping: always equal to the
        # sum over all nodes the queries below used to compute.
        self._tier_capacity: Dict[TierSpec, int] = {}
        self._tier_used: Dict[TierSpec, int] = {}

    @property
    def hierarchy(self) -> TierHierarchy:
        """The tier hierarchy shared by every node in the cluster."""
        return self._hierarchy if self._hierarchy is not None else DEFAULT_HIERARCHY

    # -- construction --------------------------------------------------------
    def add_node(self, node: Node) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id}")
        if self._hierarchy is None:
            self._hierarchy = node.hierarchy
        elif node.hierarchy is not self._hierarchy:
            raise ValueError(
                f"node {node.node_id} uses hierarchy {node.hierarchy.name!r}, "
                f"cluster uses {self._hierarchy.name!r}"
            )
        self._nodes[node.node_id] = node
        rack = self._racks.setdefault(node.rack, Rack(node.rack))
        rack.add(node)
        for device in node.devices():
            tier = device.tier
            self._tier_capacity[tier] = (
                self._tier_capacity.get(tier, 0) + device.capacity
            )
            self._tier_used[tier] = self._tier_used.get(tier, 0) + device.used
            device.usage_listener = self._on_device_usage

    def _on_device_usage(self, device, delta: int) -> None:
        """Fold one device's allocate/release into the tier aggregate."""
        self._tier_used[device.tier] += delta

    # -- lookups ---------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        return list(self._nodes.values())

    @property
    def alive_nodes(self) -> List[Node]:
        return [n for n in self._nodes.values() if n.alive]

    @property
    def racks(self) -> List[Rack]:
        return list(self._racks.values())

    def node(self, node_id: str) -> Node:
        return self._nodes[node_id]

    def rack_of(self, node_id: str) -> Rack:
        """The rack holding ``node_id``."""
        return self._racks[self._nodes[node_id].rack]

    def set_rack_uplinks(self, bandwidth: Optional[float]) -> None:
        """Set every rack's uplink cap (None removes the constraint)."""
        for rack in self._racks.values():
            rack.uplink_bandwidth = bandwidth

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    def __len__(self) -> int:
        return len(self._nodes)

    def distance(self, a: Node, b: Node) -> int:
        """HDFS-style network distance between two nodes."""
        if a.node_id == b.node_id:
            return self.SAME_NODE
        if a.rack == b.rack:
            return self.SAME_RACK
        return self.OFF_RACK

    # -- aggregate capacity ------------------------------------------------------
    # O(1) reads of the incrementally maintained per-tier aggregates;
    # dead nodes stay counted, exactly like the per-node sums these
    # replaced (``nodes`` never filtered on ``alive``).
    def tier_capacity(self, tier: TierSpec) -> int:
        return self._tier_capacity.get(tier, 0)

    def tier_used(self, tier: TierSpec) -> int:
        return self._tier_used.get(tier, 0)

    def tier_free(self, tier: TierSpec) -> int:
        return self._tier_capacity.get(tier, 0) - self._tier_used.get(tier, 0)

    def tier_utilization(self, tier: TierSpec) -> float:
        capacity = self._tier_capacity.get(tier, 0)
        if capacity == 0:
            return 1.0
        return self._tier_used.get(tier, 0) / capacity

    def nodes_with_tier(self, tier: TierSpec) -> List[Node]:
        """Alive nodes exposing ``tier`` (placement candidates)."""
        return [n for n in self.nodes if n.alive and n.has_tier(tier)]

    def total_task_slots(self) -> int:
        return sum(n.task_slots for n in self.nodes)
