"""Cluster hardware model: storage media, devices, nodes, topology.

The simulated cluster mirrors the paper's testbed (Sec 7): one Master and
N Workers, each Worker exposing three storage tiers (memory, SSD, HDD)
with fixed capacities and media-dependent bandwidths.
"""

from repro.cluster.hardware import (
    MediaProfile,
    StorageDevice,
    StorageTier,
    DEFAULT_MEDIA_PROFILES,
)
from repro.cluster.node import Node, TierSpec
from repro.cluster.topology import ClusterTopology, Rack
from repro.cluster.builder import (
    build_cluster,
    build_ec2_cluster,
    build_local_cluster,
)

__all__ = [
    "StorageTier",
    "MediaProfile",
    "StorageDevice",
    "DEFAULT_MEDIA_PROFILES",
    "TierSpec",
    "Node",
    "Rack",
    "ClusterTopology",
    "build_cluster",
    "build_local_cluster",
    "build_ec2_cluster",
]
