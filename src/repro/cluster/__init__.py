"""Cluster hardware model: storage media, tiers, devices, nodes, topology.

The simulated cluster mirrors the paper's testbed (Sec 7): one Master and
N Workers, each Worker exposing the tiers of a configurable
:class:`TierHierarchy` (memory/SSD/HDD by default) with per-tier
capacities and media-dependent bandwidths.
"""

from repro.cluster.hardware import (
    DEFAULT_HIERARCHY,
    DEFAULT_MEDIA_PROFILES,
    MediaProfile,
    StorageDevice,
    StorageTier,
    TierHierarchy,
    TierSpec,
    get_hierarchy,
    hierarchy_names,
    make_device,
    register_hierarchy,
)
from repro.cluster.node import Node, TierProvision, provision_for
from repro.cluster.topology import ClusterTopology, Rack
from repro.cluster.builder import (
    build_cluster,
    build_ec2_cluster,
    build_local_cluster,
    build_tiered_cluster,
)

__all__ = [
    "StorageTier",
    "TierSpec",
    "TierHierarchy",
    "DEFAULT_HIERARCHY",
    "get_hierarchy",
    "hierarchy_names",
    "register_hierarchy",
    "MediaProfile",
    "StorageDevice",
    "make_device",
    "DEFAULT_MEDIA_PROFILES",
    "TierProvision",
    "provision_for",
    "Node",
    "Rack",
    "ClusterTopology",
    "build_cluster",
    "build_local_cluster",
    "build_ec2_cluster",
    "build_tiered_cluster",
]
