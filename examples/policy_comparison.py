"""Compare storage policies on a Facebook-like analytics workload.

Replays the synthesized FB trace (Sec 7.1 of the paper: 1000 MapReduce
jobs over 6 hours, heavy-tailed sizes, skewed popularity) over plain
HDFS, static OctopusFS, and the four Octopus++ policy pairs, then prints
per-bin completion-time gains — a small-scale Fig 6.

Run:  python examples/policy_comparison.py [--scale 0.25]
"""

import argparse

from repro.engine import SystemConfig, completion_reduction, run_workload
from repro.workload import FB_PROFILE, scaled_profile, synthesize_trace
from repro.workload.bins import BIN_NAMES


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="workload scale factor (1.0 = the paper's 1000 jobs)",
    )
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()

    profile = scaled_profile(FB_PROFILE, args.scale)
    trace = synthesize_trace(profile, seed=args.seed)
    print(
        f"workload: {len(trace.jobs)} jobs, {trace.file_count} files, "
        f"{trace.total_bytes / 2**30:.1f} GB"
    )

    # Scale memory with the workload so tiering pressure is preserved
    # (at full scale this is the paper's 4GB per worker).
    memory = max(int(4 * 2**30 * args.scale), 512 * 2**20)

    def config(label, **kw):
        return SystemConfig(label=label, memory_per_node=memory, **kw)

    configs = [
        config("HDFS", placement="hdfs"),
        config("OctopusFS", placement="octopus"),
        config("LRU-OSA", placement="octopus", downgrade="lru", upgrade="osa"),
        config("LRFU", placement="octopus", downgrade="lrfu", upgrade="lrfu"),
        config("EXD", placement="octopus", downgrade="exd", upgrade="exd"),
        config("XGB", placement="octopus", downgrade="xgb", upgrade="xgb"),
    ]

    baseline = None
    print(f"\n{'policy':<10} {'HR':>6} {'BHR':>6}  completion-time reduction per bin")
    for config in configs:
        result = run_workload(trace, config)
        if config.label == "HDFS":
            baseline = result
            print(f"{config.label:<10} {result.metrics.hit_ratio():>6.2f} "
                  f"{result.metrics.byte_hit_ratio():>6.2f}  (baseline)")
            continue
        gains = completion_reduction(baseline.metrics, result.metrics)
        rendered = "  ".join(f"{b}:{gains[b]:5.1f}%" for b in BIN_NAMES)
        print(
            f"{config.label:<10} {result.metrics.hit_ratio():>6.2f} "
            f"{result.metrics.byte_hit_ratio():>6.2f}  {rendered}"
        )


if __name__ == "__main__":
    main()
