"""Quickstart: a tiered DFS with automated data movement in ~60 lines.

Builds the paper's 11-worker cluster, attaches the tiering framework with
the LRU downgrade + OSA upgrade pair, writes files until the memory tier
crosses its proactive threshold, and watches replicas move down — and
back up when a cold file is read again.

Run:  python examples/quickstart.py
"""

from repro.cluster import StorageTier, build_local_cluster
from repro.common.units import GB, MB, format_bytes
from repro.core import ReplicationManager, configure_policies
from repro.dfs import DFSClient, Master, NodeManager, OctopusPlacementPolicy
from repro.sim import Simulator


def main() -> None:
    # 1. Assemble the stack: simulator clock, cluster, master, client.
    sim = Simulator()
    topology = build_local_cluster(num_workers=11, memory_per_node=4 * GB)
    placement = OctopusPlacementPolicy(topology, NodeManager(topology))
    master = Master(topology, placement, sim)
    client = DFSClient(master)

    # 2. Attach the tiering framework (paper Fig 3) with a policy pair.
    manager = ReplicationManager(master, sim)
    configure_policies(manager, downgrade="lru", upgrade="osa")

    # 3. Write data: OctopusFS places one replica per tier while space
    #    lasts (memory + SSD + HDD).
    client.create("/data/first.bin", 512 * MB)
    print("fresh file tiers:", [t.name for t in client.file_tiers("/data/first.bin")])

    # 4. Keep writing until the memory tier passes its 90% threshold;
    #    the LRU policy proactively moves cold replicas down.
    for i in range(100):
        client.create(f"/data/bulk{i:03d}.bin", 512 * MB)
        sim.run(until=sim.now() + 30)
    sim.run(until=sim.now() + 600)

    mem = master.tier_utilization(StorageTier.MEMORY)
    moved = manager.monitor.bytes_downgraded[StorageTier.MEMORY]
    print(f"memory utilization: {mem:.1%} (held between the 85%/90% thresholds)")
    print(f"downgraded from memory: {format_bytes(moved)}")
    print(
        "first file tiers now:",
        [t.name for t in client.file_tiers("/data/first.bin")],
    )

    # 5. Read the (now cold) first file: OSA pulls it back into memory.
    client.open("/data/first.bin")
    sim.run(until=sim.now() + 300)
    print(
        "after re-access:",
        [t.name for t in client.file_tiers("/data/first.bin")],
    )
    upgraded = manager.monitor.bytes_upgraded[StorageTier.MEMORY]
    print(f"upgraded into memory: {format_bytes(upgraded)}")


if __name__ == "__main__":
    main()
